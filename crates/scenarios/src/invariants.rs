//! The metamorphic-invariant catalog: predictable output transformations
//! that must hold for **every** world, fuzzed or hand-built — the harness
//! behind `eventor-cli fuzz` and `tests/metamorphic_invariants.rs`.
//!
//! Golden digests can only regress worlds someone thought to commit; these
//! invariants instead state how the *output must respond to a known change
//! of the input*, so any generated world checks itself:
//!
//! * **F.1 rigid-transform equivariance** — applying one global rigid
//!   transform to every camera pose leaves the depth maps unchanged (depth
//!   is relative to the camera; events depend only on relative motion).
//!   Floating-point pose composition perturbs intermediate values at the
//!   10⁻¹³ level, which the fixed-point datapath can round across a
//!   quantization edge, so this invariant is checked with a small bitwise
//!   tolerance ([`F1_MAX_DIFF_FRACTION`]) instead of digest equality.
//! * **F.2 polarity-relabel invariance** — flipping every event's polarity
//!   changes output bits nowhere: the voting datapath never reads polarity.
//!   Exact (digest equality).
//! * **F.3 noise-order commutation** — two interior dropout windows delete
//!   fixed time ranges, so applying them in either order yields the same
//!   stream and therefore the same digest. Exact.
//! * **F.4 load-shape independence** — serving a world under any
//!   [`eventor_serve::LoadShape`] (bursty floods, session churn,
//!   a slow consumer) produces the standalone digest. Exact.
//! * **F.5 backend agreement** — software, sharded and served runs of one
//!   world share one digest. Exact.
//!
//! The catalog is documented with contract numbers in `docs/SCENARIOS.md`
//! §8.2; the planted-violation hook used to prove the fuzzer can actually
//! catch and shrink a bug lives in [`plant`].

use crate::noise::{apply_noise, DropoutNoise, NoiseStage};
use crate::runner::{run_standalone, session_for};
use crate::{digest_output, mix_seed, run_world, BackendKind, ScenarioError, ScenarioWorld};
use eventor_events::{Event, EventStream, Polarity};
use eventor_geom::{Pose, Trajectory, UnitQuaternion, Vec3};
use eventor_serve::{loadgen, LoadShape, ServeConfig};

/// F.1 tolerance: largest fraction of depth samples (per world) allowed to
/// differ bitwise between the base and the rigidly transformed run.
pub const F1_MAX_DIFF_FRACTION: f64 = 0.02;

/// One invariant of the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// F.1: global rigid rotation + translation of the trajectory.
    RigidTransform,
    /// F.2: event polarity relabeling.
    PolarityRelabel,
    /// F.3: commutation of interior dropout stages.
    NoiseCommutation,
    /// F.4: serve-tier load-shape independence.
    LoadShape,
    /// F.5: software/sharded/serve backend agreement.
    BackendAgreement,
}

impl Invariant {
    /// Every invariant, in catalog order.
    pub const ALL: [Invariant; 5] = [
        Invariant::RigidTransform,
        Invariant::PolarityRelabel,
        Invariant::NoiseCommutation,
        Invariant::LoadShape,
        Invariant::BackendAgreement,
    ];

    /// Catalog contract number (`docs/SCENARIOS.md` §8.2).
    pub fn contract(self) -> &'static str {
        match self {
            Self::RigidTransform => "F.1",
            Self::PolarityRelabel => "F.2",
            Self::NoiseCommutation => "F.3",
            Self::LoadShape => "F.4",
            Self::BackendAgreement => "F.5",
        }
    }

    /// Grammar / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Self::RigidTransform => "rigid-transform",
            Self::PolarityRelabel => "polarity-relabel",
            Self::NoiseCommutation => "noise-commutation",
            Self::LoadShape => "load-shape",
            Self::BackendAgreement => "backend-agreement",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|i| i.name() == name)
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.contract(), self.name())
    }
}

/// A caught invariant violation — what failed, where, and how.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Name of the world it failed on.
    pub world: String,
    /// Backend the check ran on (F.4/F.5 span several by construction).
    pub backend: BackendKind,
    /// Human-readable account of the mismatch.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated on {} ({}): {}",
            self.invariant, self.world, self.backend, self.detail
        )
    }
}

/// Checks one invariant on one world via one backend.
///
/// Returns `Ok(None)` when the invariant holds, `Ok(Some(violation))` when
/// it does not.
///
/// # Errors
///
/// Propagates reconstruction failures ([`ScenarioError`]); an *error* is a
/// world that could not run at all, not a caught violation.
pub fn check_invariant(
    world: &ScenarioWorld,
    invariant: Invariant,
    backend: BackendKind,
) -> Result<Option<Violation>, ScenarioError> {
    // The planted hook fires before any reconstruction so minimizing a
    // planted failure costs one world build per probe, nothing more.
    if let Some(detail) = plant::fires_on(world) {
        return Ok(Some(Violation {
            invariant,
            world: world.name.clone(),
            backend,
            detail,
        }));
    }
    match invariant {
        Invariant::RigidTransform => check_rigid_transform(world, backend),
        Invariant::PolarityRelabel => check_polarity_relabel(world, backend),
        Invariant::NoiseCommutation => check_noise_commutation(world, backend),
        Invariant::LoadShape => check_load_shape(world),
        Invariant::BackendAgreement => check_backend_agreement(world),
    }
}

/// The seeded global rigid transform F.1 applies: rotations up to ±0.6 rad
/// per axis, translations up to ±2 per component.
fn rigid_transform_of(seed: u64) -> Pose {
    fn unit(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
    let s = mix_seed(seed, 0xF1);
    let rot = UnitQuaternion::from_euler(
        1.2 * (unit(mix_seed(s, 0)) - 0.5),
        1.2 * (unit(mix_seed(s, 1)) - 0.5),
        1.2 * (unit(mix_seed(s, 2)) - 0.5),
    );
    let t = Vec3::new(
        4.0 * (unit(mix_seed(s, 3)) - 0.5),
        4.0 * (unit(mix_seed(s, 4)) - 0.5),
        4.0 * (unit(mix_seed(s, 5)) - 0.5),
    );
    Pose::new(rot, t)
}

fn check_rigid_transform(
    world: &ScenarioWorld,
    backend: BackendKind,
) -> Result<Option<Violation>, ScenarioError> {
    let g = rigid_transform_of(world.seed);
    let mut transformed = Trajectory::new();
    for sample in world.trajectory.iter() {
        transformed
            .push(sample.timestamp, g.compose(&sample.pose))
            .expect("timestamps preserved");
    }
    let moved = ScenarioWorld {
        trajectory: transformed,
        ..world.clone()
    };
    let base = run_world(world, backend)?;
    let trans = run_world(&moved, backend)?;
    let violation = |detail: String| {
        Ok(Some(Violation {
            invariant: Invariant::RigidTransform,
            world: world.name.clone(),
            backend,
            detail,
        }))
    };
    if base.output.keyframes.len() != trans.output.keyframes.len() {
        return violation(format!(
            "keyframe count changed under rigid transform: {} vs {}",
            base.output.keyframes.len(),
            trans.output.keyframes.len()
        ));
    }
    let mut total = 0usize;
    let mut differing = 0usize;
    for (i, (a, b)) in base
        .output
        .keyframes
        .iter()
        .zip(&trans.output.keyframes)
        .enumerate()
    {
        if a.depth_map.width() != b.depth_map.width()
            || a.depth_map.height() != b.depth_map.height()
        {
            return violation(format!("keyframe {i}: dimensions changed"));
        }
        total += a.depth_map.depth_data().len();
        differing += a
            .depth_map
            .depth_data()
            .iter()
            .zip(b.depth_map.depth_data())
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
    }
    let fraction = if total == 0 {
        0.0
    } else {
        differing as f64 / total as f64
    };
    if fraction > F1_MAX_DIFF_FRACTION {
        return violation(format!(
            "{differing} of {total} depth samples ({:.2}%) changed under rigid transform \
             (tolerance {:.0}%)",
            100.0 * fraction,
            100.0 * F1_MAX_DIFF_FRACTION
        ));
    }
    Ok(None)
}

fn check_polarity_relabel(
    world: &ScenarioWorld,
    backend: BackendKind,
) -> Result<Option<Violation>, ScenarioError> {
    let flipped: EventStream = world
        .events
        .iter()
        .map(|e| {
            let polarity = match e.polarity {
                Polarity::Positive => Polarity::Negative,
                Polarity::Negative => Polarity::Positive,
            };
            Event::new(e.t, e.x, e.y, polarity)
        })
        .collect();
    let relabeled = ScenarioWorld {
        events: flipped,
        ..world.clone()
    };
    let base = digest_output(&run_world(world, backend)?);
    let flip = digest_output(&run_world(&relabeled, backend)?);
    if base != flip {
        return Ok(Some(Violation {
            invariant: Invariant::PolarityRelabel,
            world: world.name.clone(),
            backend,
            detail: format!(
                "digest changed under polarity flip: {base:#018x} vs {flip:#018x} \
                 (the datapath must not read polarity)"
            ),
        }));
    }
    Ok(None)
}

fn check_noise_commutation(
    world: &ScenarioWorld,
    backend: BackendKind,
) -> Result<Option<Violation>, ScenarioError> {
    let (Some(t0), Some(t1)) = (world.events.start_time(), world.events.end_time()) else {
        return Ok(None); // no events: trivially commutes
    };
    // Interior windows strictly shorter than the placement margin, so
    // neither stage can delete the first or last event: the stream's time
    // span — and with it the second stage's window placement — is identical
    // in both application orders, making commutation exact.
    let duration = 0.03 * (t1 - t0).max(1e-6);
    let d1 = NoiseStage::Dropout(DropoutNoise {
        windows: 2,
        window_duration: duration,
        seed: mix_seed(world.seed, 0xF3_01),
    });
    let d2 = NoiseStage::Dropout(DropoutNoise {
        windows: 1,
        window_duration: duration,
        seed: mix_seed(world.seed, 0xF3_02),
    });
    let width = world.camera.intrinsics.width as u16;
    let height = world.camera.intrinsics.height as u16;
    let forward = ScenarioWorld {
        events: apply_noise(&world.events, width, height, &[d1.clone(), d2.clone()]),
        ..world.clone()
    };
    let reversed = ScenarioWorld {
        events: apply_noise(&world.events, width, height, &[d2, d1]),
        ..world.clone()
    };
    let a = digest_output(&run_world(&forward, backend)?);
    let b = digest_output(&run_world(&reversed, backend)?);
    if a != b {
        return Ok(Some(Violation {
            invariant: Invariant::NoiseCommutation,
            world: world.name.clone(),
            backend,
            detail: format!(
                "dropout stages failed to commute: {a:#018x} vs {b:#018x} \
                 ({} vs {} events)",
                forward.events.len(),
                reversed.events.len()
            ),
        }));
    }
    Ok(None)
}

fn check_load_shape(world: &ScenarioWorld) -> Result<Option<Violation>, ScenarioError> {
    let base = digest_output(&run_standalone(world, BackendKind::Software)?);
    for shape in LoadShape::ALL {
        let stream = loadgen::LoadStream {
            session: session_for(world, BackendKind::Software)?,
            trajectory: world.trajectory.clone(),
            events: world.events.as_slice().to_vec(),
        };
        let outputs = loadgen::drive(ServeConfig::new().with_workers(2), vec![stream], shape)?;
        let digest = digest_output(&outputs[0]);
        if digest != base {
            return Ok(Some(Violation {
                invariant: Invariant::LoadShape,
                world: world.name.clone(),
                backend: BackendKind::Serve,
                detail: format!(
                    "digest under load shape `{}` diverged from standalone: \
                     {digest:#018x} vs {base:#018x}",
                    shape.name()
                ),
            }));
        }
    }
    Ok(None)
}

fn check_backend_agreement(world: &ScenarioWorld) -> Result<Option<Violation>, ScenarioError> {
    let software = digest_output(&run_world(world, BackendKind::Software)?);
    for backend in [BackendKind::Sharded, BackendKind::Serve] {
        let digest = digest_output(&run_world(world, backend)?);
        if digest != software {
            return Ok(Some(Violation {
                invariant: Invariant::BackendAgreement,
                world: world.name.clone(),
                backend,
                detail: format!(
                    "backend digest diverged from software: {digest:#018x} vs {software:#018x}"
                ),
            }));
        }
    }
    Ok(None)
}

/// The test-only planted-violation hook.
///
/// A fuzzer whose invariants never fire is indistinguishable from a fuzzer
/// that checks nothing, so this hook lets a test *plant* a deterministic
/// violation: when active, every invariant check reports a violation on any
/// world whose observable size reaches all three thresholds. Because the
/// predicate is monotone in the generator axes, the auto-minimizer must
/// shrink a planted failure down to (approximately) the thresholds — which
/// is exactly what `tests/fuzz_regressions.rs` asserts.
///
/// Activation, in precedence order:
///
/// 1. [`plant::set_for_tests`] — in-process override, for tests in this
///    workspace (serialize tests that use it; the override is global),
/// 2. the `EVENTOR_FUZZ_PLANT` environment variable
///    (`min_samples,min_events,min_planes`) — crosses process boundaries,
///    for CLI integration tests.
///
/// Production code never sets either; with both unset the hook is inert.
pub mod plant {
    use crate::ScenarioWorld;
    use std::sync::Mutex;

    /// Environment variable that activates the hook across processes.
    pub const ENV_VAR: &str = "EVENTOR_FUZZ_PLANT";

    /// Thresholds of the planted violation: it fires on worlds at least
    /// this large along **all** three axes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Plant {
        /// Minimum trajectory sample count.
        pub min_samples: usize,
        /// Minimum event count.
        pub min_events: usize,
        /// Minimum depth-plane count.
        pub min_planes: usize,
    }

    impl Plant {
        /// Parses the `min_samples,min_events,min_planes` form.
        pub fn parse(value: &str) -> Option<Self> {
            let mut parts = value.split(',').map(|p| p.trim().parse::<usize>().ok());
            let plant = Plant {
                min_samples: parts.next()??,
                min_events: parts.next()??,
                min_planes: parts.next()??,
            };
            parts.next().is_none().then_some(plant)
        }
    }

    static OVERRIDE: Mutex<Option<Plant>> = Mutex::new(None);

    /// Installs (or clears) the in-process plant. Tests using this must not
    /// run concurrently with other plant-sensitive tests.
    pub fn set_for_tests(plant: Option<Plant>) {
        *OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = plant;
    }

    fn active() -> Option<Plant> {
        if let Some(p) = *OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) {
            return Some(p);
        }
        std::env::var(ENV_VAR).ok().and_then(|v| Plant::parse(&v))
    }

    /// Whether the hook fires on `world`; returns the violation detail text.
    pub(crate) fn fires_on(world: &ScenarioWorld) -> Option<String> {
        let p = active()?;
        let fires = world.trajectory.len() >= p.min_samples
            && world.events.len() >= p.min_events
            && world.config.num_depth_planes >= p.min_planes;
        fires.then(|| {
            format!(
                "planted violation hook fired (samples {} >= {}, events {} >= {}, planes {} >= {})",
                world.trajectory.len(),
                p.min_samples,
                world.events.len(),
                p.min_events,
                world.config.num_depth_planes,
                p.min_planes
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldSpec;

    fn tiny_world() -> ScenarioWorld {
        let mut spec = WorldSpec::generate(0x1A57, 0);
        spec.samples = 24;
        spec.event_cap = 1_500;
        spec.planes = 16;
        spec.noise.clear();
        spec.build().expect("tiny world builds")
    }

    #[test]
    fn invariant_names_round_trip() {
        for i in Invariant::ALL {
            assert_eq!(Invariant::parse(i.name()), Some(i));
            assert!(i.contract().starts_with("F."));
        }
        assert_eq!(Invariant::parse("nope"), None);
    }

    #[test]
    fn polarity_relabel_holds_on_a_tiny_world() {
        let world = tiny_world();
        let v = check_invariant(&world, Invariant::PolarityRelabel, BackendKind::Software)
            .expect("check runs");
        assert!(v.is_none(), "{}", v.unwrap());
    }

    #[test]
    fn plant_parse_accepts_good_and_rejects_bad() {
        assert_eq!(
            plant::Plant::parse("8,400,4"),
            Some(plant::Plant {
                min_samples: 8,
                min_events: 400,
                min_planes: 4
            })
        );
        assert_eq!(plant::Plant::parse("8,400"), None);
        assert_eq!(plant::Plant::parse("8,400,4,2"), None);
        assert_eq!(plant::Plant::parse("a,b,c"), None);
    }

    #[test]
    fn rigid_transform_of_is_seeded_and_nontrivial() {
        let a = rigid_transform_of(1);
        let b = rigid_transform_of(1);
        assert_eq!(a.translation.x.to_bits(), b.translation.x.to_bits());
        let c = rigid_transform_of(2);
        assert_ne!(a.translation.x.to_bits(), c.translation.x.to_bits());
        assert!(a.translation.norm() > 1e-3, "transform is ~identity");
    }
}
