//! The built-in corpus: ten parameterized worlds spanning trajectory shapes
//! (orbit, spiral, dolly, shake, slide), sensor degradations (hot pixels,
//! bursts, clutter, dropout) and depth structures (sparse, dense,
//! multi-plane).
//!
//! Every world is deterministic in its seed: textures, noise and the
//! simulator derive all randomness from splitmix sub-seeds of it.

use crate::noise::{apply_noise, BurstNoise, DropoutNoise, NoiseStage};
use crate::{mix_seed, Scenario, ScenarioError, ScenarioWorld};
use eventor_emvs::{EmvsConfig, VotingMode};
use eventor_events::{
    EventCameraSimulator, NoiseConfig, PlanarPatch, Scene, SimulatorConfig, Texture,
};
use eventor_geom::{CameraIntrinsics, CameraModel, DistortionModel, Mat3, Pose, Trajectory, Vec3};

/// Cap applied to every world's stream: bounds test/CI runtime without
/// losing scenario character (the cap is part of the scenario definition, so
/// digests are stable).
pub(crate) const MAX_WORLD_EVENTS: usize = 24_000;

/// The corpus camera: a reduced-resolution ideal pinhole fast enough for
/// debug-mode test runs.
pub(crate) fn small_camera() -> CameraModel {
    let intrinsics = CameraIntrinsics::new(66.0, 66.0, 40.0, 30.0, 80, 60)
        .expect("static corpus intrinsics are valid");
    CameraModel::new(intrinsics, DistortionModel::none())
}

/// The same sensor with a mild radial distortion, to keep the event
/// undistortion stage inside the regression surface.
fn distorted_camera() -> CameraModel {
    let intrinsics = CameraIntrinsics::new(66.0, 66.0, 40.0, 30.0, 80, 60)
        .expect("static corpus intrinsics are valid");
    CameraModel::new(intrinsics, DistortionModel::radial(-0.15, 0.04, 0.0))
}

pub(crate) fn simulator_config(seed: u64, contrast_threshold: f64) -> SimulatorConfig {
    SimulatorConfig {
        contrast_threshold,
        samples: 60,
        refractory_period: 1e-4,
        noise_rate: 0.0,
        seed: mix_seed(seed, 0x51),
    }
}

/// Gradient-rich non-periodic texture, decorrelated by seed.
fn blob_texture(seed: u64, spacing: f64) -> Texture {
    Texture::Blobs {
        spacing,
        radius_fraction: 0.36 + 0.08 * ((seed % 5) as f64 / 4.0),
        seed,
    }
}

// ---------------------------------------------------------------------------
// Trajectory shapes
// ---------------------------------------------------------------------------

/// Orbit: the camera rides a circular arc of radius `radius` around
/// `target`, always looking at it.
pub(crate) fn orbit_trajectory(
    target: Vec3,
    radius: f64,
    half_angle: f64,
    samples: usize,
) -> Trajectory {
    let mut t = Trajectory::new();
    for i in 0..samples {
        let s = i as f64 / (samples - 1) as f64;
        let theta = -half_angle + 2.0 * half_angle * s;
        let eye = Vec3::new(
            target.x + radius * theta.sin(),
            target.y + 0.04 * (3.0 * theta).sin(),
            target.z - radius * theta.cos(),
        );
        t.push(s, look_at(eye, target))
            .expect("orbit times increase");
    }
    t
}

/// Builds a camera-to-world pose at `eye` with the optical axis (+Z of the
/// camera frame) pointing at `target`.
pub(crate) fn look_at(eye: Vec3, target: Vec3) -> Pose {
    let cz = (target - eye).normalized().expect("eye != target");
    let cx = Vec3::Y.cross(cz).normalized().expect("axis not degenerate");
    let cy = cz.cross(cx);
    Pose::from_matrix_parts(&Mat3::from_cols(cx, cy, cz), eye)
}

/// Spiral: the camera corkscrews outward in the image plane while slowly
/// advancing along the optical axis, orientation fixed.
pub(crate) fn spiral_trajectory(
    turns: f64,
    max_radius: f64,
    advance: f64,
    samples: usize,
) -> Trajectory {
    let mut t = Trajectory::new();
    for i in 0..samples {
        let s = i as f64 / (samples - 1) as f64;
        let angle = turns * std::f64::consts::TAU * s;
        let rho = 0.03 + (max_radius - 0.03) * s;
        let eye = Vec3::new(rho * angle.cos(), 0.6 * rho * angle.sin(), advance * s);
        t.push(s, Pose::from_translation(eye))
            .expect("spiral times increase");
    }
    t
}

/// Dolly: the camera advances along the optical axis with a slight lateral
/// drift (a pure-forward dolly has no parallax at the image centre).
pub(crate) fn dolly_trajectory(depth_travel: f64, drift: f64, samples: usize) -> Trajectory {
    let mut t = Trajectory::new();
    for i in 0..samples {
        let s = i as f64 / (samples - 1) as f64;
        let eye = Vec3::new(
            drift * s,
            0.02 * (std::f64::consts::TAU * s).sin(),
            depth_travel * s,
        );
        t.push(s, Pose::from_translation(eye))
            .expect("dolly times increase");
    }
    t
}

/// Shake: a hand-held lateral sweep with seeded high-frequency positional
/// jitter and small seeded attitude wobble.
pub(crate) fn shake_trajectory(
    amplitude: f64,
    jitter: f64,
    seed: u64,
    samples: usize,
) -> Trajectory {
    fn unit(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
    let mut t = Trajectory::new();
    for i in 0..samples {
        let s = i as f64 / (samples - 1) as f64;
        let base = mix_seed(seed, i as u64);
        let jx = jitter * (unit(mix_seed(base, 0)) - 0.5);
        let jy = jitter * (unit(mix_seed(base, 1)) - 0.5);
        let jz = 0.5 * jitter * (unit(mix_seed(base, 2)) - 0.5);
        let eye = Vec3::new(-amplitude + 2.0 * amplitude * s + jx, jy, jz);
        let wobble = 0.008;
        let rot = eventor_geom::UnitQuaternion::from_euler(
            wobble * (unit(mix_seed(base, 3)) - 0.5),
            wobble * (unit(mix_seed(base, 4)) - 0.5),
            wobble * (unit(mix_seed(base, 5)) - 0.5),
        );
        t.push(s, Pose::new(rot, eye))
            .expect("shake times increase");
    }
    t
}

/// Slide: the classic linear-slider sweep.
pub(crate) fn slide_trajectory(amplitude: f64, samples: usize) -> Trajectory {
    Trajectory::linear(
        Pose::from_translation(Vec3::new(-amplitude, 0.0, 0.0)),
        Pose::from_translation(Vec3::new(amplitude, 0.0, 0.0)),
        0.0,
        1.0,
        samples,
    )
}

// ---------------------------------------------------------------------------
// Depth structures
// ---------------------------------------------------------------------------

/// Sparse: one small textured target and nothing else.
pub(crate) fn sparse_scene(seed: u64, depth: f64) -> Scene {
    let mut scene = Scene::new();
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(0.0, 0.0, depth),
        1.1 * depth,
        0.9 * depth,
        blob_texture(mix_seed(seed, 1), 0.22 * depth),
    ));
    scene
}

/// Dense: a 3×3 grid of textured patches at staggered depths.
pub(crate) fn dense_scene(seed: u64, base_depth: f64) -> Scene {
    let mut scene = Scene::new();
    for gy in 0..3i32 {
        for gx in 0..3i32 {
            let i = (gy * 3 + gx) as u64;
            let depth = base_depth + 0.35 * ((mix_seed(seed, i) % 5) as f64 - 2.0) * 0.5;
            scene.add_patch(PlanarPatch::frontoparallel(
                Vec3::new(
                    (gx - 1) as f64 * 0.55 * base_depth,
                    (gy - 1) as f64 * 0.45 * base_depth,
                    depth,
                ),
                0.62 * base_depth,
                0.52 * base_depth,
                blob_texture(mix_seed(seed, 100 + i), 0.16 * base_depth),
            ));
        }
    }
    scene
}

/// Multi-plane: a staircase of four fronto-parallel planes.
pub(crate) fn multiplane_scene(seed: u64) -> Scene {
    let mut scene = Scene::new();
    for (i, (x, depth)) in [(-0.9, 1.2), (-0.3, 1.8), (0.35, 2.5), (1.05, 3.3)]
        .into_iter()
        .enumerate()
    {
        scene.add_patch(PlanarPatch::frontoparallel(
            Vec3::new(x, 0.05 * (i as f64 - 1.5), depth),
            1.1,
            1.7,
            blob_texture(mix_seed(seed, 10 + i as u64), 0.24),
        ));
    }
    scene
}

/// Corridor: left/right walls converging on a back wall — continuous depth
/// gradients plus a fronto-parallel terminator.
pub(crate) fn corridor_scene(seed: u64) -> Scene {
    let mut scene = Scene::new();
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(0.0, 0.0, 3.8),
        2.8,
        2.4,
        blob_texture(mix_seed(seed, 20), 0.26),
    ));
    scene.add_patch(PlanarPatch::oriented(
        Vec3::new(-1.0, 0.0, 2.2),
        Vec3::Z,
        Vec3::Y,
        1.5,
        1.1,
        blob_texture(mix_seed(seed, 21), 0.22),
    ));
    scene.add_patch(PlanarPatch::oriented(
        Vec3::new(1.0, 0.0, 2.2),
        -Vec3::Z,
        Vec3::Y,
        1.5,
        1.1,
        blob_texture(mix_seed(seed, 22), 0.22),
    ));
    scene
}

// ---------------------------------------------------------------------------
// World assembly
// ---------------------------------------------------------------------------

struct Recipe {
    name: &'static str,
    /// Contrast threshold tuned per world so the whole trajectory fits
    /// under the stream cap (higher threshold = fewer events per edge).
    contrast: f64,
    camera: CameraModel,
    scene: Scene,
    trajectory: Trajectory,
    depth_range: (f64, f64),
    planes: usize,
    keyframe_distance: f64,
    noise: Vec<NoiseStage>,
}

fn config_of(recipe: &Recipe) -> EmvsConfig {
    EmvsConfig::default()
        .with_depth_range(recipe.depth_range.0, recipe.depth_range.1)
        .with_depth_planes(recipe.planes)
        .with_keyframe_distance(recipe.keyframe_distance)
        // Nearest voting is the bit-identical-across-backends datapath the
        // golden digests are recorded against.
        .with_voting(VotingMode::Nearest)
}

fn assemble(recipe: Recipe, seed: u64) -> Result<ScenarioWorld, ScenarioError> {
    let simulator =
        EventCameraSimulator::new(recipe.camera, simulator_config(seed, recipe.contrast));
    let (clean, _stats) = simulator.simulate(&recipe.scene, &recipe.trajectory)?;
    let width = recipe.camera.intrinsics.width as u16;
    let height = recipe.camera.intrinsics.height as u16;
    let degraded = apply_noise(&clean, width, height, &recipe.noise);
    let events: eventor_events::EventStream = degraded
        .as_slice()
        .iter()
        .take(MAX_WORLD_EVENTS)
        .copied()
        .collect();
    let config = config_of(&recipe);
    Ok(ScenarioWorld {
        name: recipe.name.to_string(),
        seed,
        camera: recipe.camera,
        trajectory: recipe.trajectory,
        events,
        config,
    })
}

// One builder per corpus world.

fn orbit_dense(seed: u64) -> Recipe {
    Recipe {
        name: "orbit_dense",
        contrast: 0.17,
        camera: small_camera(),
        scene: dense_scene(seed, 2.0),
        trajectory: orbit_trajectory(Vec3::new(0.0, 0.0, 2.0), 1.9, 0.18, 60),
        depth_range: (0.9, 4.2),
        planes: 56,
        keyframe_distance: 0.18,
        noise: vec![],
    }
}

fn orbit_burst(seed: u64) -> Recipe {
    Recipe {
        name: "orbit_burst",
        contrast: 0.17,
        camera: small_camera(),
        scene: multiplane_scene(seed),
        trajectory: orbit_trajectory(Vec3::new(0.0, 0.0, 2.2), 2.1, 0.16, 60),
        depth_range: (0.8, 4.5),
        planes: 48,
        keyframe_distance: 0.16,
        noise: vec![NoiseStage::Burst(BurstNoise {
            bursts: 5,
            events_per_burst: 700,
            burst_duration: 0.006,
            seed: mix_seed(seed, 0xB),
        })],
    }
}

fn spiral_multiplane(seed: u64) -> Recipe {
    Recipe {
        name: "spiral_multiplane",
        contrast: 0.30,
        camera: small_camera(),
        scene: multiplane_scene(seed),
        trajectory: spiral_trajectory(1.6, 0.26, 0.1, 64),
        depth_range: (0.8, 4.5),
        planes: 56,
        keyframe_distance: 0.14,
        noise: vec![],
    }
}

fn spiral_sparse(seed: u64) -> Recipe {
    Recipe {
        name: "spiral_sparse",
        contrast: 0.26,
        camera: small_camera(),
        scene: sparse_scene(seed, 1.5),
        trajectory: spiral_trajectory(2.2, 0.22, 0.06, 64),
        depth_range: (0.7, 3.0),
        planes: 44,
        keyframe_distance: 0.045,
        noise: vec![],
    }
}

fn dolly_corridor(seed: u64) -> Recipe {
    Recipe {
        name: "dolly_corridor",
        contrast: 0.30,
        camera: small_camera(),
        scene: corridor_scene(seed),
        trajectory: dolly_trajectory(0.7, 0.16, 60),
        depth_range: (0.9, 4.8),
        planes: 56,
        keyframe_distance: 0.2,
        noise: vec![],
    }
}

fn dolly_dropout(seed: u64) -> Recipe {
    Recipe {
        name: "dolly_dropout",
        contrast: 0.30,
        camera: small_camera(),
        scene: corridor_scene(mix_seed(seed, 0xD)),
        trajectory: dolly_trajectory(0.6, 0.2, 60),
        depth_range: (0.9, 4.8),
        planes: 48,
        keyframe_distance: 0.18,
        noise: vec![NoiseStage::Dropout(DropoutNoise {
            windows: 3,
            window_duration: 0.045,
            seed: mix_seed(seed, 0xDD),
        })],
    }
}

fn shake_closeup(seed: u64) -> Recipe {
    Recipe {
        name: "shake_closeup",
        contrast: 0.34,
        camera: small_camera(),
        scene: sparse_scene(seed, 0.8),
        trajectory: shake_trajectory(0.16, 0.012, mix_seed(seed, 0x5), 60),
        depth_range: (0.4, 1.8),
        planes: 48,
        keyframe_distance: 0.07,
        noise: vec![],
    }
}

fn shake_hotpixel(seed: u64) -> Recipe {
    Recipe {
        name: "shake_hotpixel",
        contrast: 0.30,
        camera: distorted_camera(),
        scene: multiplane_scene(mix_seed(seed, 0x7)),
        trajectory: shake_trajectory(0.3, 0.015, mix_seed(seed, 0x8), 60),
        depth_range: (0.8, 4.5),
        planes: 48,
        keyframe_distance: 0.055,
        noise: vec![NoiseStage::Injector(NoiseConfig {
            hot_pixel_fraction: 0.003,
            hot_pixel_rate: 400.0,
            seed: mix_seed(seed, 0x9),
            ..NoiseConfig::clean()
        })],
    }
}

fn slide_clutter(seed: u64) -> Recipe {
    Recipe {
        name: "slide_clutter",
        contrast: 0.30,
        camera: small_camera(),
        scene: dense_scene(mix_seed(seed, 0xC), 1.8),
        trajectory: slide_trajectory(0.34, 50),
        depth_range: (0.8, 3.8),
        planes: 52,
        keyframe_distance: 0.16,
        noise: vec![NoiseStage::Injector(NoiseConfig {
            background_activity_rate: 0.9,
            drop_probability: 0.03,
            seed: mix_seed(seed, 0xCC),
            ..NoiseConfig::clean()
        })],
    }
}

fn slide_far_sparse(seed: u64) -> Recipe {
    Recipe {
        name: "slide_far_sparse",
        contrast: 0.28,
        camera: small_camera(),
        scene: sparse_scene(mix_seed(seed, 0xF), 2.8),
        trajectory: slide_trajectory(0.55, 50),
        depth_range: (1.3, 5.5),
        planes: 44,
        keyframe_distance: 0.28,
        noise: vec![],
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A corpus entry: a named world builder with its catalog metadata.
#[derive(Debug, Clone, Copy)]
pub struct CorpusScenario {
    name: &'static str,
    description: &'static str,
    tags: &'static [&'static str],
    default_seed: u64,
    recipe_fn: fn(u64) -> Recipe,
}

impl CorpusScenario {
    /// The camera model and reconstruction configuration this scenario uses
    /// at `seed`, **without** running the event-camera simulation.
    ///
    /// Record replay needs exactly this pair: the `.evtr` file carries the
    /// events and poses, so rebuilding the world — and paying for a full
    /// simulation — just to recover the seed-independent session profile
    /// would double every replay's cost.
    pub fn session_profile(&self, seed: u64) -> (CameraModel, EmvsConfig) {
        let recipe = (self.recipe_fn)(seed);
        (recipe.camera, config_of(&recipe))
    }
}

impl Scenario for CorpusScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn tags(&self) -> &'static [&'static str] {
        self.tags
    }

    fn default_seed(&self) -> u64 {
        self.default_seed
    }

    fn build(&self, seed: u64) -> Result<ScenarioWorld, ScenarioError> {
        assemble((self.recipe_fn)(seed), seed)
    }
}

/// The corpus, in catalog order. Golden digests (`crate::GOLDEN_DIGESTS`)
/// are recorded at each entry's `default_seed`.
pub fn corpus() -> &'static [CorpusScenario] {
    const CORPUS: &[CorpusScenario] = &[
        CorpusScenario {
            name: "orbit_dense",
            description: "circular arc around a 3x3 grid of staggered patches, clean sensor",
            tags: &["trajectory:orbit", "noise:clean", "depth:dense"],
            default_seed: 0xE0_0001,
            recipe_fn: orbit_dense,
        },
        CorpusScenario {
            name: "orbit_burst",
            description: "orbit over a four-plane staircase with readout burst storms",
            tags: &["trajectory:orbit", "noise:burst", "depth:multi-plane"],
            default_seed: 0xE0_0002,
            recipe_fn: orbit_burst,
        },
        CorpusScenario {
            name: "spiral_multiplane",
            description: "outward corkscrew sweep over a four-plane staircase, clean sensor",
            tags: &["trajectory:spiral", "noise:clean", "depth:multi-plane"],
            default_seed: 0xE0_0003,
            recipe_fn: spiral_multiplane,
        },
        CorpusScenario {
            name: "spiral_sparse",
            description: "tight corkscrew around a single mid-range target",
            tags: &["trajectory:spiral", "noise:clean", "depth:sparse"],
            default_seed: 0xE0_0004,
            recipe_fn: spiral_sparse,
        },
        CorpusScenario {
            name: "dolly_corridor",
            description: "forward dolly with lateral drift down a walled corridor",
            tags: &["trajectory:dolly", "noise:clean", "depth:dense"],
            default_seed: 0xE0_0005,
            recipe_fn: dolly_corridor,
        },
        CorpusScenario {
            name: "dolly_dropout",
            description: "corridor dolly with three transport-loss dropout windows",
            tags: &["trajectory:dolly", "noise:dropout", "depth:dense"],
            default_seed: 0xE0_0006,
            recipe_fn: dolly_dropout,
        },
        CorpusScenario {
            name: "shake_closeup",
            description: "hand-held shake in front of a close-range target",
            tags: &["trajectory:shake", "noise:clean", "depth:sparse"],
            default_seed: 0xE0_0007,
            recipe_fn: shake_closeup,
        },
        CorpusScenario {
            name: "shake_hotpixel",
            description: "hand-held shake over the staircase on a distorted lens with hot pixels",
            tags: &["trajectory:shake", "noise:hot-pixel", "depth:multi-plane"],
            default_seed: 0xE0_0008,
            recipe_fn: shake_hotpixel,
        },
        CorpusScenario {
            name: "slide_clutter",
            description: "linear slide over dense patches through background-activity clutter",
            tags: &["trajectory:slide", "noise:clutter", "depth:dense"],
            default_seed: 0xE0_0009,
            recipe_fn: slide_clutter,
        },
        CorpusScenario {
            name: "slide_far_sparse",
            description: "wide linear slide in front of a far sparse target",
            tags: &["trajectory:slide", "noise:clean", "depth:sparse"],
            default_seed: 0xE0_000A,
            recipe_fn: slide_far_sparse,
        },
    ];
    CORPUS
}

/// Looks a corpus scenario up by name.
pub fn find(name: &str) -> Option<&'static CorpusScenario> {
    corpus().iter().find(|s| s.name == name)
}

/// Expands the corpus into a heterogeneous pool of `n` worlds for serving
/// benches and soak tests: entry `i` is corpus scenario `i % len` built at a
/// seed derived from `base_seed` and `i`, so the pool is as diverse as the
/// corpus but arbitrarily large — and still fully deterministic.
///
/// # Errors
///
/// Propagates the first scenario build failure (cannot happen for the
/// built-in corpus).
pub fn heterogeneous_pool(n: usize, base_seed: u64) -> Result<Vec<ScenarioWorld>, ScenarioError> {
    let corpus = corpus();
    (0..n)
        .map(|i| {
            let scenario = &corpus[i % corpus.len()];
            // Round r of the pool reuses the corpus at fresh seeds; round 0
            // uses the default seeds so the goldens stay in play.
            let round = (i / corpus.len()) as u64;
            let seed = if round == 0 {
                scenario.default_seed()
            } else {
                mix_seed(base_seed, i as u64)
            };
            scenario.build(seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_world_builds_and_is_usable() {
        for scenario in corpus() {
            let world = scenario
                .build(scenario.default_seed())
                .expect(scenario.name);
            assert!(
                world.events.len() > 4_000,
                "{}: only {} events",
                scenario.name,
                world.events.len()
            );
            assert!(world.trajectory.len() >= 40, "{}", scenario.name);
            assert!(world.config.validate().is_ok(), "{}", scenario.name);
            // Events must be covered by the trajectory's time span so a
            // session never stalls waiting for poses.
            let t_end = world.trajectory.end_time().unwrap();
            assert!(
                world.events.end_time().unwrap() <= t_end,
                "{}: events outrun poses",
                scenario.name
            );
            assert_eq!(world.name, scenario.name());
        }
    }

    #[test]
    fn seeds_change_the_world() {
        let s = find("orbit_dense").unwrap();
        let a = s.build(1).unwrap();
        let b = s.build(2).unwrap();
        // Different seeds → different textures → different streams.
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn builds_are_deterministic() {
        for name in ["orbit_burst", "dolly_dropout", "shake_hotpixel"] {
            let s = find(name).unwrap();
            let a = s.build(s.default_seed()).unwrap();
            let b = s.build(s.default_seed()).unwrap();
            assert_eq!(a.events, b.events, "{name}: stream not deterministic");
            assert_eq!(a.trajectory.len(), b.trajectory.len());
            for (x, y) in a.trajectory.iter().zip(b.trajectory.iter()) {
                assert_eq!(x.timestamp.to_bits(), y.timestamp.to_bits(), "{name}");
                assert_eq!(
                    x.pose.translation.x.to_bits(),
                    y.pose.translation.x.to_bits(),
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_pool_cycles_and_varies() {
        let pool = heterogeneous_pool(13, 99).unwrap();
        assert_eq!(pool.len(), 13);
        assert_eq!(pool[0].name, "orbit_dense");
        assert_eq!(pool[10].name, "orbit_dense");
        // Round 1 rebuilds at a derived seed, so it differs from round 0.
        assert_ne!(pool[0].events, pool[10].events);
    }

    #[test]
    fn session_profile_matches_the_built_world_without_simulating() {
        for scenario in corpus() {
            let (camera, config) = scenario.session_profile(scenario.default_seed());
            let world = scenario.build(scenario.default_seed()).unwrap();
            assert_eq!(camera, world.camera, "{}", scenario.name());
            assert_eq!(config, world.config, "{}", scenario.name());
        }
    }

    #[test]
    fn find_rejects_unknown_names() {
        assert!(find("orbit_dense").is_some());
        assert!(find("no_such_world").is_none());
    }
}
