//! The committed golden-digest table: one `u64` FNV digest per corpus
//! scenario, recorded at the scenario's default seed on the
//! quantized-nearest datapath ([`crate::digest_output`]).
//!
//! ## Workflow
//!
//! * **Verify** (CI, every push): `eventor-cli check --all --backend
//!   {software,sharded,serve}` re-runs every scenario and compares against
//!   this table. Any mismatch is a named bit-identity regression.
//! * **Re-record** (after an *intentional* datapath change):
//!   `eventor-cli check --all --print-table` prints this table's new
//!   contents; paste them here and explain the change in the PR. A golden
//!   update must always be a reviewed, deliberate act — that is the point
//!   of committing the table.

/// `(scenario name, digest)` — recorded at the scenario's default seed.
pub const GOLDEN_DIGESTS: &[(&str, u64)] = &[
    ("orbit_dense", 0x0ce7e1a4534a1d6b),
    ("orbit_burst", 0x02336df3a55ad1b4),
    ("spiral_multiplane", 0x8b37025c5f3a2024),
    ("spiral_sparse", 0x80b6cce276fd64e8),
    ("dolly_corridor", 0xddd5d0333222f691),
    ("dolly_dropout", 0x83ad0667e23e9747),
    ("shake_closeup", 0x2ba537e2aa240384),
    ("shake_hotpixel", 0x867a24e0e40c30a1),
    ("slide_clutter", 0x666293c0fbf35de7),
    ("slide_far_sparse", 0xbe70d3aea206af4b),
];

/// The committed digest for a scenario, if one is recorded.
pub fn golden_digest(name: &str) -> Option<u64> {
    GOLDEN_DIGESTS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, d)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{corpus, Scenario};

    #[test]
    fn every_corpus_scenario_has_a_golden() {
        for s in corpus() {
            assert!(
                golden_digest(s.name()).is_some(),
                "{} has no committed golden digest",
                s.name()
            );
        }
        assert_eq!(GOLDEN_DIGESTS.len(), corpus().len());
    }

    #[test]
    fn goldens_hold_on_the_software_backend_for_a_fast_subset() {
        // The full matrix runs in CI through `eventor-cli check --all`; this
        // in-tree guard covers a cross-section (one per trajectory family)
        // so `cargo test` alone still catches digest drift.
        for name in ["shake_closeup", "spiral_sparse", "slide_far_sparse"] {
            let s = crate::find(name).unwrap();
            let world = s.build(s.default_seed()).unwrap();
            let digest = crate::digest_world(&world, crate::BackendKind::Software).unwrap();
            assert_eq!(
                Some(digest),
                golden_digest(name),
                "{name}: digest {digest:#018x} diverged from the committed golden"
            );
        }
    }
}
