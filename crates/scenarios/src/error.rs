//! Error type of the scenario corpus.

use std::error::Error;
use std::fmt;

/// Errors surfaced while building or running a scenario.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScenarioError {
    /// No scenario with the requested name exists in the corpus.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
    },
    /// The event-camera substrate rejected the generated world.
    Event(eventor_events::EventError),
    /// The reconstruction session rejected the world or failed mid-run.
    Emvs(eventor_emvs::EmvsError),
    /// The serving engine failed while running the world.
    Serve(eventor_serve::ServeError),
    /// A fuzz world specification could not be parsed or is out of range.
    Spec {
        /// What was wrong with the specification.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownScenario { name } => {
                write!(f, "unknown scenario `{name}` (see `eventor-cli list`)")
            }
            Self::Event(e) => write!(f, "event generation failed: {e}"),
            Self::Emvs(e) => write!(f, "reconstruction failed: {e}"),
            Self::Serve(e) => write!(f, "serving failed: {e}"),
            Self::Spec { reason } => write!(f, "invalid fuzz world spec: {reason}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::UnknownScenario { .. } | Self::Spec { .. } => None,
            Self::Event(e) => Some(e),
            Self::Emvs(e) => Some(e),
            Self::Serve(e) => Some(e),
        }
    }
}

impl From<eventor_events::EventError> for ScenarioError {
    fn from(e: eventor_events::EventError) -> Self {
        Self::Event(e)
    }
}

impl From<eventor_emvs::EmvsError> for ScenarioError {
    fn from(e: eventor_emvs::EmvsError) -> Self {
        Self::Emvs(e)
    }
}

impl From<eventor_serve::ServeError> for ScenarioError {
    fn from(e: eventor_serve::ServeError) -> Self {
        Self::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let e = ScenarioError::UnknownScenario { name: "x".into() };
        assert!(e.to_string().contains('x'));
    }
}
