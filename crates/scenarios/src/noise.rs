//! Scenario-level sensor degradations beyond what
//! [`eventor_events::NoiseInjector`] models: readout **bursts** (a storm of
//! spurious events concentrated in a few milliseconds, as produced by a
//! saturated readout bus) and **dropout windows** (whole stretches of the
//! stream lost, as under sensor brown-out or transport loss).
//!
//! All stages are deterministic in their seeds; a stage applied twice to the
//! same stream yields bit-identical output.

use crate::mix_seed;
use eventor_events::{Event, EventStream, NoiseConfig, NoiseInjector, Polarity};

/// A burst-noise model: `bursts` storms, each injecting `events_per_burst`
/// spurious events within `burst_duration` seconds at seeded pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstNoise {
    /// Number of storms spread over the stream's time span.
    pub bursts: usize,
    /// Spurious events injected per storm.
    pub events_per_burst: usize,
    /// Duration of one storm, in seconds.
    pub burst_duration: f64,
    /// Seed for storm placement and pixel selection.
    pub seed: u64,
}

/// A dropout model: `windows` stretches of the stream, each `window_duration`
/// seconds long, are deleted entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutNoise {
    /// Number of dropout windows spread over the stream's time span.
    pub windows: usize,
    /// Duration of one window, in seconds.
    pub window_duration: f64,
    /// Seed for window placement.
    pub seed: u64,
}

/// One stage of a scenario's degradation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseStage {
    /// The per-event sensor-noise injector (background activity, hot pixels,
    /// timestamp jitter, uniform drop).
    Injector(NoiseConfig),
    /// Readout bursts.
    Burst(BurstNoise),
    /// Dropout windows.
    Dropout(DropoutNoise),
}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

fn apply_burst(stream: &EventStream, width: u16, height: u16, noise: &BurstNoise) -> EventStream {
    let (Some(t0), Some(t1)) = (stream.start_time(), stream.end_time()) else {
        return stream.clone();
    };
    let span = (t1 - t0).max(1e-6);
    let mut events: Vec<Event> = stream.as_slice().to_vec();
    for b in 0..noise.bursts {
        let base = mix_seed(noise.seed, b as u64);
        // Storm centre placed away from the stream edges so injected events
        // always have pose coverage.
        let centre = t0 + span * (0.1 + 0.8 * unit_f64(mix_seed(base, 0)));
        // One storm concentrates on a small cluster of pixels, like a
        // misbehaving column driver.
        let cx = (mix_seed(base, 1) % width as u64) as u16;
        let cy = (mix_seed(base, 2) % height as u64) as u16;
        for i in 0..noise.events_per_burst {
            let s = mix_seed(base, 3 + i as u64);
            let t = centre + noise.burst_duration * (unit_f64(s) - 0.5);
            let dx = (mix_seed(s, 0) % 9) as i32 - 4;
            let dy = (mix_seed(s, 1) % 9) as i32 - 4;
            let x = (cx as i32 + dx).clamp(0, width as i32 - 1) as u16;
            let y = (cy as i32 + dy).clamp(0, height as i32 - 1) as u16;
            let polarity = if mix_seed(s, 2) & 1 == 1 {
                Polarity::Positive
            } else {
                Polarity::Negative
            };
            events.push(Event::new(t.clamp(t0, t1), x, y, polarity));
        }
    }
    EventStream::from_unsorted(events)
}

fn apply_dropout(stream: &EventStream, noise: &DropoutNoise) -> EventStream {
    let (Some(t0), Some(t1)) = (stream.start_time(), stream.end_time()) else {
        return stream.clone();
    };
    let span = (t1 - t0).max(1e-6);
    let windows: Vec<(f64, f64)> = (0..noise.windows)
        .map(|w| {
            let start = t0 + span * (0.05 + 0.9 * unit_f64(mix_seed(noise.seed, w as u64)));
            (start, start + noise.window_duration)
        })
        .collect();
    stream
        .iter()
        .filter(|e| !windows.iter().any(|&(a, b)| e.t >= a && e.t < b))
        .copied()
        .collect()
}

/// Applies a degradation pipeline to a stream, in order.
///
/// `width`/`height` describe the sensor (burst pixels and the injector's hot
/// pixels are drawn inside it).
pub fn apply_noise(
    stream: &EventStream,
    width: u16,
    height: u16,
    stages: &[NoiseStage],
) -> EventStream {
    let mut out = stream.clone();
    for stage in stages {
        out = match stage {
            NoiseStage::Injector(config) => {
                NoiseInjector::new(width, height, *config).corrupt(&out).0
            }
            NoiseStage::Burst(b) => apply_burst(&out, width, height, b),
            NoiseStage::Dropout(d) => apply_dropout(&out, d),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> EventStream {
        (0..n)
            .map(|i| {
                Event::new(
                    i as f64 * 1e-3,
                    (i % 80) as u16,
                    (i % 60) as u16,
                    Polarity::Positive,
                )
            })
            .collect()
    }

    #[test]
    fn burst_adds_events_deterministically() {
        let s = stream(1000);
        let noise = BurstNoise {
            bursts: 3,
            events_per_burst: 200,
            burst_duration: 0.004,
            seed: 42,
        };
        let a = apply_noise(&s, 80, 60, &[NoiseStage::Burst(noise)]);
        let b = apply_noise(&s, 80, 60, &[NoiseStage::Burst(noise)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000 + 3 * 200);
        assert!(a.iter().all(|e| e.x < 80 && e.y < 60));
        // Injected timestamps stay inside the original span.
        assert!(a.start_time().unwrap() >= s.start_time().unwrap());
        assert!(a.end_time().unwrap() <= s.end_time().unwrap());
    }

    #[test]
    fn dropout_removes_whole_windows() {
        let s = stream(1000);
        let noise = DropoutNoise {
            windows: 2,
            window_duration: 0.05,
            seed: 7,
        };
        let a = apply_noise(&s, 80, 60, &[NoiseStage::Dropout(noise)]);
        let b = apply_noise(&s, 80, 60, &[NoiseStage::Dropout(noise)]);
        assert_eq!(a, b);
        assert!(a.len() < s.len(), "dropout removed nothing");
        // Order is preserved (filtering never reorders).
        assert!(a.as_slice().windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn empty_stream_passes_through() {
        let s = EventStream::new();
        let out = apply_noise(
            &s,
            80,
            60,
            &[
                NoiseStage::Burst(BurstNoise {
                    bursts: 2,
                    events_per_burst: 10,
                    burst_duration: 0.01,
                    seed: 1,
                }),
                NoiseStage::Dropout(DropoutNoise {
                    windows: 1,
                    window_duration: 0.01,
                    seed: 2,
                }),
            ],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn stages_compose_in_order() {
        let s = stream(2000);
        let stages = [
            NoiseStage::Injector(NoiseConfig {
                background_activity_rate: 0.2,
                seed: 3,
                ..NoiseConfig::clean()
            }),
            NoiseStage::Dropout(DropoutNoise {
                windows: 1,
                window_duration: 0.1,
                seed: 4,
            }),
        ];
        let a = apply_noise(&s, 80, 60, &stages);
        let b = apply_noise(&s, 80, 60, &stages);
        assert_eq!(a, b);
    }
}
