//! `eventor-fuzz` — the seeded generative world composer.
//!
//! Where the corpus ([`crate::corpus`]) is ten *hand-picked* points in
//! scenario space, this module makes the space itself enumerable: a
//! [`WorldSpec`] names one point along every generator axis — trajectory
//! shape × depth structure × trajectory length × stream budget × depth-plane
//! count × a pipeline of sensor degradations — and [`WorldSpec::build`]
//! materializes it deterministically, exactly like a corpus scenario.
//!
//! The spec is the fuzzer's unit of currency:
//!
//! * [`WorldSpec::generate`] draws spec `i` of a seeded campaign, so
//!   `fuzz --seed S` enumerates the same worlds on every host,
//! * the spec round-trips through a text form (`eventor-fuzzworld/1`,
//!   [`WorldSpec::to_text`] / [`WorldSpec::parse`]) so a failing world is a
//!   committable file, not a log line,
//! * the auto-minimizer ([`crate::minimize_spec`]) shrinks a failing spec
//!   *along its axes* — fewer samples, fewer events, fewer planes, fewer
//!   noise stages — which is only possible because the axes are explicit
//!   here instead of latent in a builder function.
//!
//! Grammar and ranges are documented in `docs/SCENARIOS.md` §8.

use crate::noise::{BurstNoise, DropoutNoise, NoiseStage};
use crate::worlds::{
    corridor_scene, dense_scene, dolly_trajectory, multiplane_scene, orbit_trajectory,
    shake_trajectory, simulator_config, slide_trajectory, small_camera, sparse_scene,
    spiral_trajectory, MAX_WORLD_EVENTS,
};
use crate::{apply_noise, mix_seed, ScenarioError, ScenarioWorld};
use eventor_emvs::{EmvsConfig, VotingMode};
use eventor_events::{EventCameraSimulator, NoiseConfig, Scene};
use eventor_geom::{Pose, Trajectory, UnitQuaternion, Vec3};

/// Header line of the `eventor-fuzzworld/1` text form.
pub const FUZZWORLD_HEADER: &str = "eventor-fuzzworld/1";

/// Smallest trajectory the generator or minimizer will emit (the builders
/// need at least two samples; eight keeps a world geometrically meaningful).
pub const MIN_SAMPLES: usize = 8;
/// Largest trajectory the generator draws.
pub const MAX_SAMPLES: usize = 96;
/// Smallest stream budget the minimizer may shrink to.
pub const MIN_EVENT_CAP: usize = 64;
/// Smallest depth-plane count the minimizer may shrink to
/// ([`EmvsConfig`] itself requires at least two).
pub const MIN_PLANES: usize = 4;
/// Largest depth-plane count the generator draws.
pub const MAX_PLANES: usize = 64;
/// Most degradation stages one generated world carries.
pub const MAX_NOISE_STAGES: usize = 2;

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Trajectory shapes the composer can draw, including the long-horizon
/// `drift` walk that only exists in the fuzz grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrajectoryKind {
    /// Circular arc around the scene centre.
    Orbit,
    /// Outward corkscrew sweep.
    Spiral,
    /// Forward dolly with lateral drift.
    Dolly,
    /// Hand-held jitter sweep.
    Shake,
    /// Linear slider sweep.
    Slide,
    /// Long-horizon drift: a seeded momentum random walk superimposed on a
    /// slow lateral sweep, with bounded slowly-drifting attitude — the
    /// "operator wandered off" trajectory class the corpus lacks.
    Drift,
}

impl TrajectoryKind {
    /// Every kind, in grammar order.
    pub const ALL: [TrajectoryKind; 6] = [
        TrajectoryKind::Orbit,
        TrajectoryKind::Spiral,
        TrajectoryKind::Dolly,
        TrajectoryKind::Shake,
        TrajectoryKind::Slide,
        TrajectoryKind::Drift,
    ];

    /// Grammar name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Orbit => "orbit",
            Self::Spiral => "spiral",
            Self::Dolly => "dolly",
            Self::Shake => "shake",
            Self::Slide => "slide",
            Self::Drift => "drift",
        }
    }

    /// Parses a grammar name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Contrast threshold used when simulating this shape (tuned so streams
    /// stay within budget before the cap truncates).
    fn contrast(self) -> f64 {
        match self {
            Self::Orbit => 0.20,
            Self::Spiral => 0.30,
            Self::Dolly => 0.30,
            Self::Shake => 0.32,
            Self::Slide => 0.30,
            Self::Drift => 0.30,
        }
    }

    /// Builds the trajectory at `samples` poses over the unit time span.
    fn build(self, seed: u64, samples: usize) -> Trajectory {
        match self {
            Self::Orbit => orbit_trajectory(Vec3::new(0.0, 0.0, 2.0), 1.9, 0.18, samples),
            Self::Spiral => spiral_trajectory(1.8, 0.24, 0.08, samples),
            Self::Dolly => dolly_trajectory(0.65, 0.18, samples),
            Self::Shake => shake_trajectory(0.22, 0.012, mix_seed(seed, 0x54), samples),
            Self::Slide => slide_trajectory(0.4, samples),
            Self::Drift => drift_trajectory(mix_seed(seed, 0x55), samples),
        }
    }
}

/// Long-horizon drift: momentum random walk plus slow bounded attitude
/// drift, superimposed on a lateral sweep so the scene stays in view and the
/// baseline keeps growing.
pub(crate) fn drift_trajectory(seed: u64, samples: usize) -> Trajectory {
    let mut t = Trajectory::new();
    let mut drift = Vec3::new(0.0, 0.0, 0.0);
    let mut vel = Vec3::new(0.0, 0.0, 0.0);
    let mut att = [0.0f64; 3];
    let mut att_vel = [0.0f64; 3];
    for i in 0..samples {
        let s = i as f64 / (samples - 1) as f64;
        let b = mix_seed(seed, i as u64);
        let acc = Vec3::new(
            0.012 * (unit_f64(mix_seed(b, 0)) - 0.5),
            0.012 * (unit_f64(mix_seed(b, 1)) - 0.5),
            0.006 * (unit_f64(mix_seed(b, 2)) - 0.5),
        );
        vel = vel * 0.92 + acc;
        drift += vel;
        drift = Vec3::new(
            drift.x.clamp(-0.15, 0.15),
            drift.y.clamp(-0.12, 0.12),
            drift.z.clamp(-0.10, 0.10),
        );
        for a in 0..3 {
            att_vel[a] = att_vel[a] * 0.9 + 0.002 * (unit_f64(mix_seed(b, 3 + a as u64)) - 0.5);
            att[a] = (att[a] + att_vel[a]).clamp(-0.04, 0.04);
        }
        let sweep = -0.28 + 0.56 * s;
        let eye = Vec3::new(sweep + drift.x, drift.y, drift.z);
        let rot = UnitQuaternion::from_euler(att[0], att[1], att[2]);
        t.push(s, Pose::new(rot, eye))
            .expect("drift times increase");
    }
    t
}

/// Depth structures the composer can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// One small textured target.
    Sparse,
    /// 3×3 grid of staggered patches.
    Dense,
    /// Four-plane staircase.
    Multiplane,
    /// Walled corridor with a back wall.
    Corridor,
}

impl SceneKind {
    /// Every kind, in grammar order.
    pub const ALL: [SceneKind; 4] = [
        SceneKind::Sparse,
        SceneKind::Dense,
        SceneKind::Multiplane,
        SceneKind::Corridor,
    ];

    /// Grammar name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Sparse => "sparse",
            Self::Dense => "dense",
            Self::Multiplane => "multiplane",
            Self::Corridor => "corridor",
        }
    }

    /// Parses a grammar name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    fn build(self, seed: u64) -> Scene {
        match self {
            Self::Sparse => sparse_scene(mix_seed(seed, 0x5C), 1.5),
            Self::Dense => dense_scene(mix_seed(seed, 0x5D), 1.8),
            Self::Multiplane => multiplane_scene(mix_seed(seed, 0x5E)),
            Self::Corridor => corridor_scene(mix_seed(seed, 0x5F)),
        }
    }

    /// Depth sweep matched to the scene's geometry.
    fn depth_range(self) -> (f64, f64) {
        match self {
            Self::Sparse => (0.7, 3.0),
            Self::Dense => (0.8, 3.8),
            Self::Multiplane => (0.8, 4.5),
            Self::Corridor => (0.9, 4.8),
        }
    }

    fn keyframe_distance(self) -> f64 {
        match self {
            Self::Sparse => 0.08,
            Self::Dense => 0.16,
            Self::Multiplane => 0.14,
            Self::Corridor => 0.18,
        }
    }
}

/// One degradation stage of a fuzzed world.
///
/// Parameters are integers (micro-seconds, parts-per-million, milli-units)
/// so the text form round-trips exactly; the stage seed is derived from the
/// world seed and the stage's position, never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseSpec {
    /// Readout burst storms ([`BurstNoise`]).
    Burst {
        /// Number of storms.
        bursts: u32,
        /// Spurious events per storm.
        events_per_burst: u32,
        /// Storm duration in microseconds.
        duration_us: u32,
    },
    /// Transport-loss dropout windows ([`DropoutNoise`]).
    Dropout {
        /// Number of windows.
        windows: u32,
        /// Window duration in microseconds.
        duration_us: u32,
    },
    /// Hot pixels via the per-event injector.
    HotPixel {
        /// Hot-pixel fraction in parts per million of the sensor.
        fraction_ppm: u32,
        /// Firing rate of each hot pixel, events per second.
        rate: u32,
    },
    /// Background-activity clutter plus uniform drop via the injector.
    Clutter {
        /// Background activity rate in milli-events per pixel-second.
        rate_milli: u32,
        /// Uniform drop probability in parts per million.
        drop_ppm: u32,
    },
}

impl NoiseSpec {
    /// Draws one stage from a sub-seed.
    fn generate(s: u64) -> Self {
        match s % 4 {
            0 => Self::Burst {
                bursts: 1 + (mix_seed(s, 1) % 6) as u32,
                events_per_burst: 100 + (mix_seed(s, 2) % 900) as u32,
                duration_us: 2_000 + (mix_seed(s, 3) % 8_000) as u32,
            },
            1 => Self::Dropout {
                windows: 1 + (mix_seed(s, 1) % 4) as u32,
                duration_us: 10_000 + (mix_seed(s, 2) % 50_000) as u32,
            },
            2 => Self::HotPixel {
                fraction_ppm: 500 + (mix_seed(s, 1) % 4_500) as u32,
                rate: 100 + (mix_seed(s, 2) % 500) as u32,
            },
            _ => Self::Clutter {
                rate_milli: 100 + (mix_seed(s, 1) % 1_200) as u32,
                drop_ppm: (mix_seed(s, 2) % 60_000) as u32,
            },
        }
    }

    /// Instantiates the stage for a world, deriving its seed from the world
    /// seed and the stage index.
    pub(crate) fn to_stage(self, world_seed: u64, index: usize) -> NoiseStage {
        let s = mix_seed(world_seed, 0x4E00 + index as u64);
        match self {
            Self::Burst {
                bursts,
                events_per_burst,
                duration_us,
            } => NoiseStage::Burst(BurstNoise {
                bursts: bursts as usize,
                events_per_burst: events_per_burst as usize,
                burst_duration: duration_us as f64 * 1e-6,
                seed: s,
            }),
            Self::Dropout {
                windows,
                duration_us,
            } => NoiseStage::Dropout(DropoutNoise {
                windows: windows as usize,
                window_duration: duration_us as f64 * 1e-6,
                seed: s,
            }),
            Self::HotPixel { fraction_ppm, rate } => NoiseSpec::injector(NoiseConfig {
                hot_pixel_fraction: fraction_ppm as f64 * 1e-6,
                hot_pixel_rate: rate as f64,
                seed: s,
                ..NoiseConfig::clean()
            }),
            Self::Clutter {
                rate_milli,
                drop_ppm,
            } => NoiseSpec::injector(NoiseConfig {
                background_activity_rate: rate_milli as f64 * 1e-3,
                drop_probability: drop_ppm as f64 * 1e-6,
                seed: s,
                ..NoiseConfig::clean()
            }),
        }
    }

    fn injector(config: NoiseConfig) -> NoiseStage {
        NoiseStage::Injector(config)
    }

    /// Text form (one `noise =` line's value).
    fn to_value(self) -> String {
        match self {
            Self::Burst {
                bursts,
                events_per_burst,
                duration_us,
            } => format!("burst:{bursts}:{events_per_burst}:{duration_us}"),
            Self::Dropout {
                windows,
                duration_us,
            } => format!("dropout:{windows}:{duration_us}"),
            Self::HotPixel { fraction_ppm, rate } => format!("hotpixel:{fraction_ppm}:{rate}"),
            Self::Clutter {
                rate_milli,
                drop_ppm,
            } => format!("clutter:{rate_milli}:{drop_ppm}"),
        }
    }

    fn parse_value(value: &str) -> Result<Self, ScenarioError> {
        let bad = |reason: String| ScenarioError::Spec { reason };
        let mut parts = value.split(':');
        let kind = parts.next().unwrap_or_default();
        let mut nums: Vec<u32> = Vec::new();
        for p in parts {
            nums.push(
                p.parse()
                    .map_err(|_| bad(format!("noise parameter `{p}` is not a u32")))?,
            );
        }
        match (kind, nums.as_slice()) {
            ("burst", &[bursts, events_per_burst, duration_us]) => Ok(Self::Burst {
                bursts,
                events_per_burst,
                duration_us,
            }),
            ("dropout", &[windows, duration_us]) => Ok(Self::Dropout {
                windows,
                duration_us,
            }),
            ("hotpixel", &[fraction_ppm, rate]) => Ok(Self::HotPixel { fraction_ppm, rate }),
            ("clutter", &[rate_milli, drop_ppm]) => Ok(Self::Clutter {
                rate_milli,
                drop_ppm,
            }),
            _ => Err(bad(format!(
                "unknown or malformed noise stage `{value}` \
                 (expected burst:n:n:n, dropout:n:n, hotpixel:n:n or clutter:n:n)"
            ))),
        }
    }
}

/// One point in generator space: everything needed to rebuild a fuzzed world
/// bit-identically on any host.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldSpec {
    /// World seed: all textures, jitter and noise-stage seeds derive from it.
    pub seed: u64,
    /// Trajectory shape.
    pub trajectory: TrajectoryKind,
    /// Depth structure.
    pub scene: SceneKind,
    /// Trajectory sample count (world length axis).
    pub samples: usize,
    /// Stream budget: events kept after degradation (workload axis).
    pub event_cap: usize,
    /// Depth-plane count of the reconstruction configuration.
    pub planes: usize,
    /// Degradation pipeline, applied in order.
    pub noise: Vec<NoiseSpec>,
    /// Expected reconstruction digest, once pinned (committed regressions).
    pub golden: Option<u64>,
}

impl WorldSpec {
    /// Draws campaign world `index` of seed `seed` — the generative grammar:
    /// uniform over trajectory × scene, log-ish uniform over the numeric
    /// axes, zero to [`MAX_NOISE_STAGES`] degradation stages.
    pub fn generate(seed: u64, index: u64) -> Self {
        let base = mix_seed(seed, index);
        let n_noise = (mix_seed(base, 6) % (MAX_NOISE_STAGES as u64 + 1)) as usize;
        Self {
            seed: base,
            trajectory: TrajectoryKind::ALL[(mix_seed(base, 1) % 6) as usize],
            scene: SceneKind::ALL[(mix_seed(base, 2) % 4) as usize],
            samples: 24 + (mix_seed(base, 3) % (MAX_SAMPLES as u64 - 23)) as usize,
            event_cap: 1_500 + (mix_seed(base, 4) % 14_501) as usize,
            planes: 16 + (mix_seed(base, 5) % (MAX_PLANES as u64 - 15)) as usize,
            noise: (0..n_noise)
                .map(|i| NoiseSpec::generate(mix_seed(base, 7 + i as u64)))
                .collect(),
            golden: None,
        }
    }

    /// Checks the numeric axes against the grammar's floors and ceilings.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] naming the violated bound.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let bad = |reason: String| Err(ScenarioError::Spec { reason });
        if self.samples < MIN_SAMPLES || self.samples > 4 * MAX_SAMPLES {
            return bad(format!(
                "samples {} outside [{MIN_SAMPLES}, {}]",
                self.samples,
                4 * MAX_SAMPLES
            ));
        }
        if self.event_cap < MIN_EVENT_CAP || self.event_cap > MAX_WORLD_EVENTS {
            return bad(format!(
                "event_cap {} outside [{MIN_EVENT_CAP}, {MAX_WORLD_EVENTS}]",
                self.event_cap
            ));
        }
        if self.planes < MIN_PLANES || self.planes > 4 * MAX_PLANES {
            return bad(format!(
                "planes {} outside [{MIN_PLANES}, {}]",
                self.planes,
                4 * MAX_PLANES
            ));
        }
        if self.noise.len() > 2 * MAX_NOISE_STAGES {
            return bad(format!(
                "{} noise stages (max {})",
                self.noise.len(),
                2 * MAX_NOISE_STAGES
            ));
        }
        Ok(())
    }

    /// The reconstruction configuration this spec builds with (no
    /// simulation).
    pub fn config(&self) -> EmvsConfig {
        let (near, far) = self.scene.depth_range();
        EmvsConfig::default()
            .with_depth_range(near, far)
            .with_depth_planes(self.planes)
            .with_keyframe_distance(self.scene.keyframe_distance())
            .with_voting(VotingMode::Nearest)
    }

    /// The session admission profile this spec serves with — the corpus
    /// camera plus [`Self::config`] — **without** simulating the world.
    /// Mirrors `CorpusScenario::session_profile`: a serving front-end can
    /// admit a session for a committed spec before (or without) paying for
    /// event simulation.
    pub fn session_profile(&self) -> (eventor_geom::CameraModel, EmvsConfig) {
        (small_camera(), self.config())
    }

    /// Display name of the world this spec builds.
    pub fn world_name(&self) -> String {
        format!(
            "fuzz_{}_{}_{:016x}",
            self.trajectory.name(),
            self.scene.name(),
            self.seed
        )
    }

    /// Materializes the world: simulate, degrade, truncate to the budget.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] for out-of-range axes, otherwise propagates
    /// simulator failures.
    pub fn build(&self) -> Result<ScenarioWorld, ScenarioError> {
        self.validate()?;
        let camera = small_camera();
        let trajectory = self.trajectory.build(self.seed, self.samples);
        let scene = self.scene.build(self.seed);
        let simulator = EventCameraSimulator::new(
            camera,
            simulator_config(self.seed, self.trajectory.contrast()),
        );
        let (clean, _stats) = simulator.simulate(&scene, &trajectory)?;
        let stages: Vec<NoiseStage> = self
            .noise
            .iter()
            .enumerate()
            .map(|(i, n)| n.to_stage(self.seed, i))
            .collect();
        let width = camera.intrinsics.width as u16;
        let height = camera.intrinsics.height as u16;
        let degraded = apply_noise(&clean, width, height, &stages);
        let events: eventor_events::EventStream = degraded
            .as_slice()
            .iter()
            .take(self.event_cap.min(MAX_WORLD_EVENTS))
            .copied()
            .collect();
        Ok(ScenarioWorld {
            name: self.world_name(),
            seed: self.seed,
            camera,
            trajectory,
            events,
            config: self.config(),
        })
    }

    /// Serializes the spec to the `eventor-fuzzworld/1` text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(FUZZWORLD_HEADER);
        out.push('\n');
        out.push_str(&format!("seed = {:#018x}\n", self.seed));
        out.push_str(&format!("trajectory = {}\n", self.trajectory.name()));
        out.push_str(&format!("scene = {}\n", self.scene.name()));
        out.push_str(&format!("samples = {}\n", self.samples));
        out.push_str(&format!("event_cap = {}\n", self.event_cap));
        out.push_str(&format!("planes = {}\n", self.planes));
        for n in &self.noise {
            out.push_str(&format!("noise = {}\n", n.to_value()));
        }
        if let Some(golden) = self.golden {
            out.push_str(&format!("golden = {golden:#018x}\n"));
        }
        out
    }

    /// Parses the `eventor-fuzzworld/1` text form (strict: unknown keys,
    /// missing keys, duplicate keys and a wrong header are all errors).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] describing the first problem found.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let bad = |reason: String| ScenarioError::Spec { reason };
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some(FUZZWORLD_HEADER) => {}
            other => {
                return Err(bad(format!(
                    "expected header `{FUZZWORLD_HEADER}`, found {other:?}"
                )));
            }
        }
        let parse_u64 = |v: &str| -> Result<u64, ScenarioError> {
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            };
            parsed.map_err(|_| bad(format!("`{v}` is not a u64")))
        };
        let mut seed = None;
        let mut trajectory = None;
        let mut scene = None;
        let mut samples = None;
        let mut event_cap = None;
        let mut planes = None;
        let mut noise = Vec::new();
        let mut golden = None;
        for line in lines {
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| bad(format!("line `{line}` is not `key = value`")))?;
            let duplicate = |k: &str| bad(format!("duplicate key `{k}`"));
            match key {
                "seed" => {
                    if seed.replace(parse_u64(value)?).is_some() {
                        return Err(duplicate(key));
                    }
                }
                "trajectory" => {
                    let kind = TrajectoryKind::parse(value)
                        .ok_or_else(|| bad(format!("unknown trajectory `{value}`")))?;
                    if trajectory.replace(kind).is_some() {
                        return Err(duplicate(key));
                    }
                }
                "scene" => {
                    let kind = SceneKind::parse(value)
                        .ok_or_else(|| bad(format!("unknown scene `{value}`")))?;
                    if scene.replace(kind).is_some() {
                        return Err(duplicate(key));
                    }
                }
                "samples" => {
                    if samples.replace(parse_u64(value)? as usize).is_some() {
                        return Err(duplicate(key));
                    }
                }
                "event_cap" => {
                    if event_cap.replace(parse_u64(value)? as usize).is_some() {
                        return Err(duplicate(key));
                    }
                }
                "planes" => {
                    if planes.replace(parse_u64(value)? as usize).is_some() {
                        return Err(duplicate(key));
                    }
                }
                "noise" => noise.push(NoiseSpec::parse_value(value)?),
                "golden" => {
                    if golden.replace(parse_u64(value)?).is_some() {
                        return Err(duplicate(key));
                    }
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }
        let require = |name: &str| bad(format!("missing key `{name}`"));
        let spec = Self {
            seed: seed.ok_or_else(|| require("seed"))?,
            trajectory: trajectory.ok_or_else(|| require("trajectory"))?,
            scene: scene.ok_or_else(|| require("scene"))?,
            samples: samples.ok_or_else(|| require("samples"))?,
            event_cap: event_cap.ok_or_else(|| require("event_cap"))?,
            planes: planes.ok_or_else(|| require("planes"))?,
            noise,
            golden,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a = WorldSpec::generate(0xF00D, 3);
        let b = WorldSpec::generate(0xF00D, 3);
        assert_eq!(a, b);
        let specs: Vec<WorldSpec> = (0..24).map(|i| WorldSpec::generate(0xF00D, i)).collect();
        let kinds: std::collections::HashSet<_> =
            specs.iter().map(|s| (s.trajectory, s.scene)).collect();
        assert!(kinds.len() >= 6, "only {} distinct kind pairs", kinds.len());
        for s in &specs {
            s.validate().expect("generated specs are always in range");
        }
    }

    #[test]
    fn text_form_round_trips_exactly() {
        for i in 0..16 {
            let mut spec = WorldSpec::generate(0xBEEF, i);
            if i % 3 == 0 {
                spec.golden = Some(mix_seed(i, 0));
            }
            let text = spec.to_text();
            let back = WorldSpec::parse(&text).expect("round trip parses");
            assert_eq!(back, spec, "{text}");
            assert_eq!(back.to_text(), text);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        let good = WorldSpec::generate(1, 0).to_text();
        for (mutation, needle) in [
            (
                good.replace(FUZZWORLD_HEADER, "eventor-fuzzworld/9"),
                "header",
            ),
            (
                good.replace("trajectory = ", "trajectory = warp # "),
                "unknown trajectory",
            ),
            (good.replace("scene = ", "scene = void # "), "unknown scene"),
            (good.replace("samples = ", "samples = -4 # "), "not a u64"),
            (format!("{good}seed = 7\n"), "duplicate key"),
            (format!("{good}warp = 9\n"), "unknown key"),
            (good.replace("planes", "plains"), "unknown key"),
        ] {
            let err = WorldSpec::parse(&mutation).expect_err(&mutation);
            assert!(err.to_string().contains(needle), "{err} !~ {needle}");
        }
        let missing = good
            .lines()
            .filter(|l| !l.starts_with("event_cap"))
            .collect::<Vec<_>>()
            .join("\n");
        let err = WorldSpec::parse(&missing).unwrap_err();
        assert!(err.to_string().contains("missing key `event_cap`"), "{err}");
    }

    #[test]
    fn out_of_range_axes_are_rejected() {
        let mut spec = WorldSpec::generate(2, 0);
        spec.samples = 2;
        assert!(spec.validate().is_err());
        spec = WorldSpec::generate(2, 0);
        spec.event_cap = 1;
        assert!(spec.validate().is_err());
        spec = WorldSpec::generate(2, 0);
        spec.planes = 1;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn build_is_deterministic_and_respects_the_budget() {
        // One spec per trajectory kind, so the drift walk is covered too.
        for (i, kind) in TrajectoryKind::ALL.into_iter().enumerate() {
            let mut spec = WorldSpec::generate(0xAB, i as u64);
            spec.trajectory = kind;
            spec.samples = 24;
            spec.event_cap = 2_000;
            let a = spec
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            let b = spec
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(a.events, b.events, "{}", kind.name());
            assert!(a.events.len() <= 2_000, "{}", kind.name());
            assert!(!a.events.is_empty(), "{}: empty stream", kind.name());
            assert_eq!(a.trajectory.len(), 24);
            assert!(a.config.validate().is_ok());
            // Events never outrun the poses.
            assert!(
                a.events.end_time().unwrap() <= a.trajectory.end_time().unwrap(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn drift_trajectory_moves_but_stays_bounded() {
        let t = drift_trajectory(77, 64);
        assert_eq!(t.len(), 64);
        let first = t.iter().next().unwrap().pose.translation;
        let last = t.iter().last().unwrap().pose.translation;
        assert!((last.x - first.x).abs() > 0.3, "no net sweep");
        for s in t.iter() {
            let p = s.pose.translation;
            assert!(p.x.abs() < 0.6 && p.y.abs() < 0.2 && p.z.abs() < 0.15);
        }
    }
}
