//! # eventor-map
//!
//! Global semi-dense mapping substrate for the Eventor reproduction: the
//! "Merging Depth Information" stage of the EMVS pipeline (reset DSI → point
//! cloud conversion → map updating) grown into a reusable component set.
//!
//! * [`VoxelGrid`] — sparse voxel-grid downsampling with confidence-weighted
//!   centroids, occupancy queries and support-based pruning,
//! * [`DepthFusion`] — confidence-weighted inverse-depth fusion of several
//!   semi-dense depth maps at a common reference view,
//! * [`GlobalMap`] — the accumulated world-frame map with per-key-frame
//!   book-keeping, statistics and PLY export.
//!
//! ## Example
//!
//! ```
//! use eventor_dsi::DepthMap;
//! use eventor_geom::{CameraIntrinsics, Pose, Vec3};
//! use eventor_map::{GlobalMap, GlobalMapConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut map = GlobalMap::new(GlobalMapConfig::default())?;
//! let mut depth = DepthMap::new(240, 180)?;
//! depth.set(100, 90, 1.5, 6.0);
//! depth.set(101, 90, 1.5, 7.0);
//! map.insert_depth_map(&depth, &CameraIntrinsics::davis240_default(), &Pose::identity());
//! let stats = map.statistics();
//! assert_eq!(stats.keyframes, 1);
//! assert!(map.is_occupied(Vec3::new(0.0, 0.0, 1.5)) || stats.map_points > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod fusion;
mod map;
mod voxelgrid;

pub use error::MapError;
pub use fusion::{DepthFusion, FusionConfig};
pub use map::{FusionDelta, GlobalMap, GlobalMapConfig, KeyframeEntry, MapStatistics};
pub use voxelgrid::{VoxelGrid, VoxelKey};

#[cfg(test)]
mod proptests {
    use super::*;
    use eventor_dsi::{MapPoint, PointCloud};
    use eventor_geom::Vec3;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn voxel_grid_never_produces_more_points_than_inserted(
            points in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, 0.1f64..5.0), 1..200),
            resolution in 0.01f64..1.0,
        ) {
            let mut grid = VoxelGrid::new(resolution).unwrap();
            for (x, y, z) in &points {
                grid.insert(MapPoint { position: Vec3::new(*x, *y, *z), confidence: 1.0 });
            }
            let cloud = grid.to_point_cloud();
            prop_assert!(cloud.len() <= points.len());
            prop_assert_eq!(grid.points_inserted(), points.len() as u64);
            prop_assert_eq!(grid.occupied_voxels(), cloud.len());
        }

        #[test]
        fn voxel_centroids_stay_inside_their_voxel(
            points in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0, 0.1f64..2.0), 1..100),
            resolution in 0.05f64..0.5,
        ) {
            let mut grid = VoxelGrid::new(resolution).unwrap();
            for (x, y, z) in &points {
                grid.insert(MapPoint { position: Vec3::new(*x, *y, *z), confidence: 1.0 });
            }
            for p in grid.to_point_cloud().points() {
                let key = VoxelKey::from_position(p.position, resolution);
                let center = key.center(resolution);
                prop_assert!((p.position.x - center.x).abs() <= resolution / 2.0 + 1e-9);
                prop_assert!((p.position.y - center.y).abs() <= resolution / 2.0 + 1e-9);
                prop_assert!((p.position.z - center.z).abs() <= resolution / 2.0 + 1e-9);
            }
        }

        #[test]
        fn global_map_statistics_are_consistent(
            n_frames in 1usize..6,
            points_per_frame in 1usize..40,
        ) {
            let mut map = GlobalMap::new(GlobalMapConfig::default()).unwrap();
            for f in 0..n_frames {
                let mut cloud = PointCloud::new();
                for i in 0..points_per_frame {
                    cloud.push(MapPoint {
                        position: Vec3::new(i as f64 * 0.1, f as f64 * 0.1, 1.0),
                        confidence: 1.0 + i as f64,
                    });
                }
                map.insert_cloud(&cloud, &eventor_geom::Pose::identity());
            }
            let stats = map.statistics();
            prop_assert_eq!(stats.keyframes, n_frames);
            prop_assert_eq!(stats.raw_points, (n_frames * points_per_frame) as u64);
            prop_assert!(stats.map_points <= n_frames * points_per_frame);
            prop_assert!(stats.map_points > 0);
            prop_assert!(stats.extent.x >= 0.0 && stats.extent.y >= 0.0 && stats.extent.z >= 0.0);
        }
    }
}
