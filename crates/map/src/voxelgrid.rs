//! Voxel-grid downsampling and occupancy queries over world-frame point
//! clouds.
//!
//! Every key frame of the EMVS pipeline contributes a local semi-dense point
//! cloud; naively concatenating them grows the global map without bound and
//! duplicates structure wherever key-frame views overlap. The voxel grid
//! keeps one representative point (the confidence-weighted centroid) per
//! occupied voxel, which is the standard map-updating strategy of semi-dense
//! event-based mapping systems.

use crate::MapError;
use eventor_dsi::{MapPoint, PointCloud};
use eventor_geom::Vec3;
use std::collections::HashMap;

/// Integer voxel key of a world-space position at a fixed resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VoxelKey {
    /// Voxel index along x.
    pub x: i64,
    /// Voxel index along y.
    pub y: i64,
    /// Voxel index along z.
    pub z: i64,
}

impl VoxelKey {
    /// Quantizes a world position to its voxel key at `resolution` metres per
    /// voxel edge.
    pub fn from_position(p: Vec3, resolution: f64) -> Self {
        Self {
            x: (p.x / resolution).floor() as i64,
            y: (p.y / resolution).floor() as i64,
            z: (p.z / resolution).floor() as i64,
        }
    }

    /// Centre of the voxel in world coordinates.
    pub fn center(&self, resolution: f64) -> Vec3 {
        Vec3::new(
            (self.x as f64 + 0.5) * resolution,
            (self.y as f64 + 0.5) * resolution,
            (self.z as f64 + 0.5) * resolution,
        )
    }
}

/// Accumulated contents of one occupied voxel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct VoxelAccumulator {
    weighted_sum: Vec3,
    weight: f64,
    count: u64,
    max_confidence: f64,
}

/// A sparse voxel grid accumulating confidence-weighted point centroids.
///
/// # Examples
///
/// ```
/// use eventor_map::VoxelGrid;
/// use eventor_dsi::{MapPoint, PointCloud};
/// use eventor_geom::Vec3;
///
/// # fn main() -> Result<(), eventor_map::MapError> {
/// let mut grid = VoxelGrid::new(0.05)?;
/// let mut cloud = PointCloud::new();
/// cloud.push(MapPoint { position: Vec3::new(0.01, 0.0, 1.0), confidence: 1.0 });
/// cloud.push(MapPoint { position: Vec3::new(0.02, 0.0, 1.0), confidence: 3.0 });
/// grid.insert_cloud(&cloud);
/// assert_eq!(grid.occupied_voxels(), 1);
/// assert_eq!(grid.to_point_cloud().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VoxelGrid {
    resolution: f64,
    voxels: HashMap<VoxelKey, VoxelAccumulator>,
    points_inserted: u64,
}

impl VoxelGrid {
    /// Creates a grid with the given voxel edge length in metres.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidResolution`] when `resolution` is not
    /// strictly positive and finite.
    pub fn new(resolution: f64) -> Result<Self, MapError> {
        if resolution <= 0.0 || !resolution.is_finite() {
            return Err(MapError::InvalidResolution { resolution });
        }
        Ok(Self {
            resolution,
            voxels: HashMap::new(),
            points_inserted: 0,
        })
    }

    /// The voxel edge length in metres.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Number of occupied voxels.
    pub fn occupied_voxels(&self) -> usize {
        self.voxels.len()
    }

    /// Number of raw points inserted so far.
    pub fn points_inserted(&self) -> u64 {
        self.points_inserted
    }

    /// Whether no points have been inserted.
    pub fn is_empty(&self) -> bool {
        self.voxels.is_empty()
    }

    /// Inserts a single point.
    pub fn insert(&mut self, point: MapPoint) {
        let key = VoxelKey::from_position(point.position, self.resolution);
        let weight = point.confidence.max(1e-9);
        let acc = self.voxels.entry(key).or_default();
        acc.weighted_sum += point.position * weight;
        acc.weight += weight;
        acc.count += 1;
        acc.max_confidence = acc.max_confidence.max(point.confidence);
        self.points_inserted += 1;
    }

    /// Inserts every point of a cloud.
    pub fn insert_cloud(&mut self, cloud: &PointCloud) {
        for &p in cloud.points() {
            self.insert(p);
        }
    }

    /// Whether the voxel containing `position` is occupied.
    pub fn is_occupied(&self, position: Vec3) -> bool {
        self.voxels
            .contains_key(&VoxelKey::from_position(position, self.resolution))
    }

    /// Number of raw points accumulated in the voxel containing `position`.
    pub fn occupancy_count(&self, position: Vec3) -> u64 {
        self.voxels
            .get(&VoxelKey::from_position(position, self.resolution))
            .map_or(0, |a| a.count)
    }

    /// Extracts the downsampled cloud: one confidence-weighted centroid per
    /// occupied voxel, carrying the voxel's maximum confidence.
    pub fn to_point_cloud(&self) -> PointCloud {
        let mut cloud = PointCloud::new();
        for acc in self.voxels.values() {
            cloud.push(MapPoint {
                position: acc.weighted_sum * (1.0 / acc.weight),
                confidence: acc.max_confidence,
            });
        }
        cloud
    }

    /// Removes voxels supported by fewer than `min_points` raw points — the
    /// counterpart of the radius-outlier filter for merged maps.
    pub fn prune(&mut self, min_points: u64) {
        self.voxels.retain(|_, acc| acc.count >= min_points);
    }

    /// Clears the grid.
    pub fn clear(&mut self) {
        self.voxels.clear();
        self.points_inserted = 0;
    }

    /// Axis-aligned bounds of the occupied voxel centres, or `None` when the
    /// grid is empty.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let mut iter = self.voxels.keys();
        let first = iter.next()?.center(self.resolution);
        let mut min = first;
        let mut max = first;
        for key in self.voxels.keys() {
            let c = key.center(self.resolution);
            min = Vec3::new(min.x.min(c.x), min.y.min(c.y), min.z.min(c.z));
            max = Vec3::new(max.x.max(c.x), max.y.max(c.y), max.z.max(c.z));
        }
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: f64, y: f64, z: f64, c: f64) -> MapPoint {
        MapPoint {
            position: Vec3::new(x, y, z),
            confidence: c,
        }
    }

    #[test]
    fn invalid_resolutions_are_rejected() {
        assert!(VoxelGrid::new(0.0).is_err());
        assert!(VoxelGrid::new(-0.1).is_err());
        assert!(VoxelGrid::new(f64::NAN).is_err());
        assert!(VoxelGrid::new(0.05).is_ok());
    }

    #[test]
    fn voxel_keys_quantize_consistently() {
        let k1 = VoxelKey::from_position(Vec3::new(0.01, 0.02, 0.03), 0.1);
        let k2 = VoxelKey::from_position(Vec3::new(0.09, 0.05, 0.001), 0.1);
        assert_eq!(k1, k2);
        let k3 = VoxelKey::from_position(Vec3::new(-0.01, 0.0, 0.0), 0.1);
        assert_ne!(k1, k3, "negative coordinates land in a different voxel");
        let c = k1.center(0.1);
        assert!((c.x - 0.05).abs() < 1e-12);
    }

    #[test]
    fn nearby_points_collapse_to_one_voxel() {
        let mut grid = VoxelGrid::new(0.1).unwrap();
        grid.insert(point(0.01, 0.01, 1.0, 1.0));
        grid.insert(point(0.02, 0.03, 1.01, 2.0));
        grid.insert(point(0.5, 0.5, 1.0, 1.0));
        assert_eq!(grid.occupied_voxels(), 2);
        assert_eq!(grid.points_inserted(), 3);
        let cloud = grid.to_point_cloud();
        assert_eq!(cloud.len(), 2);
    }

    #[test]
    fn centroid_is_confidence_weighted() {
        let mut grid = VoxelGrid::new(1.0).unwrap();
        grid.insert(point(0.1, 0.0, 0.0, 1.0));
        grid.insert(point(0.9, 0.0, 0.0, 3.0));
        let cloud = grid.to_point_cloud();
        assert_eq!(cloud.len(), 1);
        let p = cloud.points()[0];
        // Weighted centroid (0.1*1 + 0.9*3)/4 = 0.7.
        assert!((p.position.x - 0.7).abs() < 1e-12);
        assert_eq!(p.confidence, 3.0);
    }

    #[test]
    fn occupancy_queries() {
        let mut grid = VoxelGrid::new(0.2).unwrap();
        assert!(grid.is_empty());
        grid.insert(point(1.0, 1.0, 1.0, 1.0));
        grid.insert(point(1.05, 1.05, 1.05, 1.0));
        assert!(grid.is_occupied(Vec3::new(1.1, 1.1, 1.1)));
        assert!(!grid.is_occupied(Vec3::new(5.0, 5.0, 5.0)));
        assert_eq!(grid.occupancy_count(Vec3::new(1.0, 1.0, 1.0)), 2);
        assert_eq!(grid.occupancy_count(Vec3::new(5.0, 5.0, 5.0)), 0);
        assert!(!grid.is_empty());
    }

    #[test]
    fn prune_removes_weakly_supported_voxels() {
        let mut grid = VoxelGrid::new(0.1).unwrap();
        for _ in 0..5 {
            grid.insert(point(0.0, 0.0, 0.0, 1.0));
        }
        grid.insert(point(2.0, 2.0, 2.0, 1.0));
        assert_eq!(grid.occupied_voxels(), 2);
        grid.prune(3);
        assert_eq!(grid.occupied_voxels(), 1);
        grid.clear();
        assert!(grid.is_empty());
        assert_eq!(grid.points_inserted(), 0);
    }

    #[test]
    fn bounds_cover_occupied_voxels() {
        let mut grid = VoxelGrid::new(0.5).unwrap();
        assert!(grid.bounds().is_none());
        grid.insert(point(0.0, 0.0, 0.0, 1.0));
        grid.insert(point(2.0, -1.0, 3.0, 1.0));
        let (min, max) = grid.bounds().unwrap();
        assert!(min.x <= 0.25 && min.y <= -0.75 && min.z <= 0.25);
        assert!(max.x >= 2.0 && max.z >= 3.0);
    }

    #[test]
    fn insert_cloud_matches_individual_inserts() {
        let mut cloud = PointCloud::new();
        for i in 0..10 {
            cloud.push(point(i as f64 * 0.01, 0.0, 1.0, 1.0));
        }
        let mut a = VoxelGrid::new(0.05).unwrap();
        let mut b = VoxelGrid::new(0.05).unwrap();
        a.insert_cloud(&cloud);
        for &p in cloud.points() {
            b.insert(p);
        }
        assert_eq!(a, b);
        assert_eq!(a.resolution(), 0.05);
    }
}
