//! Depth-map fusion at a common reference view.
//!
//! When several key frames observe overlapping structure, their semi-dense
//! depth maps can be fused into a single, denser and more reliable estimate.
//! The fusion rule is the standard confidence-weighted inverse-depth average
//! with an agreement gate: estimates that disagree with the running fusion by
//! more than a relative threshold are treated as outliers and rejected
//! instead of being averaged in.

use crate::MapError;
use eventor_dsi::DepthMap;

/// Configuration of the depth-map fusion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionConfig {
    /// Maximum relative disagreement `|d - d_fused| / d_fused` for a new
    /// estimate to be averaged into a pixel that already has a fused value.
    pub agreement_threshold: f64,
    /// Minimum number of agreeing observations a pixel needs to survive
    /// [`DepthFusion::finalize`] when `require_consensus` is set.
    pub min_observations: u32,
    /// Whether `finalize` drops pixels with fewer than `min_observations`
    /// agreeing observations.
    pub require_consensus: bool,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self {
            agreement_threshold: 0.1,
            min_observations: 2,
            require_consensus: false,
        }
    }
}

/// Per-pixel fusion state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct FusedPixel {
    /// Confidence-weighted sum of inverse depths.
    weighted_inv_depth: f64,
    /// Sum of confidences.
    weight: f64,
    /// Number of agreeing observations.
    observations: u32,
    /// Number of rejected (disagreeing) observations.
    rejected: u32,
}

impl FusedPixel {
    fn fused_depth(&self) -> Option<f64> {
        if self.weight <= 0.0 {
            return None;
        }
        let inv = self.weighted_inv_depth / self.weight;
        if inv <= 0.0 {
            return None;
        }
        Some(1.0 / inv)
    }
}

/// Incremental confidence-weighted fusion of depth maps at one reference
/// view.
///
/// # Examples
///
/// ```
/// use eventor_dsi::DepthMap;
/// use eventor_map::{DepthFusion, FusionConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = DepthMap::new(4, 4)?;
/// a.set(1, 1, 2.0, 5.0);
/// let mut b = DepthMap::new(4, 4)?;
/// b.set(1, 1, 2.1, 5.0);
/// let mut fusion = DepthFusion::new(4, 4, FusionConfig::default())?;
/// fusion.fuse(&a)?;
/// fusion.fuse(&b)?;
/// let fused = fusion.finalize()?;
/// assert!(fused.is_valid(1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DepthFusion {
    width: usize,
    height: usize,
    config: FusionConfig,
    pixels: Vec<FusedPixel>,
    maps_fused: u32,
}

impl DepthFusion {
    /// Creates a fusion target of the given dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::DimensionMismatch`] when either dimension is zero.
    pub fn new(width: usize, height: usize, config: FusionConfig) -> Result<Self, MapError> {
        if width == 0 || height == 0 {
            return Err(MapError::DimensionMismatch {
                expected: (1, 1),
                actual: (width, height),
            });
        }
        Ok(Self {
            width,
            height,
            config,
            pixels: vec![FusedPixel::default(); width * height],
            maps_fused: 0,
        })
    }

    /// Width of the fusion target.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the fusion target.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of depth maps fused so far.
    pub fn maps_fused(&self) -> u32 {
        self.maps_fused
    }

    /// Fuses one depth map into the running estimate.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::DimensionMismatch`] when the map's dimensions do
    /// not match the fusion target.
    pub fn fuse(&mut self, map: &DepthMap) -> Result<(), MapError> {
        if map.width() != self.width || map.height() != self.height {
            return Err(MapError::DimensionMismatch {
                expected: (self.width, self.height),
                actual: (map.width(), map.height()),
            });
        }
        for y in 0..self.height {
            for x in 0..self.width {
                if !map.is_valid(x, y) {
                    continue;
                }
                let depth = map.depth(x, y);
                let confidence = map.confidence(x, y).max(1e-9);
                let pixel = &mut self.pixels[y * self.width + x];
                if let Some(fused) = pixel.fused_depth() {
                    let disagreement = (depth - fused).abs() / fused;
                    if disagreement > self.config.agreement_threshold {
                        pixel.rejected += 1;
                        continue;
                    }
                }
                pixel.weighted_inv_depth += confidence / depth;
                pixel.weight += confidence;
                pixel.observations += 1;
            }
        }
        self.maps_fused += 1;
        Ok(())
    }

    /// Number of pixels that currently hold a fused depth.
    pub fn fused_pixel_count(&self) -> usize {
        self.pixels
            .iter()
            .filter(|p| p.fused_depth().is_some())
            .count()
    }

    /// Total observations rejected by the agreement gate.
    pub fn rejected_observations(&self) -> u64 {
        self.pixels.iter().map(|p| p.rejected as u64).sum()
    }

    /// Extracts the fused depth map.
    ///
    /// When [`FusionConfig::require_consensus`] is set, pixels supported by
    /// fewer than [`FusionConfig::min_observations`] agreeing observations
    /// are left invalid.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::EmptyMap`] when no depth map was fused.
    pub fn finalize(&self) -> Result<DepthMap, MapError> {
        if self.maps_fused == 0 {
            return Err(MapError::EmptyMap);
        }
        let mut out =
            DepthMap::new(self.width, self.height).expect("dimensions validated at construction");
        for y in 0..self.height {
            for x in 0..self.width {
                let pixel = &self.pixels[y * self.width + x];
                let Some(depth) = pixel.fused_depth() else {
                    continue;
                };
                if self.config.require_consensus
                    && pixel.observations < self.config.min_observations
                {
                    continue;
                }
                out.set(x, y, depth, pixel.weight);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(width: usize, height: usize, entries: &[(usize, usize, f64, f64)]) -> DepthMap {
        let mut m = DepthMap::new(width, height).unwrap();
        for &(x, y, d, c) in entries {
            m.set(x, y, d, c);
        }
        m
    }

    #[test]
    fn zero_dimension_targets_are_rejected() {
        assert!(DepthFusion::new(0, 4, FusionConfig::default()).is_err());
        assert!(DepthFusion::new(4, 0, FusionConfig::default()).is_err());
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut fusion = DepthFusion::new(4, 4, FusionConfig::default()).unwrap();
        let wrong = DepthMap::new(8, 8).unwrap();
        assert!(matches!(
            fusion.fuse(&wrong),
            Err(MapError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn finalize_without_input_is_an_error() {
        let fusion = DepthFusion::new(4, 4, FusionConfig::default()).unwrap();
        assert_eq!(fusion.finalize(), Err(MapError::EmptyMap));
    }

    #[test]
    fn agreeing_estimates_average_in_inverse_depth() {
        let mut fusion = DepthFusion::new(4, 4, FusionConfig::default()).unwrap();
        fusion.fuse(&map_with(4, 4, &[(1, 1, 2.0, 1.0)])).unwrap();
        fusion.fuse(&map_with(4, 4, &[(1, 1, 2.1, 1.0)])).unwrap();
        let fused = fusion.finalize().unwrap();
        assert!(fused.is_valid(1, 1));
        let d = fused.depth(1, 1);
        // Harmonic-style mean of 2.0 and 2.1 lies between the two.
        assert!(d > 2.0 && d < 2.1, "fused depth {d}");
        assert_eq!(fusion.maps_fused(), 2);
        assert_eq!(fusion.fused_pixel_count(), 1);
        assert_eq!(fusion.rejected_observations(), 0);
    }

    #[test]
    fn disagreeing_estimates_are_rejected() {
        let mut fusion = DepthFusion::new(4, 4, FusionConfig::default()).unwrap();
        fusion.fuse(&map_with(4, 4, &[(2, 2, 2.0, 1.0)])).unwrap();
        fusion.fuse(&map_with(4, 4, &[(2, 2, 4.0, 10.0)])).unwrap();
        let fused = fusion.finalize().unwrap();
        // The 4.0 estimate disagrees by 100 % and must not move the fusion.
        assert!((fused.depth(2, 2) - 2.0).abs() < 1e-9);
        assert_eq!(fusion.rejected_observations(), 1);
    }

    #[test]
    fn higher_confidence_pulls_the_fusion_harder() {
        let mut fusion = DepthFusion::new(
            4,
            4,
            FusionConfig {
                agreement_threshold: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        fusion.fuse(&map_with(4, 4, &[(0, 0, 2.0, 1.0)])).unwrap();
        fusion.fuse(&map_with(4, 4, &[(0, 0, 3.0, 9.0)])).unwrap();
        let d = fusion.finalize().unwrap().depth(0, 0);
        assert!(
            (d - 2.0).abs() > (d - 3.0).abs(),
            "fused depth {d} should sit nearer 3.0"
        );
    }

    #[test]
    fn consensus_requirement_drops_single_observations() {
        let config = FusionConfig {
            require_consensus: true,
            min_observations: 2,
            ..Default::default()
        };
        let mut fusion = DepthFusion::new(4, 4, config).unwrap();
        fusion
            .fuse(&map_with(4, 4, &[(0, 0, 2.0, 1.0), (1, 0, 3.0, 1.0)]))
            .unwrap();
        fusion.fuse(&map_with(4, 4, &[(0, 0, 2.0, 1.0)])).unwrap();
        let fused = fusion.finalize().unwrap();
        assert!(fused.is_valid(0, 0), "pixel seen twice survives");
        assert!(!fused.is_valid(1, 0), "pixel seen once is dropped");
    }

    #[test]
    fn invalid_pixels_are_ignored() {
        let mut fusion = DepthFusion::new(4, 4, FusionConfig::default()).unwrap();
        let empty = DepthMap::new(4, 4).unwrap();
        fusion.fuse(&empty).unwrap();
        assert_eq!(fusion.fused_pixel_count(), 0);
        let fused = fusion.finalize().unwrap();
        assert_eq!(fused.valid_count(), 0);
        assert_eq!(fusion.width(), 4);
        assert_eq!(fusion.height(), 4);
    }
}
