//! The global semi-dense map accumulated over key reference views — the
//! "map updating" step of the EMVS merging stage, grown into a reusable
//! component.

use crate::voxelgrid::VoxelGrid;
use crate::MapError;
use eventor_dsi::{DepthMap, PointCloud};
use eventor_geom::{CameraIntrinsics, Pose, Vec3};
use std::io::Write;

/// Configuration of the global map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalMapConfig {
    /// Voxel edge length of the map's downsampling grid, metres.
    pub voxel_resolution: f64,
    /// Minimum number of raw points a voxel needs to survive extraction.
    pub min_voxel_support: u64,
}

impl Default for GlobalMapConfig {
    fn default() -> Self {
        Self {
            voxel_resolution: 0.02,
            min_voxel_support: 1,
        }
    }
}

/// Book-keeping entry for one key reference view merged into the map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyframeEntry {
    /// Camera-to-world pose of the key reference view.
    pub pose: Pose,
    /// Semi-dense pixels contributed by this key frame.
    pub points_contributed: usize,
    /// Mean depth of the contributed pixels, metres.
    pub mean_depth: f64,
}

/// Summary statistics of the global map.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MapStatistics {
    /// Key frames merged.
    pub keyframes: usize,
    /// Raw points inserted before downsampling.
    pub raw_points: u64,
    /// Points in the extracted (downsampled, pruned) map.
    pub map_points: usize,
    /// Occupied voxels before pruning.
    pub occupied_voxels: usize,
    /// Mean confidence of the extracted points.
    pub mean_confidence: f64,
    /// Axis-aligned extent of the map, metres (zero when empty).
    pub extent: Vec3,
}

/// What one incremental fusion step changed in the map — the per-key-frame
/// delta a streaming session observes (see
/// [`GlobalMap::fuse_incremental`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionDelta {
    /// Raw points inserted by this key frame.
    pub points: usize,
    /// Voxels newly occupied by this key frame (structure the map had not
    /// seen before).
    pub new_voxels: usize,
    /// Occupied voxels after the fusion.
    pub total_voxels: usize,
}

/// The global semi-dense map.
///
/// # Examples
///
/// ```
/// use eventor_map::{GlobalMap, GlobalMapConfig};
/// use eventor_dsi::DepthMap;
/// use eventor_geom::{CameraIntrinsics, Pose};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut map = GlobalMap::new(GlobalMapConfig::default())?;
/// let mut depth = DepthMap::new(240, 180)?;
/// depth.set(120, 90, 2.0, 8.0);
/// map.insert_depth_map(&depth, &CameraIntrinsics::davis240_default(), &Pose::identity());
/// assert_eq!(map.num_keyframes(), 1);
/// assert_eq!(map.point_cloud().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalMap {
    config: GlobalMapConfig,
    grid: VoxelGrid,
    keyframes: Vec<KeyframeEntry>,
}

impl GlobalMap {
    /// Creates an empty map.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidResolution`] when the configured voxel
    /// resolution is not strictly positive.
    pub fn new(config: GlobalMapConfig) -> Result<Self, MapError> {
        Ok(Self {
            grid: VoxelGrid::new(config.voxel_resolution)?,
            config,
            keyframes: Vec::new(),
        })
    }

    /// The map configuration.
    pub fn config(&self) -> &GlobalMapConfig {
        &self.config
    }

    /// Number of key frames merged so far.
    pub fn num_keyframes(&self) -> usize {
        self.keyframes.len()
    }

    /// The per-key-frame book-keeping entries.
    pub fn keyframes(&self) -> &[KeyframeEntry] {
        &self.keyframes
    }

    /// Whether no key frame has been merged.
    pub fn is_empty(&self) -> bool {
        self.keyframes.is_empty()
    }

    /// Converts a key frame's semi-dense depth map to world-frame points and
    /// merges it, returning the number of points contributed.
    pub fn insert_depth_map(
        &mut self,
        depth_map: &DepthMap,
        intrinsics: &CameraIntrinsics,
        pose: &Pose,
    ) -> usize {
        let cloud = PointCloud::from_depth_map(depth_map, intrinsics, pose);
        self.insert_cloud(&cloud, pose)
    }

    /// Merges an already-converted local point cloud, returning the number of
    /// points contributed.
    pub fn insert_cloud(&mut self, cloud: &PointCloud, pose: &Pose) -> usize {
        self.grid.insert_cloud(cloud);
        let mean_depth = if cloud.is_empty() {
            0.0
        } else {
            let camera_from_world = pose.inverse();
            cloud
                .points()
                .iter()
                .map(|p| camera_from_world.transform(p.position).z)
                .sum::<f64>()
                / cloud.len() as f64
        };
        self.keyframes.push(KeyframeEntry {
            pose: *pose,
            points_contributed: cloud.len(),
            mean_depth,
        });
        cloud.len()
    }

    /// Incremental fusion hook for streaming consumers: merges a key frame's
    /// local cloud and reports what changed, so a session can surface
    /// per-key-frame map growth without re-walking the grid.
    pub fn fuse_incremental(&mut self, cloud: &PointCloud, pose: &Pose) -> FusionDelta {
        let before = self.grid.occupied_voxels();
        let points = self.insert_cloud(cloud, pose);
        let total_voxels = self.grid.occupied_voxels();
        FusionDelta {
            points,
            new_voxels: total_voxels - before,
            total_voxels,
        }
    }

    /// Extracts the downsampled global point cloud (one point per
    /// sufficiently supported voxel).
    pub fn point_cloud(&self) -> PointCloud {
        if self.config.min_voxel_support <= 1 {
            return self.grid.to_point_cloud();
        }
        let mut pruned = self.grid.clone();
        pruned.prune(self.config.min_voxel_support);
        pruned.to_point_cloud()
    }

    /// Whether any merged structure occupies the voxel containing `position`.
    pub fn is_occupied(&self, position: Vec3) -> bool {
        self.grid.is_occupied(position)
    }

    /// Summary statistics of the current map.
    pub fn statistics(&self) -> MapStatistics {
        let cloud = self.point_cloud();
        let mean_confidence = if cloud.is_empty() {
            0.0
        } else {
            cloud.points().iter().map(|p| p.confidence).sum::<f64>() / cloud.len() as f64
        };
        let extent = cloud
            .bounds()
            .map_or(Vec3::new(0.0, 0.0, 0.0), |(min, max)| max - min);
        MapStatistics {
            keyframes: self.keyframes.len(),
            raw_points: self.grid.points_inserted(),
            map_points: cloud.len(),
            occupied_voxels: self.grid.occupied_voxels(),
            mean_confidence,
            extent,
        }
    }

    /// Writes the extracted global cloud as an ASCII PLY file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ply<W: Write>(&self, writer: W) -> std::io::Result<()> {
        self.point_cloud().write_ply(writer)
    }

    /// Clears the map.
    pub fn clear(&mut self) {
        self.grid.clear();
        self.keyframes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_dsi::MapPoint;

    fn sample_depth_map() -> DepthMap {
        let mut m = DepthMap::new(240, 180).unwrap();
        for x in 100..140 {
            m.set(x, 90, 2.0, 4.0);
        }
        m
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = GlobalMapConfig {
            voxel_resolution: 0.0,
            ..Default::default()
        };
        assert!(GlobalMap::new(config).is_err());
    }

    #[test]
    fn depth_maps_become_world_points() {
        let mut map = GlobalMap::new(GlobalMapConfig::default()).unwrap();
        let n = map.insert_depth_map(
            &sample_depth_map(),
            &CameraIntrinsics::davis240_default(),
            &Pose::identity(),
        );
        assert_eq!(n, 40);
        assert_eq!(map.num_keyframes(), 1);
        assert!(!map.is_empty());
        let stats = map.statistics();
        assert_eq!(stats.keyframes, 1);
        assert_eq!(stats.raw_points, 40);
        assert!(stats.map_points > 0 && stats.map_points <= 40);
        assert!(stats.mean_confidence > 0.0);
        // The keyframe entry records the mean depth of the contribution.
        assert!((map.keyframes()[0].mean_depth - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_keyframes_do_not_duplicate_structure() {
        let mut map = GlobalMap::new(GlobalMapConfig {
            voxel_resolution: 0.05,
            min_voxel_support: 1,
        })
        .unwrap();
        let intrinsics = CameraIntrinsics::davis240_default();
        let pose = Pose::identity();
        map.insert_depth_map(&sample_depth_map(), &intrinsics, &pose);
        let after_one = map.point_cloud().len();
        map.insert_depth_map(&sample_depth_map(), &intrinsics, &pose);
        let after_two = map.point_cloud().len();
        assert_eq!(
            after_one, after_two,
            "identical keyframes must collapse in the voxel grid"
        );
        assert_eq!(map.statistics().raw_points, 80);
    }

    #[test]
    fn voxel_support_pruning_removes_spurious_points() {
        let config = GlobalMapConfig {
            voxel_resolution: 0.05,
            min_voxel_support: 2,
        };
        let mut map = GlobalMap::new(config).unwrap();
        let mut cloud = PointCloud::new();
        // Two points in one voxel, one isolated point elsewhere.
        cloud.push(MapPoint {
            position: Vec3::new(0.0, 0.0, 1.0),
            confidence: 1.0,
        });
        cloud.push(MapPoint {
            position: Vec3::new(0.01, 0.0, 1.0),
            confidence: 1.0,
        });
        cloud.push(MapPoint {
            position: Vec3::new(5.0, 5.0, 5.0),
            confidence: 1.0,
        });
        map.insert_cloud(&cloud, &Pose::identity());
        assert_eq!(map.point_cloud().len(), 1);
        assert!(map.is_occupied(Vec3::new(0.0, 0.0, 1.0)));
        assert_eq!(map.statistics().occupied_voxels, 2);
    }

    #[test]
    fn incremental_fusion_reports_per_keyframe_deltas() {
        let mut map = GlobalMap::new(GlobalMapConfig {
            voxel_resolution: 0.05,
            min_voxel_support: 1,
        })
        .unwrap();
        let intrinsics = CameraIntrinsics::davis240_default();
        let pose = Pose::identity();
        let cloud = PointCloud::from_depth_map(&sample_depth_map(), &intrinsics, &pose);
        let first = map.fuse_incremental(&cloud, &pose);
        assert_eq!(first.points, cloud.len());
        assert!(first.new_voxels > 0);
        assert_eq!(first.total_voxels, first.new_voxels);
        // Re-fusing identical structure adds points but no new voxels.
        let second = map.fuse_incremental(&cloud, &pose);
        assert_eq!(second.new_voxels, 0);
        assert_eq!(second.total_voxels, first.total_voxels);
        assert_eq!(map.num_keyframes(), 2);
    }

    #[test]
    fn ply_export_writes_every_map_point() {
        let mut map = GlobalMap::new(GlobalMapConfig::default()).unwrap();
        map.insert_depth_map(
            &sample_depth_map(),
            &CameraIntrinsics::davis240_default(),
            &Pose::identity(),
        );
        let mut buffer = Vec::new();
        map.write_ply(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("ply"));
        assert!(text.contains(&format!("element vertex {}", map.point_cloud().len())));
    }

    #[test]
    fn clear_empties_the_map() {
        let mut map = GlobalMap::new(GlobalMapConfig::default()).unwrap();
        map.insert_depth_map(
            &sample_depth_map(),
            &CameraIntrinsics::davis240_default(),
            &Pose::identity(),
        );
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.statistics(), MapStatistics::default());
        assert_eq!(map.point_cloud().len(), 0);
        assert_eq!(map.config().min_voxel_support, 1);
    }

    #[test]
    fn empty_cloud_insertion_is_recorded_but_contributes_nothing() {
        let mut map = GlobalMap::new(GlobalMapConfig::default()).unwrap();
        let n = map.insert_cloud(&PointCloud::new(), &Pose::identity());
        assert_eq!(n, 0);
        assert_eq!(map.num_keyframes(), 1);
        assert_eq!(map.keyframes()[0].points_contributed, 0);
        assert_eq!(map.keyframes()[0].mean_depth, 0.0);
        assert_eq!(map.statistics().map_points, 0);
    }
}
