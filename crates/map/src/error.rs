//! Error type of the mapping substrate.

use std::error::Error;
use std::fmt;

/// Errors reported by the mapping substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// A voxel-grid resolution was not strictly positive.
    InvalidResolution {
        /// The offending voxel edge length.
        resolution: f64,
    },
    /// Two depth maps with different dimensions were fused.
    DimensionMismatch {
        /// Dimensions of the fusion target.
        expected: (usize, usize),
        /// Dimensions of the map being fused in.
        actual: (usize, usize),
    },
    /// An operation required a non-empty map.
    EmptyMap,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidResolution { resolution } => {
                write!(
                    f,
                    "voxel-grid resolution must be positive, got {resolution}"
                )
            }
            Self::DimensionMismatch { expected, actual } => write!(
                f,
                "depth-map dimensions {}x{} do not match fusion target {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
            Self::EmptyMap => write!(f, "operation requires a non-empty map"),
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let errors = [
            MapError::InvalidResolution { resolution: 0.0 },
            MapError::DimensionMismatch {
                expected: (240, 180),
                actual: (80, 60),
            },
            MapError::EmptyMap,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MapError::EmptyMap, MapError::EmptyMap);
        assert_ne!(
            MapError::EmptyMap,
            MapError::InvalidResolution { resolution: 1.0 }
        );
    }
}
