//! Throughput of the streaming `EventorSession` push/poll ingestion versus
//! the batch `reconstruct()` wrapper, per execution backend, on the full
//! `ThreePlanes` reconstruction.
//!
//! Rows:
//!
//! * `batch_software` — the legacy one-shot wrapper (itself a session
//!   internally): the baseline the streaming rows are compared against,
//! * `push_poll_software` — push/poll ingestion in 1024-event packets on the
//!   sequential software backend: measures the ingestion machinery's
//!   overhead (buffering, readiness checks, lifecycle events) on top of the
//!   same datapath,
//! * `push_poll_sharded_4` — the same feed on the 4-shard parallel voting
//!   engine,
//! * `push_poll_cosim` — the same feed driving the functional device model.
//!
//! Throughput is events per second across the whole reconstruction; the
//! session rows should stay within a few percent of `batch_software`
//! (ingestion is O(events), the datapath dominates).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_core::{
    config_for_sequence, EventorOptions, EventorPipeline, EventorSession, ParallelConfig,
};
use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
use eventor_hwsim::AcceleratorConfig;
use std::hint::black_box;

fn bench_streaming_session(c: &mut Criterion) {
    let seq = SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate");
    let config = config_for_sequence(&seq, 100);

    let mut group = c.benchmark_group("streaming_session");
    group.throughput(Throughput::Elements(seq.events.len() as u64));
    group.sample_size(10);

    {
        let pipeline =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .expect("experiment config is valid");
        let events = &seq.events;
        let trajectory = &seq.trajectory;
        group.bench_function("batch_software", move |b| {
            b.iter(|| {
                let out = pipeline
                    .reconstruct(black_box(events), trajectory)
                    .expect("reconstruction succeeds");
                black_box(out.keyframes.len())
            })
        });
    }

    let stream = |session: EventorSession, seq: &SyntheticSequence| {
        let mut session = session;
        session
            .push_trajectory(&seq.trajectory)
            .expect("trajectory pushes");
        for packet in seq.events.packets(1024) {
            session.push_events(packet).expect("packet pushes");
            black_box(session.poll().expect("poll succeeds").len());
        }
        let finished = session.finish().expect("session finishes");
        finished.output.keyframes.len()
    };

    {
        let (seq, config) = (&seq, &config);
        group.bench_function("push_poll_software", move |b| {
            b.iter(|| {
                let session = EventorSession::builder(seq.camera, config.clone())
                    .software(EventorOptions::accelerator())
                    .build()
                    .expect("session builds");
                black_box(stream(session, seq))
            })
        });
    }

    {
        let (seq, config) = (&seq, &config);
        group.bench_function("push_poll_sharded_4", move |b| {
            b.iter(|| {
                let session = EventorSession::builder(seq.camera, config.clone())
                    .sharded(
                        EventorOptions::accelerator(),
                        ParallelConfig::with_shards(4),
                    )
                    .build()
                    .expect("session builds");
                black_box(stream(session, seq))
            })
        });
    }

    {
        let (seq, config) = (&seq, &config);
        group.bench_function("push_poll_cosim", move |b| {
            b.iter(|| {
                let session = EventorSession::builder(seq.camera, config.clone())
                    .cosim(AcceleratorConfig::default())
                    .build()
                    .expect("session builds");
                black_box(stream(session, seq))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_streaming_session);
criterion_main!(benches);
