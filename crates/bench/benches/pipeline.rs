//! End-to-end benchmarks: the baseline EMVS mapper versus the reformulated
//! Eventor pipeline on a cached synthetic sequence (the software side of the
//! Table 3 comparison).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_core::{config_for_sequence, EventorOptions, EventorPipeline};
use eventor_emvs::EmvsMapper;
use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    // A reduced-scale sequence keeps the bench runtime reasonable while still
    // exercising the full pipeline.
    let seq = SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())
        .expect("fast_test sequence generates");
    let config = config_for_sequence(&seq, 50);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(seq.events.len() as u64));

    group.bench_function("baseline_bilinear_full_sequence", |b| {
        let mapper = EmvsMapper::new(seq.camera, config.clone()).unwrap();
        b.iter(|| black_box(mapper.reconstruct(&seq.events, &seq.trajectory).unwrap()))
    });

    group.bench_function("eventor_reformulated_full_sequence", |b| {
        let pipeline =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .unwrap();
        b.iter(|| black_box(pipeline.reconstruct(&seq.events, &seq.trajectory).unwrap()))
    });

    group.bench_function("eventor_nearest_only_full_sequence", |b| {
        let pipeline =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::nearest_only())
                .unwrap();
        b.iter(|| black_box(pipeline.reconstruct(&seq.events, &seq.trajectory).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
