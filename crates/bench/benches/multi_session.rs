//! Aggregate throughput of the `eventor-serve` multi-session engine: **64
//! heterogeneous synthetic streams** served concurrently on an 8-worker pool
//! versus the same 64 streams reconstructed one after another on a single
//! thread.
//!
//! Rows (group `multi_session`, `eventor-bench/1` JSON):
//!
//! * `sequential_1_worker` — each scene runs standalone through its own
//!   `EventorSession`, back to back: the no-serving-tier baseline,
//! * `serve_8_workers` — all 64 sessions admitted into one `ServeEngine`
//!   with 8 workers, fed, closed and drained to completion.
//!
//! Scenario diversity reuses the `eventor-events` generators: the four
//! synthetic scenes, four noise profiles (`NoiseInjector`), and per-stream
//! variation in depth-plane count, key-frame distance and stream length.
//! Both rows execute identical sessions on identical input — the engine adds
//! only scheduling — and the harness asserts bit-identical outputs before
//! timing anything.
//!
//! Throughput is events served per iteration (the sum over all 64 streams).
//! The acceptance bar (`docs/BENCHMARKS.md`) is **≥ 3× aggregate throughput
//! over sequential on 8 workers**, which assumes at least 4 hardware
//! threads; on smaller hosts the bar degrades to `0.75 × min(workers,
//! hardware threads)` — the speedup physically available at 75% parallel
//! efficiency — and the printed report states the bar applied.
//! `EVENTOR_ENFORCE_BENCH=1` (set in CI) turns the bar into a hard failure,
//! and a failed JSON readback is itself a failure: the bar is never
//! silently skipped.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_core::{config_for_sequence, EventorOptions, EventorSession};
use eventor_emvs::{EmvsConfig, VotingMode};
use eventor_events::{
    DatasetConfig, Event, NoiseConfig, NoiseInjector, SequenceKind, SyntheticSequence,
};
use eventor_geom::{CameraModel, Trajectory};
use eventor_serve::{ServeConfig, ServeEngine};
use std::hint::black_box;

const NUM_SCENES: usize = 64;
const WORKERS: usize = 8;
const SPEEDUP_BAR: f64 = 3.0;
const PARALLEL_EFFICIENCY: f64 = 0.75;

/// One served stream: input and reconstruction configuration.
struct Scene {
    camera: CameraModel,
    config: EmvsConfig,
    trajectory: Trajectory,
    events: Vec<Event>,
}

impl Scene {
    fn session(&self) -> EventorSession {
        EventorSession::builder(self.camera, self.config.clone())
            .software(EventorOptions::accelerator())
            .build()
            .expect("scene session builds")
    }
}

/// The four noise profiles cycled across the pool.
fn noise_profile(index: usize) -> NoiseConfig {
    match index % 4 {
        0 => NoiseConfig::clean(),
        1 => NoiseConfig::moderate(),
        2 => NoiseConfig::severe(),
        _ => NoiseConfig {
            background_activity_rate: 0.5,
            timestamp_jitter_std: 2e-4,
            drop_probability: 0.02,
            seed: 0xC0FFEE ^ index as u64,
            ..NoiseConfig::clean()
        },
    }
}

/// Builds the 64-scene heterogeneous pool from the four base sequences.
fn build_scenes() -> Vec<Scene> {
    let bases: Vec<SyntheticSequence> = SequenceKind::ALL
        .iter()
        .map(|&kind| {
            SyntheticSequence::generate(kind, &DatasetConfig::fast_test())
                .expect("fast_test sequences generate")
        })
        .collect();
    (0..NUM_SCENES)
        .map(|i| {
            let base = &bases[i % bases.len()];
            let injector = NoiseInjector::new(
                base.camera.intrinsics.width as u16,
                base.camera.intrinsics.height as u16,
                NoiseConfig {
                    seed: 0x5EED + i as u64,
                    ..noise_profile(i / bases.len())
                },
            );
            let (stream, _) = injector.corrupt(&base.events);
            let length = 8_000 + (i % 5) * 2_000;
            let events: Vec<Event> = stream.as_slice().iter().take(length).copied().collect();
            let planes = 40 + (i % 3) * 8;
            let mean_depth = 0.5 * (base.depth_range.0 + base.depth_range.1);
            let config = config_for_sequence(base, planes)
                .with_voting(VotingMode::Nearest)
                .with_keyframe_distance((0.10 + 0.03 * (i % 5) as f64) * mean_depth);
            Scene {
                camera: base.camera,
                config,
                trajectory: base.trajectory.clone(),
                events,
            }
        })
        .collect()
}

/// The baseline: every scene standalone, one after another, one thread.
fn run_sequential(scenes: &[Scene]) -> u64 {
    let mut votes = 0u64;
    for scene in scenes {
        let mut session = scene.session();
        session
            .push_trajectory(&scene.trajectory)
            .expect("trajectory pushes");
        let mut offset = 0usize;
        while offset < scene.events.len() {
            offset += session
                .push_events(&scene.events[offset..])
                .expect("events push");
            session.poll().expect("poll succeeds");
        }
        let output = session.finish().expect("session finishes");
        votes += output
            .output
            .keyframes
            .iter()
            .map(|k| k.votes_cast)
            .sum::<u64>();
    }
    votes
}

/// The serving tier: all scenes admitted into one engine, drained together.
fn run_served(scenes: &[Scene], workers: usize) -> u64 {
    let max_len = scenes.iter().map(|s| s.events.len()).max().unwrap_or(1);
    let mut engine = ServeEngine::new(
        ServeConfig::new()
            .with_workers(workers)
            // The whole stream fits the queue: the bench measures serving
            // throughput, not producer pacing.
            .with_queue_capacity(max_len)
            .with_quantum_events(max_len),
    );
    let ids: Vec<_> = scenes.iter().map(|s| engine.admit(s.session())).collect();
    for (&id, scene) in ids.iter().zip(scenes) {
        engine
            .enqueue_trajectory(id, &scene.trajectory)
            .expect("trajectory enqueues");
        let accepted = engine
            .enqueue_events(id, &scene.events)
            .expect("events enqueue");
        assert_eq!(accepted, scene.events.len(), "queue sized for the stream");
        engine.close(id).expect("close");
    }
    engine.drain().expect("drain succeeds");
    let mut votes = 0u64;
    for &id in &ids {
        let output = engine.take_output(id).expect("session finished");
        votes += output
            .output
            .keyframes
            .iter()
            .map(|k| k.votes_cast)
            .sum::<u64>();
    }
    votes
}

fn read_mean_ns(benchmark: &str) -> Option<f64> {
    let path = criterion::output_dir()?
        .join("multi_session")
        .join(format!("{benchmark}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"mean_ns\":";
    let at = text.find(key)? + key.len();
    text[at..].split([',', '}']).next()?.trim().parse().ok()
}

fn bench_multi_session(c: &mut Criterion) {
    let scenes = build_scenes();
    let total_events: u64 = scenes.iter().map(|s| s.events.len() as u64).sum();

    // The two schedules must agree on the workload before being compared:
    // serving adds scheduling, never votes.
    let sequential_votes = run_sequential(&scenes);
    let served_votes = run_served(&scenes, WORKERS);
    assert_eq!(
        sequential_votes, served_votes,
        "served pool diverged from the sequential baseline"
    );
    assert!(sequential_votes > 0, "degenerate workload");

    let mut group = c.benchmark_group("multi_session");
    group.throughput(Throughput::Elements(total_events));
    group.sample_size(2);
    group.bench_function("sequential_1_worker", |b| {
        b.iter(|| black_box(run_sequential(black_box(&scenes))))
    });
    group.bench_function("serve_8_workers", |b| {
        b.iter(|| black_box(run_served(black_box(&scenes), WORKERS)))
    });
    group.finish();

    // The acceptance bar is a *thread-scaling* bar: 3x assumes the host can
    // run at least 4 of the 8 workers concurrently. Smaller hosts get the
    // physically available bar at 75% efficiency, loudly stated — and under
    // EVENTOR_ENFORCE_BENCH a failed readback is itself a failure, so the
    // bar can never be skipped silently.
    let enforce = std::env::var_os("EVENTOR_ENFORCE_BENCH").is_some();
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bar = SPEEDUP_BAR.min(PARALLEL_EFFICIENCY * WORKERS.min(hardware) as f64);
    match (
        read_mean_ns("sequential_1_worker"),
        read_mean_ns("serve_8_workers"),
    ) {
        (Some(sequential), Some(served)) => {
            let speedup = sequential / served;
            let pass = speedup >= bar;
            println!(
                "multi_session: {NUM_SCENES} streams, {WORKERS} workers on {hardware} hardware \
                 threads: aggregate speedup over sequential: {speedup:.2}x \
                 (acceptance bar: >= {bar:.2}x; the full {SPEEDUP_BAR:.1}x bar applies at >= 4 \
                 hardware threads) — {}",
                if pass { "OK" } else { "BELOW BAR" }
            );
            if enforce {
                assert!(
                    pass,
                    "multi-session aggregate speedup {speedup:.2}x is below the {bar:.2}x bar"
                );
            }
        }
        _ if enforce => {
            panic!("EVENTOR_ENFORCE_BENCH is set but the eventor-bench/1 JSON could not be read");
        }
        _ => println!("multi_session: JSON readback unavailable, speedup not computed"),
    }
}

criterion_group!(benches, bench_multi_session);
criterion_main!(benches);
