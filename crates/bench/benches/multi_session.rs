//! Aggregate throughput of the `eventor-serve` multi-session engine: **64
//! heterogeneous synthetic streams** served concurrently on an 8-worker pool
//! versus the same 64 streams reconstructed one after another on a single
//! thread.
//!
//! Rows (group `multi_session`, `eventor-bench/1` JSON):
//!
//! * `sequential_1_worker` — each scene runs standalone through its own
//!   `EventorSession`, back to back: the no-serving-tier baseline,
//! * `serve_8_workers` — all 64 sessions admitted into one `ServeEngine`
//!   with 8 workers, fed, closed and drained to completion.
//!
//! Scenario diversity comes from the **scenario corpus**
//! (`eventor_scenarios::heterogeneous_pool`): the ten corpus worlds cycled
//! at derived seeds, with per-stream variation in stream length.
//! Both rows execute identical sessions on identical input — the engine adds
//! only scheduling — and the harness asserts bit-identical outputs before
//! timing anything.
//!
//! Throughput is events served per iteration (the sum over all 64 streams).
//! The acceptance bar (`docs/BENCHMARKS.md`) is **≥ 3× aggregate throughput
//! over sequential on 8 workers**, which assumes at least 4 hardware
//! threads; on smaller hosts the bar degrades to `0.75 × min(workers,
//! hardware threads)` — the speedup physically available at 75% parallel
//! efficiency — and the printed report states the bar applied.
//! `EVENTOR_ENFORCE_BENCH=1` (set in CI) turns the bar into a hard failure,
//! and a failed JSON readback is itself a failure: the bar is never
//! silently skipped.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_bench::enforce::{enforce_speedup_bar, SpeedupBar};
use eventor_core::{EventorOptions, EventorSession};
use eventor_scenarios::{heterogeneous_pool, ScenarioWorld};
use eventor_serve::{ServeConfig, ServeEngine};
use std::hint::black_box;

const NUM_SCENES: usize = 64;
const WORKERS: usize = 8;
const SPEEDUP_BAR: f64 = 3.0;
const PARALLEL_EFFICIENCY: f64 = 0.75;

/// One served stream: a corpus world on the software backend.
struct Scene {
    world: ScenarioWorld,
}

impl Scene {
    fn events(&self) -> &[eventor_events::Event] {
        self.world.events.as_slice()
    }

    fn session(&self) -> EventorSession {
        EventorSession::builder(self.world.camera, self.world.config.clone())
            .software(EventorOptions::accelerator())
            .build()
            .expect("scene session builds")
    }
}

/// The 64-scene heterogeneous pool: the corpus cycled at derived seeds,
/// stream lengths staggered per index so the scheduler sees uneven
/// workloads.
fn build_scenes() -> Vec<Scene> {
    heterogeneous_pool(NUM_SCENES, 0x5EED)
        .expect("corpus worlds build")
        .into_iter()
        .enumerate()
        .map(|(i, world)| Scene {
            world: world.truncated(8_000 + (i % 5) * 2_000),
        })
        .collect()
}

/// The baseline: every scene standalone, one after another, one thread.
fn run_sequential(scenes: &[Scene]) -> u64 {
    let mut votes = 0u64;
    for scene in scenes {
        let mut session = scene.session();
        session
            .push_trajectory(&scene.world.trajectory)
            .expect("trajectory pushes");
        let mut offset = 0usize;
        while offset < scene.events().len() {
            offset += session
                .push_events(&scene.events()[offset..])
                .expect("events push");
            session.poll().expect("poll succeeds");
        }
        let output = session.finish().expect("session finishes");
        votes += output
            .output
            .keyframes
            .iter()
            .map(|k| k.votes_cast)
            .sum::<u64>();
    }
    votes
}

/// The serving tier: all scenes admitted into one engine, drained together.
fn run_served(scenes: &[Scene], workers: usize) -> u64 {
    let max_len = scenes.iter().map(|s| s.events().len()).max().unwrap_or(1);
    let mut engine = ServeEngine::new(
        ServeConfig::new()
            .with_workers(workers)
            // The whole stream fits the queue: the bench measures serving
            // throughput, not producer pacing.
            .with_queue_capacity(max_len)
            .with_quantum_events(max_len),
    );
    let ids: Vec<_> = scenes.iter().map(|s| engine.admit(s.session())).collect();
    for (&id, scene) in ids.iter().zip(scenes) {
        engine
            .enqueue_trajectory(id, &scene.world.trajectory)
            .expect("trajectory enqueues");
        let accepted = engine
            .enqueue_events(id, scene.events())
            .expect("events enqueue");
        assert_eq!(accepted, scene.events().len(), "queue sized for the stream");
        engine.close(id).expect("close");
    }
    engine.drain().expect("drain succeeds");
    let mut votes = 0u64;
    for &id in &ids {
        let output = engine.take_output(id).expect("session finished");
        votes += output
            .output
            .keyframes
            .iter()
            .map(|k| k.votes_cast)
            .sum::<u64>();
    }
    votes
}

fn bench_multi_session(c: &mut Criterion) {
    let scenes = build_scenes();
    let total_events: u64 = scenes.iter().map(|s| s.events().len() as u64).sum();

    // The two schedules must agree on the workload before being compared:
    // serving adds scheduling, never votes.
    let sequential_votes = run_sequential(&scenes);
    let served_votes = run_served(&scenes, WORKERS);
    assert_eq!(
        sequential_votes, served_votes,
        "served pool diverged from the sequential baseline"
    );
    assert!(sequential_votes > 0, "degenerate workload");

    let mut group = c.benchmark_group("multi_session");
    group.throughput(Throughput::Elements(total_events));
    group.sample_size(2);
    group.bench_function("sequential_1_worker", |b| {
        b.iter(|| black_box(run_sequential(black_box(&scenes))))
    });
    group.bench_function("serve_8_workers", |b| {
        b.iter(|| black_box(run_served(black_box(&scenes), WORKERS)))
    });
    group.finish();

    // The acceptance bar is a *thread-scaling* bar: 3x assumes the host can
    // run at least 4 of the 8 workers concurrently; smaller hosts get the
    // physically available bar at 75% efficiency. The readback, the
    // host-scaling arithmetic and the never-silently-skipped rule live in
    // the shared helper (`eventor_bench::enforce`).
    enforce_speedup_bar(
        "multi_session",
        "sequential_1_worker",
        "serve_8_workers",
        SpeedupBar::HostScaled {
            full: SPEEDUP_BAR,
            workers: WORKERS,
            efficiency: PARALLEL_EFFICIENCY,
        },
    );
}

criterion_group!(benches, bench_multi_session);
criterion_main!(benches);
