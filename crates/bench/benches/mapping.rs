//! Benchmarks of the global-mapping substrate: voxel-grid insertion and
//! extraction, depth-map fusion and global-map statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use eventor_dsi::{DepthMap, MapPoint, PointCloud};
use eventor_geom::{CameraIntrinsics, Pose, Vec3};
use eventor_map::{DepthFusion, FusionConfig, GlobalMap, GlobalMapConfig, VoxelGrid};
use std::hint::black_box;

fn synthetic_cloud(points: usize) -> PointCloud {
    let mut cloud = PointCloud::new();
    for i in 0..points {
        let a = i as f64 * 0.017;
        cloud.push(MapPoint {
            position: Vec3::new(a.sin() * 2.0, a.cos() * 1.5, 1.0 + 0.001 * i as f64),
            confidence: 1.0 + (i % 32) as f64,
        });
    }
    cloud
}

fn synthetic_depth_map(seed: usize) -> DepthMap {
    let mut map = DepthMap::new(240, 180).unwrap();
    for y in (0..180).step_by(3) {
        for x in (0..240).step_by(2) {
            let d = 1.0 + 0.01 * ((x + y + seed) % 200) as f64;
            map.set(x, y, d, 5.0);
        }
    }
    map
}

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping");

    group.bench_function("voxel_grid_insert_10k_points", |b| {
        let cloud = synthetic_cloud(10_000);
        b.iter(|| {
            let mut grid = VoxelGrid::new(0.02).unwrap();
            grid.insert_cloud(&cloud);
            black_box(grid.occupied_voxels())
        })
    });

    group.bench_function("voxel_grid_extract_cloud", |b| {
        let mut grid = VoxelGrid::new(0.02).unwrap();
        grid.insert_cloud(&synthetic_cloud(10_000));
        b.iter(|| black_box(grid.to_point_cloud().len()))
    });

    group.bench_function("depth_fusion_4_keyframes", |b| {
        let maps: Vec<DepthMap> = (0..4).map(synthetic_depth_map).collect();
        b.iter(|| {
            let mut fusion = DepthFusion::new(240, 180, FusionConfig::default()).unwrap();
            for m in &maps {
                fusion.fuse(m).unwrap();
            }
            black_box(fusion.finalize().unwrap().valid_count())
        })
    });

    group.bench_function("global_map_insert_and_statistics", |b| {
        let depth = synthetic_depth_map(0);
        let intrinsics = CameraIntrinsics::davis240_default();
        b.iter(|| {
            let mut map = GlobalMap::new(GlobalMapConfig::default()).unwrap();
            for i in 0..4 {
                let pose = Pose::from_translation(Vec3::new(0.02 * i as f64, 0.0, 0.0));
                map.insert_depth_map(&depth, &intrinsics, &pose);
            }
            black_box(map.statistics())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
