//! Micro-benchmarks of the event back-projection stages (the per-event cost
//! behind the Table 3 runtime rows): per-frame geometry computation,
//! canonical projection `P{Z0}` and proportional transfer `P{Z0;Zi}`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use eventor_core::{QuantizedCoefficients, QuantizedHomography};
use eventor_dsi::DepthPlanes;
use eventor_emvs::FrameGeometry;
use eventor_fixed::PackedCoord;
use eventor_geom::{CameraIntrinsics, Pose, Vec2, Vec3};
use std::hint::black_box;

fn setup() -> (FrameGeometry, Vec<Vec2>) {
    let intrinsics = CameraIntrinsics::davis240_default();
    let planes = DepthPlanes::uniform_inverse_depth(0.6, 6.0, 100).unwrap();
    let reference = Pose::identity();
    let frame_pose = Pose::from_translation(Vec3::new(0.08, -0.01, 0.02));
    let geometry = FrameGeometry::compute(&reference, &frame_pose, &intrinsics, &planes).unwrap();
    let events: Vec<Vec2> = (0..1024)
        .map(|i| Vec2::new((i * 7 % 240) as f64, (i * 13 % 180) as f64))
        .collect();
    (geometry, events)
}

fn bench_backprojection(c: &mut Criterion) {
    let (geometry, events) = setup();
    let mut group = c.benchmark_group("backprojection");
    group.throughput(Throughput::Elements(events.len() as u64));

    group.bench_function("frame_geometry_compute", |b| {
        let intrinsics = CameraIntrinsics::davis240_default();
        let planes = DepthPlanes::uniform_inverse_depth(0.6, 6.0, 100).unwrap();
        let reference = Pose::identity();
        let frame_pose = Pose::from_translation(Vec3::new(0.08, -0.01, 0.02));
        b.iter(|| {
            black_box(
                FrameGeometry::compute(&reference, &frame_pose, &intrinsics, &planes).unwrap(),
            )
        })
    });

    group.bench_function("canonical_projection_1024_events", |b| {
        b.iter(|| {
            for e in &events {
                black_box(geometry.canonical(*e));
            }
        })
    });

    group.bench_function("proportional_transfer_1024x100", |b| {
        let canonical: Vec<Vec2> = events
            .iter()
            .filter_map(|&e| geometry.canonical(e))
            .collect();
        b.iter(|| {
            for c in &canonical {
                for i in 0..geometry.num_planes() {
                    black_box(geometry.transfer(*c, i));
                }
            }
        })
    });

    group.bench_function("quantized_canonical_1024_events", |b| {
        let qh = QuantizedHomography::from_homography(&geometry.homography);
        let packed: Vec<PackedCoord> = events
            .iter()
            .map(|e| PackedCoord::from_f64(e.x, e.y))
            .collect();
        b.iter(|| {
            for p in &packed {
                black_box(qh.project(*p));
            }
        })
    });

    group.bench_function("quantized_transfer_1024x100", |b| {
        let qh = QuantizedHomography::from_homography(&geometry.homography);
        let qphi = QuantizedCoefficients::from_coefficients(&geometry.coefficients);
        let packed: Vec<PackedCoord> = events
            .iter()
            .filter_map(|e| qh.project(PackedCoord::from_f64(e.x, e.y)))
            .collect();
        b.iter_batched(
            || packed.clone(),
            |packed| {
                for c in &packed {
                    for i in 0..qphi.len() {
                        black_box(qphi.transfer_nearest(*c, i, 240, 180));
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_backprojection);
criterion_main!(benches);
