//! Benchmarks of the functional device model: the bit-accurate `PE_Z0` /
//! `PE_Zi` datapaths, the Vote Execute Unit's DRAM read-modify-write path,
//! the DMA descriptor engine and a complete frame executed through the
//! register interface.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eventor_fixed::PackedCoord;
use eventor_hwsim::{
    AcceleratorConfig, AxiHpInterconnect, DmaEngine, DsiDram, EventorDevice, FrameJob, FrameKind,
    HomographyRegisters, PeZ0Datapath, PeZiArrayDatapath, PhiEntry, VoteExecuteDatapath,
};
use std::hint::black_box;

fn event_words(n: usize) -> Vec<u32> {
    (0..n)
        .map(|i| PackedCoord::from_f64((i % 240) as f64, (i % 180) as f64).to_word())
        .collect()
}

fn near_identity_homography() -> HomographyRegisters {
    HomographyRegisters::from_matrix(&[
        [1.001, 0.0002, -0.4],
        [-0.0001, 0.999, 0.3],
        [1e-5, -2e-5, 1.0],
    ])
}

fn phi_words(planes: usize) -> Vec<PhiEntry> {
    (0..planes)
        .map(|i| {
            let r = 1.0 - 0.002 * i as f64;
            PhiEntry::from_f64(r, (1.0 - r) * 120.0, (1.0 - r) * 90.0)
        })
        .collect()
}

fn bench_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");

    group.bench_function("pe_z0_project_1024_events", |b| {
        let h = near_identity_homography();
        let words = event_words(1024);
        b.iter(|| {
            let mut pe = PeZ0Datapath::new();
            black_box(pe.project_frame(&h, &words))
        })
    });

    group.bench_function("pe_zi_generate_votes_1024x100", |b| {
        let h = near_identity_homography();
        let words = event_words(1024);
        let mut pe_z0 = PeZ0Datapath::new();
        let canonical = pe_z0.project_frame(&h, &words);
        let phi = phi_words(100);
        b.iter(|| {
            let mut array = PeZiArrayDatapath::new(phi.clone(), 2, 240, 180);
            black_box(array.generate_frame_votes(&canonical))
        })
    });

    group.bench_function("vote_execute_102400_votes", |b| {
        let h = near_identity_homography();
        let words = event_words(1024);
        let mut pe_z0 = PeZ0Datapath::new();
        let canonical = pe_z0.project_frame(&h, &words);
        let mut array = PeZiArrayDatapath::new(phi_words(100), 2, 240, 180);
        let votes = array.generate_frame_votes(&canonical);
        b.iter(|| {
            let mut dram = DsiDram::new(240, 180, 100);
            let mut axi = AxiHpInterconnect::new(2);
            let mut unit = VoteExecuteDatapath::new();
            black_box(unit.execute(&votes, &mut dram, &mut axi))
        })
    });

    group.bench_function("dma_frame_chain", |b| {
        let config = AcceleratorConfig::default();
        let chain = DmaEngine::frame_descriptors(&config);
        b.iter(|| {
            let mut dma = DmaEngine::new(&config);
            black_box(dma.execute_chain(&chain))
        })
    });

    group.bench_function("full_frame_through_register_interface", |b| {
        let config = AcceleratorConfig::default();
        let job = FrameJob {
            event_words: event_words(1024),
            homography_words: near_identity_homography().raw_words(),
            phi_words: phi_words(100).iter().map(PhiEntry::raw_words).collect(),
            kind: FrameKind::Normal,
        };
        b.iter_batched(
            || EventorDevice::new(config.clone()),
            |mut device| black_box(device.run_frame(job.clone())),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
