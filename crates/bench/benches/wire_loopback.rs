//! Aggregate throughput and tail latency of the `eventor-net` TCP serving
//! front-end: **200 concurrent wire clients** over loopback, each streaming
//! its own heterogeneous corpus world through one shared `WireServer`, with
//! cadence diversity from the full `loadgen` palette (`LoadShape::ALL`
//! cycled per client).
//!
//! Rows (group `wire_loopback`, `eventor-bench/1` JSON):
//!
//! * `in_process_sequential` — the same 200 sessions run back to back
//!   through `EventorSession`, no serving tier, no sockets: the compute
//!   baseline and the source of the expected digests,
//! * `wire_200_clients` — all 200 sessions streamed concurrently through
//!   one server over the versioned `eventor-wire/1` protocol.
//!
//! Before anything is timed, one verification pass asserts **every**
//! client's terminal digest equals the digest of the same world run
//! in-process — the wire adds framing and scheduling, never bits — and
//! records per-session completion latencies for the p99 bar.
//!
//! Acceptance bars (`docs/BENCHMARKS.md`), both enforced under
//! `EVENTOR_ENFORCE_BENCH` and both host-scaled at a saturation point of 8
//! hardware threads:
//!
//! * aggregate served throughput ≥ 500k events/s (so a 1-thread host owes
//!   62.5k events/s) — raised from the thread-per-connection era's 400k now
//!   that the server runs a single readiness loop,
//! * p99 session completion ≤ 15 s (relaxing in proportion on smaller
//!   hosts).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_bench::enforce::{
    enforce_latency_ceiling, enforce_rate_floor, quantile_seconds, LatencyCeiling, RateFloor,
};
use eventor_core::{EventorOptions, EventorSession};
use eventor_net::{spawn_loopback, ManifestSource, NetConfig, SessionManifest, WireClient};
use eventor_scenarios::{digest_output, heterogeneous_pool, ScenarioWorld};
use eventor_serve::LoadShape;
use std::hint::black_box;
use std::sync::Mutex;
use std::time::Instant;

const NUM_CLIENTS: usize = 200;
const SATURATION_THREADS: usize = 8;
const RATE_FLOOR: RateFloor = RateFloor {
    full_per_sec: 500_000.0,
    saturation_threads: SATURATION_THREADS,
};
const P99_CEILING: LatencyCeiling = LatencyCeiling {
    full_seconds: 15.0,
    saturation_threads: SATURATION_THREADS,
};

/// The 200-stream pool: the corpus cycled at derived seeds, truncated so one
/// iteration stays minutes-not-hours on small hosts while every client still
/// crosses several keyframe segments.
fn build_worlds() -> Vec<ScenarioWorld> {
    heterogeneous_pool(NUM_CLIENTS, 0x3141)
        .expect("corpus worlds build")
        .into_iter()
        .enumerate()
        .map(|(i, world)| world.truncated(2_000 + (i % 4) * 500))
        .collect()
}

fn shape_for(i: usize) -> LoadShape {
    LoadShape::ALL[i % LoadShape::ALL.len()]
}

/// The no-sockets baseline: each world through its own in-process session,
/// one after another. Returns the per-world digests.
fn run_in_process(worlds: &[ScenarioWorld]) -> Vec<u64> {
    worlds
        .iter()
        .map(|world| {
            let mut session = EventorSession::builder(world.camera, world.config.clone())
                .software(EventorOptions::accelerator())
                .build()
                .expect("session builds");
            session
                .push_trajectory(&world.trajectory)
                .expect("trajectory pushes");
            let events = world.events.as_slice();
            let mut offset = 0usize;
            while offset < events.len() {
                offset += session.push_events(&events[offset..]).expect("events push");
                session.poll().expect("poll");
            }
            digest_output(&session.finish().expect("finish"))
        })
        .collect()
}

/// All worlds concurrently through one wire server. Returns each client's
/// `(digest, completion_seconds)` in world order, completion measured from
/// connect to the `Finished` reply.
fn run_wire(worlds: &[ScenarioWorld]) -> Vec<(u64, f64)> {
    let server = spawn_loopback(NetConfig::new()).expect("server spawns");
    let addr = server.addr();
    let results: Mutex<Vec<(usize, u64, f64)>> = Mutex::new(Vec::with_capacity(worlds.len()));
    std::thread::scope(|scope| {
        for (i, world) in worlds.iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                let started = Instant::now();
                let mut client = WireClient::connect(addr).expect("client connects");
                let id = client
                    .admit(&SessionManifest {
                        backend: eventor_scenarios::BackendKind::Software,
                        source: ManifestSource::Scenario {
                            name: world.name.clone(),
                            seed: world.seed,
                        },
                    })
                    .expect("admission");
                let report = client
                    .drive(id, &world.trajectory, world.events.as_slice(), shape_for(i))
                    .expect("drive");
                let elapsed = started.elapsed().as_secs_f64();
                client.bye().expect("bye");
                results
                    .lock()
                    .expect("results lock")
                    .push((i, report.digest, elapsed));
            });
        }
    });
    server.shutdown();
    let mut rows = results.into_inner().expect("results lock");
    assert_eq!(rows.len(), worlds.len(), "every client must complete");
    rows.sort_by_key(|(i, _, _)| *i);
    rows.into_iter().map(|(_, digest, s)| (digest, s)).collect()
}

fn bench_wire_loopback(c: &mut Criterion) {
    let worlds = build_worlds();
    let total_events: u64 = worlds
        .iter()
        .map(|w| w.events.as_slice().len() as u64)
        .sum();

    // Verification pass: the wire must reproduce the in-process bits for
    // every client before any timing means anything. Its per-session
    // latencies feed the p99 bar.
    let expected = run_in_process(&worlds);
    let served = run_wire(&worlds);
    for (i, ((digest, _), want)) in served.iter().zip(&expected).enumerate() {
        assert_eq!(
            digest, want,
            "client {i} ({}): wire digest diverged from in-process",
            worlds[i].name
        );
    }
    let latencies: Vec<f64> = served.iter().map(|(_, s)| *s).collect();
    let p99 = quantile_seconds(&latencies, 0.99).expect("non-empty latency set");

    let mut group = c.benchmark_group("wire_loopback");
    group.throughput(Throughput::Elements(total_events));
    // The p99 travels in the `eventor-bench/1` JSON so the CI trend checker
    // can hold the latency ceiling without re-deriving it.
    group.context("p99_seconds", format!("{p99:.6}"));
    group.sample_size(2);
    group.bench_function("in_process_sequential", |b| {
        b.iter(|| black_box(run_in_process(black_box(&worlds))))
    });
    group.bench_function("wire_200_clients", |b| {
        b.iter(|| black_box(run_wire(black_box(&worlds))))
    });
    group.finish();

    enforce_rate_floor(
        "wire_loopback",
        "wire_200_clients",
        total_events,
        RATE_FLOOR,
    );
    enforce_latency_ceiling("wire_loopback", "p99 session completion", p99, P99_CEILING);
}

criterion_group!(benches, bench_wire_loopback);
criterion_main!(benches);
