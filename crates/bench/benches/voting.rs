//! Micro-benchmarks of DSI voting: bilinear versus nearest (the paper's
//! approximate-computing ablation) and f32 versus quantized u16 scores.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use eventor_dsi::{DepthPlanes, DsiVolume};
use std::hint::black_box;

fn targets(n: usize) -> Vec<(f64, f64, usize)> {
    (0..n)
        .map(|i| {
            (
                (i * 37 % 2400) as f64 / 10.0,
                (i * 53 % 1800) as f64 / 10.0,
                i % 100,
            )
        })
        .collect()
}

fn bench_voting(c: &mut Criterion) {
    let planes = DepthPlanes::uniform_inverse_depth(0.6, 6.0, 100).unwrap();
    let votes = targets(102_400); // one 1024-event frame's worth of votes
    let mut group = c.benchmark_group("voting");
    group.throughput(Throughput::Elements(votes.len() as u64));
    group.sample_size(20);

    group.bench_function("bilinear_f32_frame", |b| {
        b.iter_batched(
            || DsiVolume::<f32>::new(240, 180, planes.clone()).unwrap(),
            |mut dsi| {
                for &(x, y, p) in &votes {
                    dsi.vote_bilinear(x, y, p, 1.0);
                }
                black_box(dsi.total_score())
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("nearest_f32_frame", |b| {
        b.iter_batched(
            || DsiVolume::<f32>::new(240, 180, planes.clone()).unwrap(),
            |mut dsi| {
                for &(x, y, p) in &votes {
                    dsi.vote_nearest(x, y, p, 1.0);
                }
                black_box(dsi.total_score())
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("nearest_u16_frame", |b| {
        b.iter_batched(
            || DsiVolume::<u16>::new(240, 180, planes.clone()).unwrap(),
            |mut dsi| {
                for &(x, y, p) in &votes {
                    dsi.vote_nearest(x, y, p, 1.0);
                }
                black_box(dsi.total_score())
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_voting);
criterion_main!(benches);
