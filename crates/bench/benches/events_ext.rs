//! Benchmarks of the event-substrate extensions: noise injection, the
//! streaming undistortion lookup table and the frame-slicing policies.

use criterion::{criterion_group, criterion_main, Criterion};
use eventor_events::{
    rate_profile, slice_stream, Event, EventStream, NoiseConfig, NoiseInjector, Polarity,
    SlicePolicy, UndistortionLut,
};
use eventor_geom::CameraModel;
use std::hint::black_box;

fn synthetic_stream(n: usize) -> EventStream {
    (0..n)
        .map(|i| {
            Event::new(
                i as f64 * 2e-6,
                ((i * 37) % 240) as u16,
                ((i * 53) % 180) as u16,
                if i % 2 == 0 {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                },
            )
        })
        .collect()
}

fn bench_events_ext(c: &mut Criterion) {
    let mut group = c.benchmark_group("events_ext");
    let stream = synthetic_stream(100_000);

    group.bench_function("noise_injection_moderate_100k", |b| {
        let injector = NoiseInjector::new(240, 180, NoiseConfig::moderate());
        b.iter(|| black_box(injector.corrupt(&stream).1.total_events()))
    });

    group.bench_function("undistortion_lut_build", |b| {
        let camera = CameraModel::davis240_distorted();
        b.iter(|| black_box(UndistortionLut::build(&camera).memory_bytes()))
    });

    group.bench_function("undistortion_lut_correct_100k", |b| {
        let camera = CameraModel::davis240_distorted();
        let lut = UndistortionLut::build(&camera);
        b.iter(|| black_box(lut.correct_stream(&stream).len()))
    });

    group.bench_function("streaming_undistort_exact_100k", |b| {
        // The iterative undistortion the LUT replaces — the ablation the
        // rescheduling discussion relies on.
        let camera = CameraModel::davis240_distorted();
        b.iter(|| {
            let total: f64 = stream
                .iter()
                .map(|e| {
                    camera
                        .undistort_pixel(eventor_geom::Vec2::new(e.x as f64, e.y as f64))
                        .x
                })
                .sum();
            black_box(total)
        })
    });

    group.bench_function("rate_profile_1ms_windows", |b| {
        b.iter(|| black_box(rate_profile(&stream, 1e-3).unwrap().peak_rate))
    });

    group.bench_function("adaptive_slicing_100k", |b| {
        b.iter(|| {
            let (frames, stats) = slice_stream(
                &stream,
                SlicePolicy::Adaptive {
                    events: 1024,
                    max_seconds: 5e-3,
                },
            );
            black_box((frames.len(), stats.max_events))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_events_ext);
criterion_main!(benches);
