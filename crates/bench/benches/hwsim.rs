//! Benchmarks of the hardware model itself plus the architectural sweeps it
//! enables (PE_Zi count, depth planes, double buffering).

use criterion::{criterion_group, criterion_main, Criterion};
use eventor_hwsim::{
    estimate_resources, frame_timing, performance, AcceleratorConfig, FrameKind, PowerModel,
};
use std::hint::black_box;

fn bench_hwsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("hwsim");

    group.bench_function("frame_timing_default", |b| {
        let config = AcceleratorConfig::default();
        b.iter(|| black_box(frame_timing(&config, FrameKind::Normal)))
    });

    group.bench_function("full_performance_report", |b| {
        let config = AcceleratorConfig::default();
        b.iter(|| black_box(performance(&config)))
    });

    group.bench_function("resource_and_power_estimate", |b| {
        let config = AcceleratorConfig::default();
        b.iter(|| {
            let r = estimate_resources(&config);
            black_box(PowerModel::default().accelerator_power_w(&config, &r))
        })
    });

    group.bench_function("pe_sweep_1_to_8", |b| {
        b.iter(|| {
            for n in 1..=8usize {
                let config = AcceleratorConfig::default().with_pe_zi(n);
                black_box(performance(&config));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hwsim);
criterion_main!(benches);
