//! Micro-benchmarks of the fixed-point quantization layer (Table 1 formats).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_fixed::{PackedCoord, Q11p21, Q9p7};
use std::hint::black_box;

fn bench_quantization(c: &mut Criterion) {
    let values: Vec<f64> = (0..4096)
        .map(|i| (i as f64 * 0.0571).sin() * 200.0)
        .collect();
    let mut group = c.benchmark_group("quantization");
    group.throughput(Throughput::Elements(values.len() as u64));

    group.bench_function("q9_7_round_trip", |b| {
        b.iter(|| {
            for &v in &values {
                black_box(Q9p7::from_f64(v).to_f64());
            }
        })
    });

    group.bench_function("q11_21_round_trip", |b| {
        b.iter(|| {
            for &v in &values {
                black_box(Q11p21::from_f64(v).to_f64());
            }
        })
    });

    group.bench_function("q11_21_multiply", |b| {
        let qs: Vec<Q11p21> = values
            .iter()
            .map(|&v| Q11p21::from_f64(v / 256.0))
            .collect();
        b.iter(|| {
            let mut acc = Q11p21::zero();
            for w in qs.windows(2) {
                acc += w[0] * w[1];
            }
            black_box(acc)
        })
    });

    group.bench_function("packed_coord_bus_round_trip", |b| {
        b.iter(|| {
            for i in 0..2048usize {
                let p = PackedCoord::from_f64((i % 240) as f64 + 0.5, (i % 180) as f64 + 0.25);
                black_box(PackedCoord::from_word(p.to_word()));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_quantization);
criterion_main!(benches);
