//! Throughput of the parallel sharded voting engine versus the sequential
//! golden path, on the full reformulated (accelerator) reconstruction of the
//! `ThreePlanes` sequence.
//!
//! Rows:
//!
//! * `sequential_baseline` — the unmodified single-threaded golden path
//!   (`ParallelConfig::sequential`),
//! * `engine_1_shard` — the batched engine on one shard, no worker threads:
//!   isolates the fused-kernel/hoisting speedup (per-frame parameter decode
//!   hoisted out of the hot loop, no per-frame `Vec<Option<_>>`, direct
//!   integer voting, no per-vote enum dispatch),
//! * `engine_{2,4,8}_shards` — worker-thread scaling on top of that. On a
//!   multi-core host these rows add near-linear scaling of the vote phase;
//!   on a single-core host they measure the engine's scheduling overhead.
//!
//! Throughput is reported in events per second across the whole
//! reconstruction (undistortion, aggregation, planning, voting, detection).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_core::{config_for_sequence, EventorOptions, EventorPipeline, ParallelConfig};
use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
use std::hint::black_box;

fn bench_parallel_voting(c: &mut Criterion) {
    let seq = SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())
        .expect("fast_test sequences generate");
    let config = config_for_sequence(&seq, 100);

    let mut group = c.benchmark_group("parallel_voting");
    group.throughput(Throughput::Elements(seq.events.len() as u64));
    group.sample_size(10);

    let run = |parallel: ParallelConfig| {
        let pipeline =
            EventorPipeline::new(seq.camera, config.clone(), EventorOptions::accelerator())
                .expect("experiment config is valid")
                .with_parallelism(parallel);
        let events = &seq.events;
        let trajectory = &seq.trajectory;
        move |b: &mut criterion::Bencher| {
            b.iter(|| {
                let out = pipeline
                    .reconstruct(black_box(events), trajectory)
                    .expect("reconstruction succeeds");
                black_box(out.keyframes.len())
            })
        }
    };

    group.bench_function("sequential_baseline", run(ParallelConfig::sequential()));
    group.bench_function("engine_1_shard", run(ParallelConfig::batched()));
    for shards in [2usize, 4, 8] {
        // The partition always has `shards` tiles; only the OS thread count
        // is capped at the host's hardware threads. Label each row with the
        // concurrency that actually backed it.
        let threads = ParallelConfig::with_shards(shards).worker_threads();
        if threads != shards {
            println!(
                "note: engine_{shards}_shards partition executes on {threads} worker thread(s) on this host"
            );
        }
        group.bench_function(
            format!("engine_{shards}_shards"),
            run(ParallelConfig::with_shards(shards)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_voting);
criterion_main!(benches);
