//! Connection-churn throughput of the `eventor-net` serving front-end:
//! **thousands of short-lived sessions**, each on its own fresh TCP
//! connection, hammering one shared `WireServer` through the full
//! admit → stream → finish → bye lifecycle.
//!
//! Where `wire_loopback` measures steady-state streaming with 200
//! long-lived clients, this bench measures the *other* axis the readiness
//! loop has to be good at: accept/admit/teardown overhead. Worlds are tiny
//! inline `eventor-fuzzworld/1` specs (`ManifestSource::Spec`), so each
//! session's compute is deliberately small and the socket/admission
//! machinery dominates.
//!
//! Rows (group `wire_churn`, `eventor-bench/1` JSON):
//!
//! * `churn_2000_sessions` — [`TOTAL_SESSIONS`] sessions cycled across
//!   [`WORKERS`] worker threads; every session opens a fresh connection,
//!   admits a spec-manifest world, streams it with a cadence cycled through
//!   the full `LoadShape::ALL` palette, finishes and says `Bye`.
//!
//! Before anything is timed, a verification pass runs every pool world both
//! in-process and over the wire and asserts the digests agree; the timed
//! loop then re-asserts every session's terminal digest against that
//! expected table, so a churn regression can never hide a correctness one.
//!
//! Acceptance bar (`docs/BENCHMARKS.md`), enforced under
//! `EVENTOR_ENFORCE_BENCH` and host-scaled at a saturation point of 8
//! hardware threads:
//!
//! * session churn ≥ 2,400 sessions/s (so a 1-thread host owes 300
//!   sessions/s).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_bench::enforce::{enforce_rate_floor, RateFloor};
use eventor_net::{spawn_loopback, ManifestSource, NetConfig, SessionManifest, WireClient};
use eventor_scenarios::{digest_world, BackendKind, ScenarioWorld, WorldSpec};
use eventor_serve::LoadShape;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sessions per timed iteration ("thousands of short sessions").
const TOTAL_SESSIONS: usize = 2_000;
/// Concurrent client workers cycling through the session backlog.
const WORKERS: usize = 32;
/// Distinct tiny worlds in the pool (sessions cycle through them).
const POOL: usize = 8;
const SATURATION_THREADS: usize = 8;
const RATE_FLOOR: RateFloor = RateFloor {
    full_per_sec: 2_400.0,
    saturation_threads: SATURATION_THREADS,
};

/// One pool entry: the spec text the server admits from, the client-side
/// world driven over the wire, and the expected terminal digest.
struct PoolWorld {
    spec_text: String,
    world: ScenarioWorld,
    expected_digest: u64,
}

/// Builds the pool of tiny deterministic spec worlds. Streams are truncated
/// hard so each session stays short and the churn machinery — not the
/// reconstruction compute — dominates the measurement.
fn build_pool() -> Vec<PoolWorld> {
    (0..POOL)
        .map(|i| {
            let spec = WorldSpec::generate(0xc4u64.wrapping_mul(0x9e37), i as u64);
            let world = spec
                .build()
                .expect("generated specs build")
                .truncated(192 + (i % 4) * 64);
            let expected_digest =
                digest_world(&world, BackendKind::Software).expect("in-process run");
            PoolWorld {
                spec_text: spec.to_text(),
                world,
                expected_digest,
            }
        })
        .collect()
}

fn shape_for(i: usize) -> LoadShape {
    LoadShape::ALL[i % LoadShape::ALL.len()]
}

/// Runs one full session lifecycle on a fresh connection: connect, admit
/// the spec manifest, drive the truncated stream, check the digest, bye.
fn run_one_session(addr: std::net::SocketAddr, entry: &PoolWorld, n: usize) {
    let mut client = WireClient::connect(addr).expect("client connects");
    let id = client
        .admit(&SessionManifest {
            backend: BackendKind::Software,
            source: ManifestSource::Spec {
                text: entry.spec_text.clone(),
            },
        })
        .expect("admission");
    let report = client
        .drive(
            id,
            &entry.world.trajectory,
            entry.world.events.as_slice(),
            shape_for(n),
        )
        .expect("drive");
    assert_eq!(
        report.digest, entry.expected_digest,
        "session {n}: wire digest diverged from in-process"
    );
    client.bye().expect("bye");
}

/// One timed iteration: `TOTAL_SESSIONS` lifecycles pulled off a shared
/// counter by `WORKERS` threads against a single server. The server's
/// default config applies — no artificial limits, keepalive at its 30 s
/// default (idle periods here are microseconds).
fn run_churn(pool: &[PoolWorld]) {
    let server = spawn_loopback(NetConfig::new()).expect("server spawns");
    let addr = server.addr();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let next = &next;
            scope.spawn(move || loop {
                let n = next.fetch_add(1, Ordering::Relaxed);
                if n >= TOTAL_SESSIONS {
                    break;
                }
                run_one_session(addr, &pool[n % pool.len()], n);
            });
        }
    });
    server.shutdown();
}

fn bench_wire_churn(c: &mut Criterion) {
    let pool = build_pool();

    // Verification pass: every pool world once over the wire, digest pinned
    // against the in-process run, before any timing means anything.
    {
        let server = spawn_loopback(NetConfig::new()).expect("server spawns");
        for (i, entry) in pool.iter().enumerate() {
            run_one_session(server.addr(), entry, i);
        }
        server.shutdown();
    }

    let mut group = c.benchmark_group("wire_churn");
    group.throughput(Throughput::Elements(TOTAL_SESSIONS as u64));
    group.sample_size(2);
    group.context("workers", WORKERS.to_string());
    group.context("pool_worlds", POOL.to_string());
    group.bench_function("churn_2000_sessions", |b| {
        b.iter(|| run_churn(black_box(&pool)))
    });
    group.finish();

    enforce_rate_floor(
        "wire_churn",
        "churn_2000_sessions",
        TOTAL_SESSIONS as u64,
        RATE_FLOOR,
    );
}

criterion_group!(benches, bench_wire_churn);
criterion_main!(benches);
