//! Throughput of the bit-true integer datapath kernel versus the
//! pre-refactor `f64`-hoisted arithmetic, on the quantized per-event hot
//! path (canonical projection + per-plane nearest transfer, the work
//! `PE_Z0` + the `PE_Zi` array perform per event).
//!
//! Rows (group `quantized_kernel`, `eventor-bench/1` JSON):
//!
//! * `f64_hoisted_reference` — a frozen re-implementation of the datapath
//!   this repository shipped before the kernel refactor: Q11.21 parameters
//!   decoded once per frame to hoisted `f64` tables, per-event `f64` MACs,
//!   division, `round()` and bounds checks between the quantization points;
//! * `integer_kernel` — the same arithmetic through
//!   `eventor_fixed::kernel`: raw words in, `i64` wide accumulators,
//!   exact-rational rounding, integer nearest-voxel finder.
//!
//! Throughput is reported in plane transfers per iteration
//! (`events × planes`). The repository's acceptance bar is
//! `integer_kernel` ≥ 1.2× the reference's throughput
//! (`docs/BENCHMARKS.md`); the bench prints the measured speedup after the
//! run by reading back the two JSON documents.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_core::{QuantizedCoefficients, QuantizedHomography};
use eventor_dsi::DepthPlanes;
use eventor_emvs::FrameGeometry;
use eventor_fixed::kernel::{self, PhiWords};
use eventor_fixed::{PackedCoord, PlaneCoord, Q11p21, Q9p7};
use eventor_geom::{CameraIntrinsics, Pose, Vec3};
use std::hint::black_box;

const SENSOR_W: u32 = 240;
const SENSOR_H: u32 = 180;
const NUM_EVENTS: usize = 1024;
const NUM_PLANES: usize = 100;

/// The pre-refactor golden-model hot path, kept verbatim as the comparison
/// baseline: `QuantizedHomography::project_hoisted` plus
/// `QuantizedCoefficients::transfer_hoisted` + `PlaneCoord::from_projection`
/// as they existed before the kernel refactor. Do not "optimize" this — it
/// is the measurement reference. (A `#[cfg(test)]` transcription of the
/// same projection lives in `crates/fixed/src/kernel.rs::f64_reference`
/// for the correctness proptests; this copy exists because benches cannot
/// see test-only items. Keep both frozen.)
mod f64_reference {
    use super::*;

    pub struct HoistedParams {
        pub homography: [[f64; 3]; 3],
        pub coefficients: Vec<(f64, f64, f64)>,
    }

    pub fn hoist(h: &QuantizedHomography, phi: &[PhiWords]) -> HoistedParams {
        let mut homography = [[0.0; 3]; 3];
        for (i, row) in homography.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = h.entry(i, j);
            }
        }
        let coefficients = phi
            .iter()
            .map(|w| {
                (
                    Q11p21::from_raw(w.scale).to_f64(),
                    Q11p21::from_raw(w.offset_x).to_f64(),
                    Q11p21::from_raw(w.offset_y).to_f64(),
                )
            })
            .collect();
        HoistedParams {
            homography,
            coefficients,
        }
    }

    #[inline]
    pub fn project_hoisted(h: &[[f64; 3]; 3], coord: PackedCoord) -> Option<PackedCoord> {
        let x = coord.x_f64();
        let y = coord.y_f64();
        let w = h[2][0] * x + h[2][1] * y + h[2][2];
        if w.abs() < 1e-9 {
            return None;
        }
        let px = (h[0][0] * x + h[0][1] * y + h[0][2]) / w;
        let py = (h[1][0] * x + h[1][1] * y + h[1][2]) / w;
        if !px.is_finite() || !py.is_finite() {
            return None;
        }
        if px.abs() > Q9p7::MAX_MAGNITUDE || py.abs() > Q9p7::MAX_MAGNITUDE {
            return None;
        }
        Some(PackedCoord::from_f64(px, py))
    }

    /// One frame of the pre-refactor hot loop; returns the in-sensor vote
    /// count (what the engine accumulates).
    pub fn frame_votes(params: &HoistedParams, events: &[PackedCoord]) -> u64 {
        let mut votes = 0u64;
        for &coord in events {
            let Some(c) = project_hoisted(&params.homography, coord) else {
                continue;
            };
            let (cx, cy) = (c.x_f64(), c.y_f64());
            for &(scale, off_x, off_y) in &params.coefficients {
                let x = scale * cx + off_x;
                let y = scale * cy + off_y;
                if PlaneCoord::from_projection(x, y, SENSOR_W, SENSOR_H).is_inside() {
                    votes += 1;
                }
            }
        }
        votes
    }
}

/// One frame of the integer-kernel hot loop (the shape of
/// `vote_packet_quantized_nearest`, minus the DSI writes both variants
/// skip).
fn kernel_frame_votes(h: &[i32; 9], phi: &[PhiWords], events: &[PackedCoord]) -> u64 {
    let mut votes = 0u64;
    for &coord in events {
        let Some(c) = kernel::project_z0(h, coord) else {
            continue;
        };
        for w in phi {
            if kernel::transfer_nearest(w, c, SENSOR_W, SENSOR_H).is_inside() {
                votes += 1;
            }
        }
    }
    votes
}

fn setup() -> (QuantizedHomography, Vec<PhiWords>, Vec<PackedCoord>) {
    let intrinsics = CameraIntrinsics::davis240_default();
    let planes = DepthPlanes::uniform_inverse_depth(0.6, 6.0, NUM_PLANES).unwrap();
    let reference = Pose::identity();
    let frame_pose = Pose::from_translation(Vec3::new(0.08, -0.01, 0.02));
    let geometry = FrameGeometry::compute(&reference, &frame_pose, &intrinsics, &planes).unwrap();
    let qh = QuantizedHomography::from_homography(&geometry.homography);
    let qphi = QuantizedCoefficients::from_coefficients(&geometry.coefficients);
    let events: Vec<PackedCoord> = (0..NUM_EVENTS)
        .map(|i| PackedCoord::from_f64((i * 7 % 240) as f64 + 0.25, (i * 13 % 180) as f64 + 0.5))
        .collect();
    (qh, qphi.words().to_vec(), events)
}

fn bench_quantized_kernel(c: &mut Criterion) {
    let (qh, phi, events) = setup();
    let words = qh.raw_words();
    let hoisted = f64_reference::hoist(&qh, &phi);

    // The two paths must agree on the workload before being compared: the
    // kernel rounds the exact rational where the reference rounded an `f64`
    // quotient, so allow only tie-breaking slack (none occurs here).
    let ref_votes = f64_reference::frame_votes(&hoisted, &events);
    let int_votes = kernel_frame_votes(&words, &phi, &events);
    assert_eq!(
        ref_votes, int_votes,
        "kernel and f64 reference disagree on the benchmark workload"
    );
    assert!(ref_votes > 0, "degenerate workload");

    let mut group = c.benchmark_group("quantized_kernel");
    group.throughput(Throughput::Elements((NUM_EVENTS * NUM_PLANES) as u64));

    group.bench_function("f64_hoisted_reference", |b| {
        b.iter(|| black_box(f64_reference::frame_votes(&hoisted, black_box(&events))))
    });
    group.bench_function("integer_kernel", |b| {
        b.iter(|| black_box(kernel_frame_votes(&words, &phi, black_box(&events))))
    });
    group.finish();

    // Local runs only report, so contributors on unusual hosts are never
    // blocked by a wall-clock ratio; CI opts into hard enforcement with
    // EVENTOR_ENFORCE_BENCH=1 because the recorded margin (~3x vs the 1.2x
    // bar) dwarfs runner noise (docs/BENCHMARKS.md). The readback, the
    // verdict line and the never-silently-skipped rule live in the shared
    // helper.
    eventor_bench::enforce::enforce_speedup_bar(
        "quantized_kernel",
        "f64_hoisted_reference",
        "integer_kernel",
        eventor_bench::enforce::SpeedupBar::Fixed(1.2),
    );
}

criterion_group!(benches, bench_quantized_kernel);
criterion_main!(benches);
