//! Throughput of the bit-true integer datapath kernel versus the
//! pre-refactor `f64`-hoisted arithmetic, on the quantized per-event hot
//! path (canonical projection + per-plane nearest transfer, the work
//! `PE_Z0` + the `PE_Zi` array perform per event).
//!
//! Rows (group `quantized_kernel`, `eventor-bench/1` JSON):
//!
//! * `f64_hoisted_reference` — a frozen re-implementation of the datapath
//!   this repository shipped before the kernel refactor: Q11.21 parameters
//!   decoded once per frame to hoisted `f64` tables, per-event `f64` MACs,
//!   division, `round()` and bounds checks between the quantization points;
//! * `integer_kernel` — the same arithmetic through
//!   `eventor_fixed::kernel`: raw words in, `i64` wide accumulators,
//!   exact-rational rounding, integer nearest-voxel finder, one event at a
//!   time (the pre-vectorization scalar path, kept as a tier baseline);
//! * `batched_kernel` — the arithmetic the engine actually runs:
//!   `kernel::batch` batched projection + per-plane nearest transfer through
//!   the runtime-dispatched SIMD/SWAR tiers, with reused output buffers
//!   (the shape of `DsiVolume::vote_batch`, minus the slab writes).
//!
//! Every JSON document carries a `"context"` object recording which
//! dispatch tier (`avx2` / `neon` / `swar` / `scalar`) actually executed,
//! so recorded figures are attributable to a code path, not just a host.
//!
//! Throughput is reported in plane transfers per iteration
//! (`events × planes`). The repository's acceptance bars are
//! `batched_kernel` ≥ 2.5× and `integer_kernel` ≥ 1.2× the reference's
//! throughput (`docs/BENCHMARKS.md`); the bench prints the measured
//! speedups after the run by reading back the JSON documents.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eventor_core::{QuantizedCoefficients, QuantizedHomography};
use eventor_dsi::DepthPlanes;
use eventor_emvs::FrameGeometry;
use eventor_fixed::kernel::batch;
use eventor_fixed::kernel::{self, PhiWords};
use eventor_fixed::{PackedCoord, PlaneCoord, Q11p21, Q9p7};
use eventor_geom::{CameraIntrinsics, Pose, Vec3};
use std::hint::black_box;

const SENSOR_W: u32 = 240;
const SENSOR_H: u32 = 180;
const NUM_EVENTS: usize = 1024;
const NUM_PLANES: usize = 100;

/// The pre-refactor golden-model hot path, kept verbatim as the comparison
/// baseline: `QuantizedHomography::project_hoisted` plus
/// `QuantizedCoefficients::transfer_hoisted` + `PlaneCoord::from_projection`
/// as they existed before the kernel refactor. Do not "optimize" this — it
/// is the measurement reference. (A `#[cfg(test)]` transcription of the
/// same projection lives in `crates/fixed/src/kernel.rs::f64_reference`
/// for the correctness proptests; this copy exists because benches cannot
/// see test-only items. Keep both frozen.)
mod f64_reference {
    use super::*;

    pub struct HoistedParams {
        pub homography: [[f64; 3]; 3],
        pub coefficients: Vec<(f64, f64, f64)>,
    }

    pub fn hoist(h: &QuantizedHomography, phi: &[PhiWords]) -> HoistedParams {
        let mut homography = [[0.0; 3]; 3];
        for (i, row) in homography.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = h.entry(i, j);
            }
        }
        let coefficients = phi
            .iter()
            .map(|w| {
                (
                    Q11p21::from_raw(w.scale).to_f64(),
                    Q11p21::from_raw(w.offset_x).to_f64(),
                    Q11p21::from_raw(w.offset_y).to_f64(),
                )
            })
            .collect();
        HoistedParams {
            homography,
            coefficients,
        }
    }

    #[inline]
    pub fn project_hoisted(h: &[[f64; 3]; 3], coord: PackedCoord) -> Option<PackedCoord> {
        let x = coord.x_f64();
        let y = coord.y_f64();
        let w = h[2][0] * x + h[2][1] * y + h[2][2];
        if w.abs() < 1e-9 {
            return None;
        }
        let px = (h[0][0] * x + h[0][1] * y + h[0][2]) / w;
        let py = (h[1][0] * x + h[1][1] * y + h[1][2]) / w;
        if !px.is_finite() || !py.is_finite() {
            return None;
        }
        if px.abs() > Q9p7::MAX_MAGNITUDE || py.abs() > Q9p7::MAX_MAGNITUDE {
            return None;
        }
        Some(PackedCoord::from_f64(px, py))
    }

    /// One frame of the pre-refactor hot loop; returns the in-sensor vote
    /// count (what the engine accumulates).
    pub fn frame_votes(params: &HoistedParams, events: &[PackedCoord]) -> u64 {
        let mut votes = 0u64;
        for &coord in events {
            let Some(c) = project_hoisted(&params.homography, coord) else {
                continue;
            };
            let (cx, cy) = (c.x_f64(), c.y_f64());
            for &(scale, off_x, off_y) in &params.coefficients {
                let x = scale * cx + off_x;
                let y = scale * cy + off_y;
                if PlaneCoord::from_projection(x, y, SENSOR_W, SENSOR_H).is_inside() {
                    votes += 1;
                }
            }
        }
        votes
    }
}

/// One frame of the integer-kernel hot loop (the shape of
/// `vote_packet_quantized_nearest`, minus the DSI writes both variants
/// skip).
fn kernel_frame_votes(h: &[i32; 9], phi: &[PhiWords], events: &[PackedCoord]) -> u64 {
    let mut votes = 0u64;
    for &coord in events {
        let Some(c) = kernel::project_z0(h, coord) else {
            continue;
        };
        for w in phi {
            if kernel::transfer_nearest(w, c, SENSOR_W, SENSOR_H).is_inside() {
                votes += 1;
            }
        }
    }
    votes
}

/// One frame of the vectorized hot loop (the shape of
/// `DsiVolume::vote_batch` fed by `project_z0_batch`, minus the slab
/// writes): batched canonical projection once, then one batched per-plane
/// transfer over the survivors, counting in-sensor deposits. `canon` and
/// `idx` are reused across iterations exactly like the engine's
/// `VoteArena`, so the measurement excludes steady-state-free allocation.
fn batched_frame_votes(
    h: &[i32; 9],
    phi: &[PhiWords],
    events: &[PackedCoord],
    canon: &mut Vec<PackedCoord>,
    idx: &mut Vec<u32>,
) -> u64 {
    batch::project_z0_batch(h, events, canon);
    let mut votes = 0u64;
    for w in phi {
        batch::transfer_nearest_batch(w, canon, SENSOR_W, SENSOR_H, idx);
        votes += idx.iter().filter(|&&i| i != batch::MISS).count() as u64;
    }
    votes
}

fn setup() -> (QuantizedHomography, Vec<PhiWords>, Vec<PackedCoord>) {
    let intrinsics = CameraIntrinsics::davis240_default();
    let planes = DepthPlanes::uniform_inverse_depth(0.6, 6.0, NUM_PLANES).unwrap();
    let reference = Pose::identity();
    let frame_pose = Pose::from_translation(Vec3::new(0.08, -0.01, 0.02));
    let geometry = FrameGeometry::compute(&reference, &frame_pose, &intrinsics, &planes).unwrap();
    let qh = QuantizedHomography::from_homography(&geometry.homography);
    let qphi = QuantizedCoefficients::from_coefficients(&geometry.coefficients);
    let events: Vec<PackedCoord> = (0..NUM_EVENTS)
        .map(|i| PackedCoord::from_f64((i * 7 % 240) as f64 + 0.25, (i * 13 % 180) as f64 + 0.5))
        .collect();
    (qh, qphi.words().to_vec(), events)
}

fn bench_quantized_kernel(c: &mut Criterion) {
    let (qh, phi, events) = setup();
    let words = qh.raw_words();
    let hoisted = f64_reference::hoist(&qh, &phi);

    // All three paths must agree on the workload before being compared: the
    // kernel rounds the exact rational where the reference rounded an `f64`
    // quotient, so allow only tie-breaking slack (none occurs here), and the
    // batched tiers are bit-identical to the scalar kernel by contract.
    let ref_votes = f64_reference::frame_votes(&hoisted, &events);
    let int_votes = kernel_frame_votes(&words, &phi, &events);
    let mut canon = Vec::new();
    let mut idx = Vec::new();
    let batched_votes = batched_frame_votes(&words, &phi, &events, &mut canon, &mut idx);
    assert_eq!(
        ref_votes, int_votes,
        "kernel and f64 reference disagree on the benchmark workload"
    );
    assert_eq!(
        int_votes, batched_votes,
        "batched kernel and scalar kernel disagree on the benchmark workload"
    );
    assert!(ref_votes > 0, "degenerate workload");

    let mut group = c.benchmark_group("quantized_kernel");
    group.throughput(Throughput::Elements((NUM_EVENTS * NUM_PLANES) as u64));
    // Record which dispatch tier the batched row actually exercised; panics
    // here (unknown/unsupported EVENTOR_KERNEL_DISPATCH) are the same typed
    // errors the engine would raise, surfaced before any timing runs.
    group.context("dispatch_tier", batch::active().name());

    group.bench_function("f64_hoisted_reference", |b| {
        b.iter(|| black_box(f64_reference::frame_votes(&hoisted, black_box(&events))))
    });
    group.bench_function("integer_kernel", |b| {
        b.iter(|| black_box(kernel_frame_votes(&words, &phi, black_box(&events))))
    });
    group.bench_function("batched_kernel", |b| {
        b.iter(|| {
            black_box(batched_frame_votes(
                &words,
                &phi,
                black_box(&events),
                &mut canon,
                &mut idx,
            ))
        })
    });
    group.finish();

    // Local runs only report, so contributors on unusual hosts are never
    // blocked by a wall-clock ratio; CI opts into hard enforcement with
    // EVENTOR_ENFORCE_BENCH=1 because the recorded margins (~4x vs the 2.5x
    // bar on AVX2, ~3x vs the 1.2x scalar bar) dwarf runner noise
    // (docs/BENCHMARKS.md). The readback, the verdict line and the
    // never-silently-skipped rule live in the shared helper.
    eventor_bench::enforce::enforce_speedup_bar(
        "quantized_kernel",
        "f64_hoisted_reference",
        "integer_kernel",
        eventor_bench::enforce::SpeedupBar::Fixed(1.2),
    );
    eventor_bench::enforce::enforce_speedup_bar(
        "quantized_kernel",
        "f64_hoisted_reference",
        "batched_kernel",
        eventor_bench::enforce::SpeedupBar::Fixed(2.5),
    );
}

criterion_group!(benches, bench_quantized_kernel);
criterion_main!(benches);
