//! The CI performance-trend gate: compares `eventor-bench/1` measurement
//! JSON (as written by the criterion shim into `target/criterion-shim/`)
//! against a committed **`eventor-trend/1`** baseline and fails on
//! regressions.
//!
//! Policy, mirrored from `docs/BENCHMARKS.md`:
//!
//! * a benchmark whose measured rate falls more than `tolerance_pct` below
//!   its baseline rate is a **regression** (fatal),
//! * a baseline entry with a `p99_ceiling_seconds` requires the measurement
//!   to carry a `p99_seconds` context annotation at or under the ceiling
//!   (missing annotation or breach: fatal),
//! * a missing measurement file is fatal (a silently skipped bench must not
//!   look like a pass),
//! * an *improvement* beyond the tolerance is a non-fatal nudge to refresh
//!   the baseline so the gate tightens with the code.
//!
//! Everything here is `std`-only with a hand-rolled minimal JSON reader, so
//! the `bench_trend` binary stays dependency-free and runs anywhere the
//! toolchain does. The baseline is rate-based (units per second derived
//! from `mean_ns` and the throughput annotation), which makes "refresh the
//! baseline" a one-command operation: re-measure, rewrite rates, keep the
//! hand-set policy fields (tolerance, ceilings) untouched.

use std::fmt::Write as _;

/// Schema tag of the committed baseline document.
pub const TREND_SCHEMA: &str = "eventor-trend/1";
/// Schema tag of the per-benchmark measurement documents.
pub const BENCH_SCHEMA: &str = "eventor-bench/1";

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

/// A parsed JSON value (only what the two schemas need).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Number (all JSON numbers fit f64 for our purposes).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The two schemas emit identifier-ish strings only, but
                    // accept the basic escapes so hand-edited baselines with
                    // e.g. "\"" don't silently misparse.
                    self.pos += 1;
                    let c = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    };
                    out.push(c);
                    self.pos += 1;
                }
                Some(&b) if b >= 0x20 => {
                    // Copy the full UTF-8 sequence byte-for-byte.
                    out.push_str(self.utf8_char()?);
                }
                _ => return Err(format!("unterminated string at offset {}", self.pos)),
            }
        }
    }

    fn utf8_char(&mut self) -> Result<&str, String> {
        let rest = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| format!("invalid UTF-8 at offset {}", self.pos))?;
        let ch = rest.chars().next().expect("non-empty by caller check");
        let len = ch.len_utf8();
        let s = &rest[..len];
        self.pos += len;
        Ok(s)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

// ---------------------------------------------------------------------------
// eventor-bench/1 measurements
// ---------------------------------------------------------------------------

/// One benchmark measurement, as decoded from an `eventor-bench/1` file.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark group (directory name).
    pub group: String,
    /// Benchmark id within the group (file name).
    pub benchmark: String,
    /// Mean wall time of one iteration in nanoseconds.
    pub mean_ns: f64,
    /// Throughput units processed per iteration (0 when untagged).
    pub amount_per_iter: u64,
    /// Optional `p99_seconds` context annotation.
    pub p99_seconds: Option<f64>,
}

impl Measurement {
    /// Decodes one `eventor-bench/1` document.
    ///
    /// # Errors
    ///
    /// On malformed JSON, a wrong `schema` tag, or missing required fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != BENCH_SCHEMA {
            return Err(format!("schema {schema:?}, expected {BENCH_SCHEMA:?}"));
        }
        let field_str = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or(format!("missing string field {k:?}"))
        };
        let mean_ns = doc
            .get("mean_ns")
            .and_then(Json::as_f64)
            .ok_or("missing mean_ns")?;
        if !mean_ns.is_finite() || mean_ns <= 0.0 {
            return Err(format!("non-positive mean_ns {mean_ns}"));
        }
        let amount_per_iter = doc
            .get("throughput")
            .and_then(|t| t.get("amount_per_iter"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        let p99_seconds = doc
            .get("context")
            .and_then(|c| c.get("p99_seconds"))
            .and_then(Json::as_str)
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|_| format!("unparseable p99_seconds {s:?}"))
            })
            .transpose()?;
        Ok(Self {
            group: field_str("group")?,
            benchmark: field_str("benchmark")?,
            mean_ns,
            amount_per_iter,
            p99_seconds,
        })
    }

    /// The measured rate in units per second: throughput units when the
    /// bench is tagged, iterations per second otherwise.
    pub fn rate_per_sec(&self) -> f64 {
        self.amount_per_iter.max(1) as f64 / (self.mean_ns * 1e-9)
    }
}

// ---------------------------------------------------------------------------
// eventor-trend/1 baseline
// ---------------------------------------------------------------------------

/// One gated benchmark in the committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Benchmark group.
    pub group: String,
    /// Benchmark id within the group.
    pub benchmark: String,
    /// Baseline rate in units per second (see [`Measurement::rate_per_sec`]).
    pub rate_per_sec: f64,
    /// Optional absolute p99 ceiling; requires the measurement to carry a
    /// `p99_seconds` context annotation. Hand-set policy, never refreshed.
    pub p99_ceiling_seconds: Option<f64>,
}

/// The committed `eventor-trend/1` baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Allowed rate drop below baseline before the gate fails, in percent.
    pub tolerance_pct: f64,
    /// Gated benchmarks.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Decodes an `eventor-trend/1` document.
    ///
    /// # Errors
    ///
    /// On malformed JSON, a wrong `schema` tag, or missing required fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != TREND_SCHEMA {
            return Err(format!("schema {schema:?}, expected {TREND_SCHEMA:?}"));
        }
        let tolerance_pct = doc
            .get("tolerance_pct")
            .and_then(Json::as_f64)
            .ok_or("missing tolerance_pct")?;
        if !(0.0..100.0).contains(&tolerance_pct) {
            return Err(format!("tolerance_pct {tolerance_pct} outside [0, 100)"));
        }
        let Some(Json::Arr(raw)) = doc.get("entries") else {
            return Err("missing entries array".into());
        };
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let field_str = |k: &str| {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or(format!("entry {i}: missing string field {k:?}"))
            };
            let rate_per_sec = e
                .get("rate_per_sec")
                .and_then(Json::as_f64)
                .ok_or(format!("entry {i}: missing rate_per_sec"))?;
            if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
                return Err(format!("entry {i}: non-positive rate_per_sec"));
            }
            entries.push(BaselineEntry {
                group: field_str("group")?,
                benchmark: field_str("benchmark")?,
                rate_per_sec,
                p99_ceiling_seconds: e.get("p99_ceiling_seconds").and_then(Json::as_f64),
            });
        }
        Ok(Self {
            tolerance_pct,
            entries,
        })
    }

    /// Renders the document back to canonical `eventor-trend/1` text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{TREND_SCHEMA}\",");
        let _ = writeln!(out, "  \"tolerance_pct\": {:.1},", self.tolerance_pct);
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"group\": \"{}\",", e.group);
            let _ = writeln!(out, "      \"benchmark\": \"{}\",", e.benchmark);
            let _ = write!(out, "      \"rate_per_sec\": {:.3}", e.rate_per_sec);
            if let Some(ceiling) = e.p99_ceiling_seconds {
                let _ = write!(out, ",\n      \"p99_ceiling_seconds\": {ceiling:.3}");
            }
            out.push('\n');
            out.push_str(if i + 1 == self.entries.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A copy of this baseline with every entry's rate replaced by the
    /// matching measurement's. Policy fields (tolerance, p99 ceilings) and
    /// entries without a fresh measurement are kept untouched.
    #[must_use]
    pub fn refreshed(&self, measurements: &[Measurement]) -> Self {
        let mut out = self.clone();
        for entry in &mut out.entries {
            if let Some(m) = measurements
                .iter()
                .find(|m| m.group == entry.group && m.benchmark == entry.benchmark)
            {
                entry.rate_per_sec = m.rate_per_sec();
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------------

/// One line of gate output.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Human-readable verdict line.
    pub line: String,
    /// Whether this finding fails the gate.
    pub fatal: bool,
}

/// Compares measurements against the baseline; one [`Finding`] per entry
/// (plus one per p99 ceiling). The gate passes iff no finding is fatal.
pub fn check(baseline: &Baseline, measurements: &[Measurement]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for entry in &baseline.entries {
        let name = format!("{}/{}", entry.group, entry.benchmark);
        let Some(m) = measurements
            .iter()
            .find(|m| m.group == entry.group && m.benchmark == entry.benchmark)
        else {
            findings.push(Finding {
                line: format!(
                    "FAIL {name}: no measurement found (bench skipped or artifact missing)"
                ),
                fatal: true,
            });
            continue;
        };
        let rate = m.rate_per_sec();
        let delta_pct = (rate - entry.rate_per_sec) / entry.rate_per_sec * 100.0;
        if delta_pct < -baseline.tolerance_pct {
            findings.push(Finding {
                line: format!(
                    "FAIL {name}: {rate:.1}/s is {:.1}% below baseline {:.1}/s (tolerance {:.1}%)",
                    -delta_pct, entry.rate_per_sec, baseline.tolerance_pct
                ),
                fatal: true,
            });
        } else if delta_pct > baseline.tolerance_pct {
            findings.push(Finding {
                line: format!(
                    "NOTE {name}: {rate:.1}/s is {delta_pct:.1}% above baseline {:.1}/s — refresh the baseline to lock in the gain",
                    entry.rate_per_sec
                ),
                fatal: false,
            });
        } else {
            findings.push(Finding {
                line: format!(
                    "ok   {name}: {rate:.1}/s vs baseline {:.1}/s ({delta_pct:+.1}%)",
                    entry.rate_per_sec
                ),
                fatal: false,
            });
        }
        if let Some(ceiling) = entry.p99_ceiling_seconds {
            match m.p99_seconds {
                Some(p99) if p99 <= ceiling => findings.push(Finding {
                    line: format!("ok   {name}: p99 {p99:.3} s under the {ceiling:.3} s ceiling"),
                    fatal: false,
                }),
                Some(p99) => findings.push(Finding {
                    line: format!("FAIL {name}: p99 {p99:.3} s breaches the {ceiling:.3} s ceiling"),
                    fatal: true,
                }),
                None => findings.push(Finding {
                    line: format!(
                        "FAIL {name}: baseline pins a p99 ceiling but the measurement carries no p99_seconds annotation"
                    ),
                    fatal: true,
                }),
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement_json() -> &'static str {
        r#"{
  "schema": "eventor-bench/1",
  "group": "wire_loopback",
  "benchmark": "wire_200_clients",
  "samples": 2,
  "iters_per_sample": 1,
  "mean_ns": 852572385.500,
  "best_ns": 608053624.000,
  "worst_ns": 1097091147.000,
  "throughput": { "kind": "elements", "amount_per_iter": 550000 },
  "context": { "p99_seconds": "1.108818" }
}"#
    }

    fn baseline(rate: f64, ceiling: Option<f64>) -> Baseline {
        Baseline {
            tolerance_pct: 15.0,
            entries: vec![BaselineEntry {
                group: "wire_loopback".into(),
                benchmark: "wire_200_clients".into(),
                rate_per_sec: rate,
                p99_ceiling_seconds: ceiling,
            }],
        }
    }

    #[test]
    fn measurement_round_trip() {
        let m = Measurement::parse(sample_measurement_json()).unwrap();
        assert_eq!(m.group, "wire_loopback");
        assert_eq!(m.benchmark, "wire_200_clients");
        assert_eq!(m.amount_per_iter, 550_000);
        assert!((m.rate_per_sec() - 645_106.0).abs() < 1_000.0);
        assert!((m.p99_seconds.unwrap() - 1.108818).abs() < 1e-9);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = sample_measurement_json().replace("eventor-bench/1", "eventor-bench/2");
        assert!(Measurement::parse(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn untagged_benches_rate_as_iterations_per_second() {
        let text = sample_measurement_json()
            .replace("\"amount_per_iter\": 550000", "\"amount_per_iter\": 0");
        let m = Measurement::parse(&text).unwrap();
        assert!((m.rate_per_sec() - 1.0 / (852572385.5e-9)).abs() < 1e-6);
    }

    #[test]
    fn gate_passes_inside_tolerance() {
        let m = Measurement::parse(sample_measurement_json()).unwrap();
        let findings = check(&baseline(m.rate_per_sec() * 1.10, None), &[m]);
        assert!(findings.iter().all(|f| !f.fatal), "{findings:?}");
    }

    #[test]
    fn gate_fails_past_tolerance() {
        let m = Measurement::parse(sample_measurement_json()).unwrap();
        let findings = check(&baseline(m.rate_per_sec() * 1.20, None), &[m]);
        assert!(findings
            .iter()
            .any(|f| f.fatal && f.line.contains("below baseline")));
    }

    #[test]
    fn gate_notes_large_improvements_without_failing() {
        let m = Measurement::parse(sample_measurement_json()).unwrap();
        let findings = check(&baseline(m.rate_per_sec() * 0.5, None), &[m]);
        assert!(findings.iter().all(|f| !f.fatal));
        assert!(findings
            .iter()
            .any(|f| f.line.contains("refresh the baseline")));
    }

    #[test]
    fn gate_fails_on_missing_measurement() {
        let findings = check(&baseline(1000.0, None), &[]);
        assert!(findings
            .iter()
            .any(|f| f.fatal && f.line.contains("no measurement")));
    }

    #[test]
    fn p99_ceiling_is_enforced() {
        let m = Measurement::parse(sample_measurement_json()).unwrap();
        let rate = m.rate_per_sec();
        let ok = check(&baseline(rate, Some(30.0)), std::slice::from_ref(&m));
        assert!(ok.iter().all(|f| !f.fatal), "{ok:?}");
        let breach = check(&baseline(rate, Some(1.0)), std::slice::from_ref(&m));
        assert!(breach
            .iter()
            .any(|f| f.fatal && f.line.contains("breaches")));
        // A pinned ceiling with no annotation in the measurement is fatal too.
        let mut unannotated = m;
        unannotated.p99_seconds = None;
        let missing = check(&baseline(rate, Some(30.0)), &[unannotated]);
        assert!(missing
            .iter()
            .any(|f| f.fatal && f.line.contains("no p99_seconds")));
    }

    #[test]
    fn baseline_text_round_trips() {
        let b = baseline(654321.987, Some(30.0));
        let text = b.to_text();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.tolerance_pct, b.tolerance_pct);
        assert_eq!(parsed.entries.len(), 1);
        assert!((parsed.entries[0].rate_per_sec - 654321.987).abs() < 1e-3);
        assert_eq!(parsed.entries[0].p99_ceiling_seconds, Some(30.0));
    }

    #[test]
    fn refresh_updates_rates_and_keeps_policy() {
        let m = Measurement::parse(sample_measurement_json()).unwrap();
        let b = baseline(100.0, Some(30.0));
        let refreshed = b.refreshed(std::slice::from_ref(&m));
        assert!((refreshed.entries[0].rate_per_sec - m.rate_per_sec()).abs() < 1e-6);
        assert_eq!(refreshed.entries[0].p99_ceiling_seconds, Some(30.0));
        assert_eq!(refreshed.tolerance_pct, 15.0);
        // An entry with no fresh measurement is left alone.
        let stale = baseline(100.0, None);
        assert_eq!(stale.refreshed(&[]), stale);
    }

    #[test]
    fn json_reader_handles_nesting_and_escapes() {
        let v = Json::parse(r#"{"a": [1, -2.5e3, "x\"y"], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2500.0),
                Json::Str("x\"y".into()),
            ])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
