//! Shared acceptance-bar enforcement for the Criterion-shim benches.
//!
//! Every bar-carrying bench (`quantized_kernel`, `multi_session`) used to
//! inline the same three steps — read back the `eventor-bench/1` JSON,
//! host-scale the bar, print/enforce under `EVENTOR_ENFORCE_BENCH` — and
//! the two copies had already started to drift. This module is the single
//! implementation:
//!
//! * [`read_mean_ns`] resolves the shim's output directory itself, so the
//!   readback can never drift from where the JSON was written;
//! * [`SpeedupBar`] expresses both fixed bars and thread-scaling bars
//!   (`full` at ≥ `workers` hardware threads, degrading to
//!   `efficiency × min(workers, hardware)` on smaller hosts — the speedup
//!   physically available at that parallel efficiency);
//! * [`enforce_speedup_bar`] prints the verdict and, under
//!   `EVENTOR_ENFORCE_BENCH`, turns a miss **or a failed readback** into a
//!   panic — the bar is never silently skipped.

/// The environment variable that turns printed bars into hard failures
/// (set in CI).
pub const ENFORCE_ENV: &str = "EVENTOR_ENFORCE_BENCH";

/// Reads `mean_ns` back from the `eventor-bench/1` JSON document the
/// Criterion shim wrote for `group/benchmark`.
pub fn read_mean_ns(group: &str, benchmark: &str) -> Option<f64> {
    let path = criterion::output_dir()?
        .join(group)
        .join(format!("{benchmark}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"mean_ns\":";
    let at = text.find(key)? + key.len();
    text[at..].split([',', '}']).next()?.trim().parse().ok()
}

/// An acceptance bar on a `baseline / candidate` speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedupBar {
    /// The candidate must be at least this many times faster, on any host.
    Fixed(f64),
    /// A thread-scaling bar: `full` applies on hosts that can run the
    /// workload's parallelism; smaller hosts get
    /// `efficiency × min(workers, hardware_threads)` — the speedup
    /// physically available at `efficiency` parallel efficiency.
    HostScaled {
        /// The bar on a sufficiently parallel host.
        full: f64,
        /// Worker threads the measured configuration uses.
        workers: usize,
        /// Assumed parallel efficiency in `(0, 1]`.
        efficiency: f64,
    },
}

impl SpeedupBar {
    /// The numeric bar for a host with `hardware_threads` threads.
    pub fn for_host(self, hardware_threads: usize) -> f64 {
        match self {
            Self::Fixed(bar) => bar,
            Self::HostScaled {
                full,
                workers,
                efficiency,
            } => full.min(efficiency * workers.min(hardware_threads) as f64),
        }
    }
}

/// Outcome of a bar evaluation (also returned so benches can add
/// bench-specific reporting on top).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupVerdict {
    /// `baseline_mean_ns / candidate_mean_ns`.
    pub speedup: f64,
    /// The bar that applied on this host.
    pub bar: f64,
    /// Hardware threads detected on this host.
    pub hardware_threads: usize,
    /// Whether the speedup met the bar.
    pub passed: bool,
}

/// Reads both rows back, evaluates `bar`, prints a one-line verdict
/// (prefixed with `group:`), and — when [`ENFORCE_ENV`] is set — panics on
/// a miss or on a failed readback.
///
/// Returns `None` when the JSON could not be read and enforcement is off
/// (local runs stay unblocked on unusual hosts).
///
/// # Panics
///
/// Under [`ENFORCE_ENV`]: when the speedup is below the bar, or when either
/// JSON document cannot be read back.
pub fn enforce_speedup_bar(
    group: &str,
    baseline: &str,
    candidate: &str,
    bar: SpeedupBar,
) -> Option<SpeedupVerdict> {
    let enforce = std::env::var_os(ENFORCE_ENV).is_some();
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match (
        read_mean_ns(group, baseline),
        read_mean_ns(group, candidate),
    ) {
        (Some(baseline_ns), Some(candidate_ns)) => {
            let speedup = baseline_ns / candidate_ns;
            let applied = bar.for_host(hardware_threads);
            let passed = speedup >= applied;
            let scaling_note = match bar {
                SpeedupBar::Fixed(_) => String::new(),
                SpeedupBar::HostScaled {
                    full, efficiency, ..
                } => {
                    // The full bar applies once `efficiency × hardware`
                    // reaches it, not only at the full worker count.
                    let full_at = (full / efficiency).ceil() as usize;
                    format!(
                        " on {hardware_threads} hardware threads; the full {full:.1}x bar \
                         applies at >= {full_at} threads",
                    )
                }
            };
            println!(
                "{group}: {candidate} speedup over {baseline}: {speedup:.2}x \
                 (acceptance bar: >= {applied:.2}x{scaling_note}) — {}",
                if passed { "OK" } else { "BELOW BAR" }
            );
            if enforce {
                assert!(
                    passed,
                    "{group}: speedup {speedup:.2}x is below the {applied:.2}x acceptance bar"
                );
            }
            Some(SpeedupVerdict {
                speedup,
                bar: applied,
                hardware_threads,
                passed,
            })
        }
        _ if enforce => {
            panic!(
                "{ENFORCE_ENV} is set but the eventor-bench/1 JSON for `{group}` could not be read"
            );
        }
        _ => {
            println!("{group}: JSON readback unavailable, speedup not computed");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_scaled_bar_degrades_below_worker_count() {
        let bar = SpeedupBar::HostScaled {
            full: 3.0,
            workers: 8,
            efficiency: 0.75,
        };
        assert_eq!(bar.for_host(16), 3.0);
        assert_eq!(bar.for_host(8), 3.0);
        assert_eq!(bar.for_host(2), 1.5);
        assert_eq!(bar.for_host(1), 0.75);
        assert_eq!(SpeedupBar::Fixed(1.2).for_host(1), 1.2);
    }
}
