//! Shared acceptance-bar enforcement for the Criterion-shim benches.
//!
//! Every bar-carrying bench (`quantized_kernel`, `multi_session`) used to
//! inline the same three steps — read back the `eventor-bench/1` JSON,
//! host-scale the bar, print/enforce under `EVENTOR_ENFORCE_BENCH` — and
//! the two copies had already started to drift. This module is the single
//! implementation:
//!
//! * [`read_mean_ns`] resolves the shim's output directory itself, so the
//!   readback can never drift from where the JSON was written;
//! * [`SpeedupBar`] expresses both fixed bars and thread-scaling bars
//!   (`full` at ≥ `workers` hardware threads, degrading to
//!   `efficiency × min(workers, hardware)` on smaller hosts — the speedup
//!   physically available at that parallel efficiency);
//! * [`enforce_speedup_bar`] prints the verdict and, under
//!   `EVENTOR_ENFORCE_BENCH`, turns a miss **or a failed readback** into a
//!   panic — the bar is never silently skipped.

/// The environment variable that turns printed bars into hard failures
/// (set in CI).
pub const ENFORCE_ENV: &str = "EVENTOR_ENFORCE_BENCH";

/// Reads `mean_ns` back from the `eventor-bench/1` JSON document the
/// Criterion shim wrote for `group/benchmark`.
pub fn read_mean_ns(group: &str, benchmark: &str) -> Option<f64> {
    let path = criterion::output_dir()?
        .join(group)
        .join(format!("{benchmark}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"mean_ns\":";
    let at = text.find(key)? + key.len();
    text[at..].split([',', '}']).next()?.trim().parse().ok()
}

/// An acceptance bar on a `baseline / candidate` speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedupBar {
    /// The candidate must be at least this many times faster, on any host.
    Fixed(f64),
    /// A thread-scaling bar: `full` applies on hosts that can run the
    /// workload's parallelism; smaller hosts get
    /// `efficiency × min(workers, hardware_threads)` — the speedup
    /// physically available at `efficiency` parallel efficiency.
    HostScaled {
        /// The bar on a sufficiently parallel host.
        full: f64,
        /// Worker threads the measured configuration uses.
        workers: usize,
        /// Assumed parallel efficiency in `(0, 1]`.
        efficiency: f64,
    },
}

impl SpeedupBar {
    /// The numeric bar for a host with `hardware_threads` threads.
    pub fn for_host(self, hardware_threads: usize) -> f64 {
        match self {
            Self::Fixed(bar) => bar,
            Self::HostScaled {
                full,
                workers,
                efficiency,
            } => full.min(efficiency * workers.min(hardware_threads) as f64),
        }
    }
}

/// Outcome of a bar evaluation (also returned so benches can add
/// bench-specific reporting on top).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupVerdict {
    /// `baseline_mean_ns / candidate_mean_ns`.
    pub speedup: f64,
    /// The bar that applied on this host.
    pub bar: f64,
    /// Hardware threads detected on this host.
    pub hardware_threads: usize,
    /// Whether the speedup met the bar.
    pub passed: bool,
}

/// Reads both rows back, evaluates `bar`, prints a one-line verdict
/// (prefixed with `group:`), and — when [`ENFORCE_ENV`] is set — panics on
/// a miss or on a failed readback.
///
/// Returns `None` when the JSON could not be read and enforcement is off
/// (local runs stay unblocked on unusual hosts).
///
/// # Panics
///
/// Under [`ENFORCE_ENV`]: when the speedup is below the bar, or when either
/// JSON document cannot be read back.
pub fn enforce_speedup_bar(
    group: &str,
    baseline: &str,
    candidate: &str,
    bar: SpeedupBar,
) -> Option<SpeedupVerdict> {
    let enforce = std::env::var_os(ENFORCE_ENV).is_some();
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match (
        read_mean_ns(group, baseline),
        read_mean_ns(group, candidate),
    ) {
        (Some(baseline_ns), Some(candidate_ns)) => {
            let speedup = baseline_ns / candidate_ns;
            let applied = bar.for_host(hardware_threads);
            let passed = speedup >= applied;
            let scaling_note = match bar {
                SpeedupBar::Fixed(_) => String::new(),
                SpeedupBar::HostScaled {
                    full, efficiency, ..
                } => {
                    // The full bar applies once `efficiency × hardware`
                    // reaches it, not only at the full worker count.
                    let full_at = (full / efficiency).ceil() as usize;
                    format!(
                        " on {hardware_threads} hardware threads; the full {full:.1}x bar \
                         applies at >= {full_at} threads",
                    )
                }
            };
            println!(
                "{group}: {candidate} speedup over {baseline}: {speedup:.2}x \
                 (acceptance bar: >= {applied:.2}x{scaling_note}) — {}",
                if passed { "OK" } else { "BELOW BAR" }
            );
            if enforce {
                assert!(
                    passed,
                    "{group}: speedup {speedup:.2}x is below the {applied:.2}x acceptance bar"
                );
            }
            Some(SpeedupVerdict {
                speedup,
                bar: applied,
                hardware_threads,
                passed,
            })
        }
        _ if enforce => {
            panic!(
                "{ENFORCE_ENV} is set but the eventor-bench/1 JSON for `{group}` could not be read"
            );
        }
        _ => {
            println!("{group}: JSON readback unavailable, speedup not computed");
            None
        }
    }
}

/// A throughput floor in elements per second, scaling **linearly** with
/// hardware threads up to `saturation_threads` (the parallelism past which
/// the workload stops scaling). A 1-thread host owes
/// `full_per_sec / saturation_threads`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateFloor {
    /// The floor on a host with at least `saturation_threads` threads.
    pub full_per_sec: f64,
    /// Hardware threads at which the workload saturates.
    pub saturation_threads: usize,
}

impl RateFloor {
    /// The floor for a host with `hardware_threads` threads.
    pub fn for_host(self, hardware_threads: usize) -> f64 {
        self.full_per_sec * hardware_threads.min(self.saturation_threads) as f64
            / self.saturation_threads as f64
    }
}

/// Outcome of a rate-floor evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateVerdict {
    /// Measured elements per second.
    pub per_sec: f64,
    /// The floor that applied on this host.
    pub floor: f64,
    /// Whether the rate met the floor.
    pub passed: bool,
}

/// Reads `group/benchmark` back, converts its mean to `elements / second`,
/// prints the verdict and — under [`ENFORCE_ENV`] — panics when the rate is
/// below the host-scaled floor or the readback fails.
///
/// # Panics
///
/// Under [`ENFORCE_ENV`]: when the rate is below the floor, or when the
/// JSON document cannot be read back.
pub fn enforce_rate_floor(
    group: &str,
    benchmark: &str,
    elements: u64,
    floor: RateFloor,
) -> Option<RateVerdict> {
    let enforce = std::env::var_os(ENFORCE_ENV).is_some();
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match read_mean_ns(group, benchmark) {
        Some(mean_ns) if mean_ns > 0.0 => {
            let per_sec = elements as f64 / (mean_ns * 1e-9);
            let applied = floor.for_host(hardware_threads);
            let passed = per_sec >= applied;
            println!(
                "{group}: {benchmark} throughput: {:.0} elements/s (floor: >= {applied:.0} \
                 on {hardware_threads} hardware threads; full floor {:.0} at >= {} threads) — {}",
                per_sec,
                floor.full_per_sec,
                floor.saturation_threads,
                if passed { "OK" } else { "BELOW FLOOR" }
            );
            if enforce {
                assert!(
                    passed,
                    "{group}: {per_sec:.0} elements/s is below the {applied:.0}/s floor"
                );
            }
            Some(RateVerdict {
                per_sec,
                floor: applied,
                passed,
            })
        }
        _ if enforce => {
            panic!(
                "{ENFORCE_ENV} is set but the eventor-bench/1 JSON for `{group}` could not be read"
            );
        }
        _ => {
            println!("{group}: JSON readback unavailable, rate not computed");
            None
        }
    }
}

/// A tail-latency ceiling in seconds that **relaxes** on hosts with fewer
/// than `saturation_threads` hardware threads (the same sessions share
/// fewer cores, so each takes proportionally longer):
/// `full_seconds × saturation / min(threads, saturation)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyCeiling {
    /// The ceiling on a host with at least `saturation_threads` threads.
    pub full_seconds: f64,
    /// Hardware threads at which the workload saturates.
    pub saturation_threads: usize,
}

impl LatencyCeiling {
    /// The ceiling for a host with `hardware_threads` threads.
    pub fn for_host(self, hardware_threads: usize) -> f64 {
        self.full_seconds * self.saturation_threads as f64
            / hardware_threads.min(self.saturation_threads) as f64
    }
}

/// The `q`-quantile (e.g. `0.99`) of a set of latency samples, by
/// nearest-rank on the sorted set. Returns `None` on an empty set.
pub fn quantile_seconds(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Prints and — under [`ENFORCE_ENV`] — enforces a measured tail latency
/// against a host-scaled ceiling. The caller measures (the Criterion shim
/// records only means); this helper owns the host scaling, the report line
/// and the never-silently-skipped rule.
///
/// # Panics
///
/// Under [`ENFORCE_ENV`]: when the measured latency exceeds the ceiling.
pub fn enforce_latency_ceiling(
    group: &str,
    label: &str,
    measured_seconds: f64,
    ceiling: LatencyCeiling,
) {
    let enforce = std::env::var_os(ENFORCE_ENV).is_some();
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let applied = ceiling.for_host(hardware_threads);
    let passed = measured_seconds <= applied;
    println!(
        "{group}: {label}: {measured_seconds:.3} s (ceiling: <= {applied:.3} s on \
         {hardware_threads} hardware threads; full ceiling {:.3} s at >= {} threads) — {}",
        ceiling.full_seconds,
        ceiling.saturation_threads,
        if passed { "OK" } else { "ABOVE CEILING" }
    );
    if enforce {
        assert!(
            passed,
            "{group}: {label} {measured_seconds:.3} s exceeds the {applied:.3} s ceiling"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_scaled_bar_degrades_below_worker_count() {
        let bar = SpeedupBar::HostScaled {
            full: 3.0,
            workers: 8,
            efficiency: 0.75,
        };
        assert_eq!(bar.for_host(16), 3.0);
        assert_eq!(bar.for_host(8), 3.0);
        assert_eq!(bar.for_host(2), 1.5);
        assert_eq!(bar.for_host(1), 0.75);
        assert_eq!(SpeedupBar::Fixed(1.2).for_host(1), 1.2);
    }

    #[test]
    fn rate_floor_scales_down_and_latency_ceiling_scales_up() {
        let floor = RateFloor {
            full_per_sec: 800_000.0,
            saturation_threads: 8,
        };
        assert_eq!(floor.for_host(16), 800_000.0);
        assert_eq!(floor.for_host(8), 800_000.0);
        assert_eq!(floor.for_host(2), 200_000.0);
        assert_eq!(floor.for_host(1), 100_000.0);

        let ceiling = LatencyCeiling {
            full_seconds: 2.0,
            saturation_threads: 8,
        };
        assert_eq!(ceiling.for_host(16), 2.0);
        assert_eq!(ceiling.for_host(8), 2.0);
        assert_eq!(ceiling.for_host(2), 8.0);
        assert_eq!(ceiling.for_host(1), 16.0);
    }

    #[test]
    fn quantile_is_nearest_rank_on_the_sorted_set() {
        assert_eq!(quantile_seconds(&[], 0.99), None);
        assert_eq!(quantile_seconds(&[4.0], 0.99), Some(4.0));
        let samples: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        assert_eq!(quantile_seconds(&samples, 0.99), Some(99.0));
        assert_eq!(quantile_seconds(&samples, 0.5), Some(50.0));
        assert_eq!(quantile_seconds(&samples, 1.0), Some(100.0));
    }
}
