//! Regenerates **Fig. 7a**: depth-estimation error (AbsRel) of the original
//! EMVS framework versus the fully reformulated hardware-friendly framework
//! (nearest voting + quantization + rescheduling) across the four evaluation
//! sequences.
//!
//! The paper reports a maximum AbsRel difference of about 1.78 %, with the
//! reformulated framework even slightly better on the two slider sequences.

use eventor_bench::{experiment_config, fast_mode, generate_all_sequences, print_header};
use eventor_core::{run_variant, PipelineVariant};

fn main() {
    let fast = fast_mode();
    let sequences = generate_all_sequences(fast);

    print_header("Fig. 7a: original EMVS vs reformulated (Eventor) framework");
    println!(
        "{:<22} {:>14} {:>18} {:>12} {:>12}",
        "sequence", "original (%)", "reformulated (%)", "diff (pp)", "coverage"
    );
    let mut max_diff: f64 = 0.0;
    for seq in &sequences {
        let config = experiment_config(seq);
        let original = run_variant(seq, PipelineVariant::OriginalBilinear, &config)
            .expect("original variant runs");
        let reformulated = run_variant(seq, PipelineVariant::Reformulated, &config)
            .expect("reformulated variant runs");
        let diff = (reformulated.metrics.abs_rel - original.metrics.abs_rel) * 100.0;
        max_diff = max_diff.max(diff.abs());
        println!(
            "{:<22} {:>14.2} {:>18.2} {:>12.2} {:>11.1}%",
            seq.kind.label(),
            original.metrics.abs_rel * 100.0,
            reformulated.metrics.abs_rel * 100.0,
            diff,
            reformulated.metrics.completeness * 100.0
        );
    }
    println!();
    println!("maximum AbsRel difference: {max_diff:.2} percentage points (paper: about 1.78)");
}
