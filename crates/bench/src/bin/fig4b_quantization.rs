//! Regenerates **Fig. 4b**: depth-estimation error (AbsRel) of the
//! full-precision datapath versus the Table 1 quantized datapath across the
//! four evaluation sequences.
//!
//! The paper reports a maximum AbsRel difference of about 1.01 % before and
//! after quantization.

use eventor_bench::{experiment_config, fast_mode, generate_all_sequences, print_header};
use eventor_core::{run_variant, PipelineVariant};

fn main() {
    let fast = fast_mode();
    let sequences = generate_all_sequences(fast);

    print_header("Fig. 4b: depth estimation error, original vs quantized");
    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "sequence", "original (%)", "quantized (%)", "diff (pp)"
    );
    let mut max_diff: f64 = 0.0;
    for seq in &sequences {
        let config = experiment_config(seq);
        let original = run_variant(seq, PipelineVariant::OriginalBilinear, &config)
            .expect("original variant runs");
        let quantized = run_variant(seq, PipelineVariant::QuantizedBilinear, &config)
            .expect("quantized variant runs");
        let diff = (quantized.metrics.abs_rel - original.metrics.abs_rel) * 100.0;
        max_diff = max_diff.max(diff.abs());
        println!(
            "{:<22} {:>14.2} {:>14.2} {:>12.2}",
            seq.kind.label(),
            original.metrics.abs_rel * 100.0,
            quantized.metrics.abs_rel * 100.0,
            diff
        );
    }
    println!();
    println!("maximum AbsRel difference: {max_diff:.2} percentage points (paper: about 1.01)");
}
