//! Regenerates **Table 1**: the hybrid quantization strategy, together with a
//! measurement of the quantization error each format introduces on realistic
//! EMVS data and the resulting memory savings.

use eventor_bench::{fast_mode, generate_sequence, print_header};
use eventor_dsi::DepthPlanes;
use eventor_emvs::FrameGeometry;
use eventor_events::{aggregate, SequenceKind, DEFAULT_EVENTS_PER_FRAME};
use eventor_fixed::{analyze, frame_memory_footprint, TABLE1_STRATEGY};
use eventor_geom::Vec2;

fn main() {
    let fast = fast_mode();
    print_header("Table 1: hybrid data quantization strategy");
    println!(
        "{:<24} {:>10} {:>14} {:>14}",
        "Quantized Data Type", "Total #bit", "#bit Integer", "#bit Decimal"
    );
    for spec in TABLE1_STRATEGY {
        println!(
            "{:<24} {:>10} {:>14} {:>14}",
            spec.name, spec.total_bits, spec.integer_bits, spec.decimal_bits
        );
    }

    // Measure the quantization error of each format on data drawn from a real
    // reconstruction workload.
    let seq = generate_sequence(SequenceKind::ThreePlanes, fast);
    let frames = aggregate(&seq.events, DEFAULT_EVENTS_PER_FRAME);
    let planes = DepthPlanes::uniform_inverse_depth(seq.depth_range.0, seq.depth_range.1, 100)
        .expect("sequence depth range is valid");

    let mut coords = Vec::new();
    let mut canonical = Vec::new();
    let mut homography_entries = Vec::new();
    let mut phi_values = Vec::new();
    for frame in frames.iter().take(8) {
        let Some(ts) = frame.timestamp() else {
            continue;
        };
        let Ok(pose) = seq.trajectory.pose_at(ts) else {
            continue;
        };
        let Ok(geometry) =
            FrameGeometry::compute(&seq.reference_pose, &pose, &seq.camera.intrinsics, &planes)
        else {
            continue;
        };
        for i in 0..3 {
            for j in 0..3 {
                homography_entries.push(geometry.homography.h.m[i][j]);
            }
        }
        phi_values.extend(geometry.coefficients.scale.iter().copied());
        phi_values.extend(geometry.coefficients.offset_x.iter().copied());
        phi_values.extend(geometry.coefficients.offset_y.iter().copied());
        for e in &frame.events {
            let px = Vec2::new(e.x as f64, e.y as f64);
            coords.push(px.x);
            coords.push(px.y);
            if let Some(c) = geometry.canonical(px) {
                canonical.push(c.x);
                canonical.push(c.y);
            }
        }
    }

    print_header("Measured quantization error per format (mean abs / max abs)");
    let coord_report = analyze::<i16, 7>(&coords);
    let canonical_report = analyze::<i16, 7>(&canonical);
    let h_report = analyze::<i32, 21>(&homography_entries);
    let phi_report = analyze::<i32, 21>(&phi_values);
    println!(
        "(x_k, y_k)        Q9.7   : {:.6} / {:.6} px",
        coord_report.mean_abs_error, coord_report.max_abs_error
    );
    println!(
        "(x_k(Z0), y_k(Z0)) Q9.7  : {:.6} / {:.6} px",
        canonical_report.mean_abs_error, canonical_report.max_abs_error
    );
    println!(
        "H_Z0              Q11.21 : {:.2e} / {:.2e}",
        h_report.mean_abs_error, h_report.max_abs_error
    );
    println!(
        "phi               Q11.21 : {:.2e} / {:.2e}",
        phi_report.mean_abs_error, phi_report.max_abs_error
    );

    let (float_bytes, quant_bytes) = frame_memory_footprint(
        DEFAULT_EVENTS_PER_FRAME,
        100,
        seq.camera.intrinsics.width as usize,
        seq.camera.intrinsics.height as usize,
    );
    print_header("Memory footprint per frame + DSI");
    println!("float baseline : {:.2} MB", float_bytes as f64 / 1e6);
    println!("quantized      : {:.2} MB", quant_bytes as f64 / 1e6);
    println!(
        "saving         : {:.1}% (paper: \"up to 50%\")",
        100.0 * (1.0 - quant_bytes as f64 / float_bytes as f64)
    );
}
