//! Regenerates **Table 2**: FPGA resource utilization of the Eventor
//! prototype (1× `PE_Z0`, 2× `PE_Zi`, double-buffered BRAMs) on the Zynq
//! XC7Z020, plus a scaling study over the number of `PE_Zi`.

use eventor_bench::print_header;
use eventor_hwsim::{estimate_resources, AcceleratorConfig};

fn main() {
    print_header("Table 2: FPGA resource utilization of Eventor (XC7Z020)");
    let report = estimate_resources(&AcceleratorConfig::default());
    println!("{}", report.to_table());
    println!("paper reports: 17538 LUT (32.97%), 22830 FF (21.46%), 64 KB BRAM (11.43%)");

    print_header("Scaling: resource cost versus number of PE_Zi");
    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "PE_Zi", "LUT", "FF", "BRAM (KB)"
    );
    for n_pe in [1usize, 2, 4, 8] {
        let r = estimate_resources(&AcceleratorConfig::default().with_pe_zi(n_pe));
        println!(
            "{:>6} {:>10} {:>10} {:>12.1}",
            n_pe,
            r.total_luts(),
            r.total_flip_flops(),
            r.total_bram_bytes() as f64 / 1024.0
        );
    }
}
