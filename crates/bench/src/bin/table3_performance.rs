//! Regenerates **Table 3**: runtime per task and per event frame, event
//! processing rate and power for the CPU baseline versus the Eventor
//! accelerator, plus the resulting energy-efficiency factor and a `PE_Zi` /
//! double-buffering ablation.
//!
//! The CPU column is *measured* by running the baseline EMVS mapper on this
//! machine (the paper used an Intel i5-7300HQ; absolute numbers therefore
//! differ, the shape of the comparison is what is reproduced). The Eventor
//! column comes from the calibrated hardware model in `eventor-hwsim`.

use eventor_bench::{experiment_config, fast_mode, generate_sequence, print_header};
use eventor_core::AcceleratorRun;
use eventor_emvs::EmvsMapper;
use eventor_events::SequenceKind;
use eventor_hwsim::{AcceleratorConfig, INTEL_I5_POWER_W};

fn main() {
    let fast = fast_mode();
    let seq = generate_sequence(SequenceKind::ThreePlanes, fast);
    let config = experiment_config(&seq);

    // CPU baseline: measured runtime of the original EMVS.
    let mapper = EmvsMapper::new(seq.camera, config.clone()).expect("experiment config is valid");
    let output = mapper
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("baseline reconstruction succeeds on the synthetic sequence");
    let cpu = &output.profile;

    // Eventor: hardware model on the same frame workload.
    let accel_config = AcceleratorConfig::default()
        .with_events_per_frame(config.events_per_frame)
        .with_depth_planes(config.num_depth_planes);
    let run = AcceleratorRun::evaluate_from_profile(&accel_config, cpu);
    let energy = run.energy_versus_cpu(cpu);

    print_header("Table 3: performance comparison (CPU baseline vs Eventor)");
    println!(
        "workload: {} ({} events, {} frames, {} key frames)",
        seq.name(),
        cpu.events_processed,
        cpu.frames_processed,
        cpu.keyframes
    );
    println!();
    println!(
        "{:<44} {:>14} {:>14}",
        "", "CPU (measured)", "Eventor (model)"
    );
    println!(
        "{:<44} {:>14.2} {:>14.2}",
        "P{Z0} runtime per event frame (us)",
        cpu.canonical_us_per_frame(),
        run.performance.canonical_us
    );
    println!(
        "{:<44} {:>14.2} {:>14.2}",
        "P{Z0;Zi} & R runtime per event frame (us)",
        cpu.proportional_raycount_us_per_frame(),
        run.performance.proportional_us
    );
    println!(
        "{:<44} {:>14.2} {:>14.2}",
        "runtime per normal frame (us)",
        cpu.frame_us(),
        run.performance.normal_frame_us
    );
    println!(
        "{:<44} {:>14.2} {:>14.2}",
        "runtime per key frame (us)",
        cpu.frame_us(),
        run.performance.key_frame_us
    );
    println!(
        "{:<44} {:>14.2} {:>14.2}",
        "event processing rate, normal (Mevents/s)",
        cpu.event_rate() / 1e6,
        run.performance.event_rate_normal / 1e6
    );
    println!(
        "{:<44} {:>14.2} {:>14.2}",
        "event processing rate, key frame (Mevents/s)",
        cpu.event_rate() / 1e6,
        run.performance.event_rate_key / 1e6
    );
    println!(
        "{:<44} {:>14.2} {:>14.2}",
        "power (W)", INTEL_I5_POWER_W, run.power_w
    );
    println!();
    println!(
        "power reduction: {:.1}x   energy-efficiency gain on this workload: {:.1}x   (paper: 24x)",
        energy.power_reduction(),
        energy.efficiency_gain()
    );
    println!(
        "paper reference (Table 3): CPU 22.40 / 559.55 / 581.95 us, 1.76 Mev/s, 45 W;  \
         Eventor 8.24 / 551.58 / 551.58 (559.82 key) us, 1.86 (1.83) Mev/s, 1.86 W"
    );

    print_header("Ablation: number of PE_Zi and double buffering");
    println!(
        "{:>6} {:>14} {:>16} {:>16} {:>10}",
        "PE_Zi", "double-buf", "normal frame us", "event rate Mev/s", "power W"
    );
    for n_pe in [1usize, 2, 4, 8] {
        for double_buffering in [true, false] {
            let cfg = AcceleratorConfig::default()
                .with_pe_zi(n_pe)
                .with_double_buffering(double_buffering)
                .with_events_per_frame(config.events_per_frame)
                .with_depth_planes(config.num_depth_planes);
            let ablation = AcceleratorRun::evaluate_from_profile(&cfg, cpu);
            println!(
                "{:>6} {:>14} {:>16.2} {:>16.2} {:>10.2}",
                n_pe,
                double_buffering,
                ablation.performance.normal_frame_us,
                ablation.performance.event_rate_normal / 1e6,
                ablation.power_w
            );
        }
    }
}
