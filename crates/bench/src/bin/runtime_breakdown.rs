//! Regenerates the Section 2.1 profiling claims that motivate the hardware
//! partition:
//!
//! * event back-projection (`𝒫`) plus volumetric ray-counting (`ℛ`) account
//!   for **over 80 %** of the total EMVS runtime, and
//! * the four hot sub-tasks (`𝒫{Z0}`, `𝒫{Z0;Zi}`, `𝒢`, `𝒱`) account for
//!   **over 90 %** of the `𝒫 + ℛ` time.

use eventor_bench::{experiment_config, fast_mode, generate_all_sequences, print_header};
use eventor_emvs::EmvsMapper;

fn main() {
    let fast = fast_mode();
    let sequences = generate_all_sequences(fast);

    print_header("Runtime breakdown of the baseline EMVS (Section 2.1 claims)");
    for seq in &sequences {
        let config = experiment_config(seq);
        let mapper = EmvsMapper::new(seq.camera, config).expect("experiment config is valid");
        let output = mapper
            .reconstruct(&seq.events, &seq.trajectory)
            .expect("baseline reconstruction succeeds");
        let profile = &output.profile;
        println!("\n--- {} ---", seq.name());
        println!("{}", profile.to_table());
    }
    println!("paper claims: P+R > 80% of total; hot sub-tasks > 90% of P+R");
}
