//! Regenerates **Fig. 4a**: depth-estimation error (AbsRel) of bilinear
//! voting versus nearest voting across the four evaluation sequences.
//!
//! The paper reports a maximum AbsRel difference of about 1.18 % between the
//! two voting schemes; the reproduced claim is that nearest voting stays
//! close to bilinear voting on every sequence.

use eventor_bench::{experiment_config, fast_mode, generate_all_sequences, print_header};
use eventor_core::{run_variant, PipelineVariant};

fn main() {
    let fast = fast_mode();
    let sequences = generate_all_sequences(fast);

    print_header("Fig. 4a: depth estimation error, bilinear vs nearest voting");
    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "sequence", "bilinear (%)", "nearest (%)", "diff (pp)"
    );
    let mut max_diff: f64 = 0.0;
    for seq in &sequences {
        let config = experiment_config(seq);
        let bilinear = run_variant(seq, PipelineVariant::OriginalBilinear, &config)
            .expect("bilinear variant runs");
        let nearest = run_variant(seq, PipelineVariant::OriginalNearest, &config)
            .expect("nearest variant runs");
        let diff = (nearest.metrics.abs_rel - bilinear.metrics.abs_rel) * 100.0;
        max_diff = max_diff.max(diff.abs());
        println!(
            "{:<22} {:>14.2} {:>14.2} {:>12.2}",
            seq.kind.label(),
            bilinear.metrics.abs_rel * 100.0,
            nearest.metrics.abs_rel * 100.0,
            diff
        );
    }
    println!();
    println!("maximum AbsRel difference: {max_diff:.2} percentage points (paper: about 1.18)");
}
