//! Regenerates **Fig. 7b**: a 3-D view of the scene structure reconstructed
//! from the `simulation_3planes` sequence.
//!
//! The reconstructed semi-dense point cloud is written as an ASCII PLY file
//! (default `results/fig7b_3planes.ply`) that any point-cloud viewer can
//! open; summary statistics are printed so the result can be checked without
//! a viewer.

use eventor_bench::{experiment_config, fast_mode, generate_sequence, print_header};
use eventor_core::{EventorOptions, EventorPipeline};
use eventor_dsi::PointCloud;
use eventor_events::SequenceKind;
use std::fs;
use std::path::PathBuf;

fn main() {
    let fast = fast_mode();
    let seq = generate_sequence(SequenceKind::ThreePlanes, fast);
    let config = experiment_config(&seq);

    let pipeline = EventorPipeline::new(seq.camera, config, EventorOptions::accelerator())
        .expect("experiment config is valid");
    let output = pipeline
        .reconstruct(&seq.events, &seq.trajectory)
        .expect("reconstruction succeeds on the synthetic sequence");

    let mut cloud = PointCloud::new();
    for kf in &output.keyframes {
        cloud.merge(&kf.local_cloud);
    }
    let filtered = cloud.radius_outlier_filtered(0.08, 2);

    let out_dir = PathBuf::from("results");
    fs::create_dir_all(&out_dir).expect("can create the results directory");
    let path = out_dir.join("fig7b_3planes.ply");
    let file = fs::File::create(&path).expect("can create the PLY file");
    filtered
        .write_ply(std::io::BufWriter::new(file))
        .expect("can write the PLY file");

    print_header("Fig. 7b: reconstructed scene structure (simulation_3planes)");
    println!("key frames          : {}", output.keyframes.len());
    println!("raw points          : {}", cloud.len());
    println!("filtered points     : {}", filtered.len());
    if let Some((min, max)) = filtered.bounds() {
        println!("bounding box (m)    : {min} .. {max}");
    }
    if let Some(centroid) = filtered.centroid() {
        println!("centroid (m)        : {centroid}");
    }
    // The scene has three planes at z = 1.2, 2.0 and 3.0 m; report how close
    // the reconstruction lies to them.
    if let Ok(d) = filtered.mean_z_distance_to_planes(&[1.2, 2.0, 3.0]) {
        println!("mean |z - plane| (m): {d:.4}  (ground-truth planes at 1.2 / 2.0 / 3.0 m)");
    }
    println!("point cloud written : {}", path.display());
}
