//! The CI perf-regression gate over `eventor-bench/1` measurement JSON.
//!
//! ```text
//! bench_trend check  <measure-dir> [--baseline <path>]
//! bench_trend update <measure-dir> [--baseline <path>]
//! ```
//!
//! `<measure-dir>` is a criterion-shim output tree
//! (`<dir>/<group>/<benchmark>.json`, e.g. `target/criterion-shim` locally
//! or a downloaded CI artifact). The baseline defaults to
//! `benchmarks/baseline.json` at the repository root.
//!
//! * `check` compares every baseline entry against its measurement and
//!   exits nonzero on a throughput regression beyond the baseline's
//!   tolerance, a p99 ceiling breach, or a missing measurement.
//! * `update` is the one-command baseline refresh: it rewrites each
//!   entry's `rate_per_sec` from the measurements while keeping the policy
//!   fields (tolerance, p99 ceilings) untouched:
//!
//!   ```text
//!   cargo bench --bench wire_loopback --bench wire_churn
//!   cargo run --release -p eventor-bench --bin bench_trend -- update target/criterion-shim
//!   ```
//!
//! The gate's semantics live (unit-tested) in `eventor_bench::trend`; this
//! binary is just filesystem walking and exit codes.

use eventor_bench::trend::{check, Baseline, Measurement};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_BASELINE: &str = "benchmarks/baseline.json";

fn usage() -> ExitCode {
    eprintln!("usage: bench_trend <check|update> <measure-dir> [--baseline <path>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = match args.split_first() {
        Some((m, rest)) if m == "check" || m == "update" => (m.clone(), rest),
        _ => return usage(),
    };
    let mut measure_dir: Option<PathBuf> = None;
    let mut baseline_path = PathBuf::from(DEFAULT_BASELINE);
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--baseline" {
            match it.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => return usage(),
            }
        } else if measure_dir.is_none() {
            measure_dir = Some(PathBuf::from(arg));
        } else {
            return usage();
        }
    }
    let Some(measure_dir) = measure_dir else {
        return usage();
    };

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_trend: cannot read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_trend: bad baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let measurements = match load_measurements(&measure_dir) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_trend: {} measurement(s) under {}, baseline {} ({} entries, tolerance {:.1}%)",
        measurements.len(),
        measure_dir.display(),
        baseline_path.display(),
        baseline.entries.len(),
        baseline.tolerance_pct,
    );

    match mode.as_str() {
        "check" => {
            let findings = check(&baseline, &measurements);
            let mut failed = false;
            for f in &findings {
                println!("{}", f.line);
                failed |= f.fatal;
            }
            if failed {
                eprintln!("bench_trend: FAILED — see lines above");
                ExitCode::FAILURE
            } else {
                println!("bench_trend: all {} gate(s) passed", findings.len());
                ExitCode::SUCCESS
            }
        }
        "update" => {
            let refreshed = baseline.refreshed(&measurements);
            for (old, new) in baseline.entries.iter().zip(&refreshed.entries) {
                println!(
                    "{}/{}: {:.1}/s -> {:.1}/s",
                    old.group, old.benchmark, old.rate_per_sec, new.rate_per_sec
                );
            }
            if let Err(e) = std::fs::write(&baseline_path, refreshed.to_text()) {
                eprintln!("bench_trend: cannot write {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "bench_trend: baseline {} refreshed",
                baseline_path.display()
            );
            ExitCode::SUCCESS
        }
        _ => unreachable!("mode validated above"),
    }
}

/// Reads every `<dir>/<group>/<benchmark>.json` measurement. Files that are
/// not valid `eventor-bench/1` documents fail the run loudly — a corrupt
/// artifact must not silently shrink the gated set.
fn load_measurements(dir: &Path) -> Result<Vec<Measurement>, String> {
    let mut out = Vec::new();
    let groups =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for group in groups {
        let group = group.map_err(|e| e.to_string())?.path();
        if !group.is_dir() {
            continue;
        }
        let files = std::fs::read_dir(&group)
            .map_err(|e| format!("cannot read {}: {e}", group.display()))?;
        for file in files {
            let file = file.map_err(|e| e.to_string())?.path();
            if file.extension().map(|e| e == "json") != Some(true) {
                continue;
            }
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            out.push(
                Measurement::parse(&text)
                    .map_err(|e| format!("bad measurement {}: {e}", file.display()))?,
            );
        }
    }
    Ok(out)
}
