//! # eventor-bench
//!
//! Experiment harness for the Eventor reproduction: shared helpers used by
//! the per-table / per-figure binaries in `src/bin/` and the Criterion
//! benches in `benches/`.
//!
//! Every binary accepts `--fast` (or the `EVENTOR_FAST=1` environment
//! variable) to switch from the full DAVIS-resolution configuration to the
//! reduced test configuration, which makes the whole experiment suite run in
//! seconds for smoke-testing.
//!
//! Which binary reproduces which paper artefact (and how to read the
//! outputs) is documented in the repository's `README.md` and
//! `docs/BENCHMARKS.md`.
//!
//! ## Example
//!
//! Generating an experiment workload and its configuration, exactly the way
//! the `src/bin/` binaries do:
//!
//! ```
//! use eventor_bench::{dataset_config, experiment_config, EXPERIMENT_DEPTH_PLANES};
//! use eventor_events::{SequenceKind, SyntheticSequence};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // `true` = the reduced-scale fast mode the test suite uses.
//! let seq = SyntheticSequence::generate(SequenceKind::ThreePlanes, &dataset_config(true))?;
//! let config = experiment_config(&seq);
//! assert_eq!(config.num_depth_planes, EXPERIMENT_DEPTH_PLANES);
//! assert!((config.depth_range.0, config.depth_range.1) == seq.depth_range);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod enforce;
pub mod trend;

use eventor_core::config_for_sequence;
use eventor_emvs::EmvsConfig;
use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};

/// Number of DSI depth planes used by the experiments (the paper's `N_z`).
pub const EXPERIMENT_DEPTH_PLANES: usize = 100;

/// Whether the harness should run in fast (reduced-scale) mode.
///
/// Fast mode is selected by passing `--fast` on the command line or setting
/// `EVENTOR_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
        || std::env::var("EVENTOR_FAST")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// The dataset configuration for the current mode.
pub fn dataset_config(fast: bool) -> DatasetConfig {
    if fast {
        DatasetConfig::fast_test()
    } else {
        DatasetConfig::paper_scale()
    }
}

/// Generates one sequence in the current mode, logging progress to stderr.
///
/// # Panics
///
/// Panics if the simulator rejects the configuration (which cannot happen for
/// the built-in configurations).
pub fn generate_sequence(kind: SequenceKind, fast: bool) -> SyntheticSequence {
    eprintln!(
        "[eventor-bench] generating {} ({} mode)...",
        kind.name(),
        if fast { "fast" } else { "paper-scale" }
    );
    let seq = SyntheticSequence::generate(kind, &dataset_config(fast))
        .expect("built-in dataset configurations are valid");
    eprintln!(
        "[eventor-bench]   {} events, {:.2} s, {:.2} Mev/s",
        seq.events.len(),
        seq.events.duration(),
        seq.stats.mean_event_rate / 1e6
    );
    seq
}

/// Generates all four evaluation sequences in the current mode.
pub fn generate_all_sequences(fast: bool) -> Vec<SyntheticSequence> {
    SequenceKind::ALL
        .iter()
        .map(|&k| generate_sequence(k, fast))
        .collect()
}

/// The EMVS configuration the experiments use for a sequence.
pub fn experiment_config(sequence: &SyntheticSequence) -> EmvsConfig {
    config_for_sequence(sequence, EXPERIMENT_DEPTH_PLANES)
}

/// Formats a row of an aligned text table.
pub fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a named separator line.
pub fn print_header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_config_switches_resolution() {
        let fast = dataset_config(true);
        let full = dataset_config(false);
        assert!(fast.camera.intrinsics.width < full.camera.intrinsics.width);
        assert_eq!(full.camera.intrinsics.width, 240);
    }

    #[test]
    fn format_row_aligns() {
        let row = format_row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(row, "  a    bb");
    }

    #[test]
    fn experiment_config_uses_100_planes() {
        let seq = generate_sequence(SequenceKind::SliderClose, true);
        let cfg = experiment_config(&seq);
        assert_eq!(cfg.num_depth_planes, EXPERIMENT_DEPTH_PLANES);
    }
}
