//! On-chip buffer and external-memory models: the double-buffered BRAMs of
//! the projection modules, the DMA input path and the DDR3 DSI storage.

use crate::timing::{AcceleratorConfig, Cycles};

/// A single on-chip buffer (BRAM) with a fixed capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Bram {
    name: String,
    capacity_bytes: usize,
    used_bytes: usize,
}

impl Bram {
    /// Creates a buffer of the given capacity.
    pub fn new(name: impl Into<String>, capacity_bytes: usize) -> Self {
        Self {
            name: name.into(),
            capacity_bytes,
            used_bytes: 0,
        }
    }

    /// The buffer's name (e.g. `Buf_E`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Stores `bytes` into the buffer.
    ///
    /// Returns `false` (and stores nothing) when the write would overflow the
    /// capacity — the controller must split the transfer.
    pub fn fill(&mut self, bytes: usize) -> bool {
        if self.used_bytes + bytes > self.capacity_bytes {
            return false;
        }
        self.used_bytes += bytes;
        true
    }

    /// Empties the buffer.
    pub fn clear(&mut self) {
        self.used_bytes = 0;
    }

    /// Fraction of the capacity in use.
    pub fn occupancy(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        self.used_bytes as f64 / self.capacity_bytes as f64
    }
}

/// A ping-pong pair of identical BRAMs.
///
/// While the datapath consumes one bank, the DMA fills the other; the banks
/// are swapped at frame boundaries under control of the module FSMs. This is
/// the mechanism that lets Eventor overlap data transfer with processing.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleBuffer {
    banks: [Bram; 2],
    active: usize,
    swaps: u64,
}

impl DoubleBuffer {
    /// Creates a double buffer of two banks with the given per-bank capacity.
    pub fn new(name: &str, capacity_bytes: usize) -> Self {
        Self {
            banks: [
                Bram::new(format!("{name}[0]"), capacity_bytes),
                Bram::new(format!("{name}[1]"), capacity_bytes),
            ],
            active: 0,
            swaps: 0,
        }
    }

    /// The bank currently being consumed by the datapath.
    pub fn active_bank(&self) -> &Bram {
        &self.banks[self.active]
    }

    /// The bank currently being filled by the DMA.
    pub fn fill_bank(&mut self) -> &mut Bram {
        &mut self.banks[1 - self.active]
    }

    /// Swaps the banks (processing moves to the freshly filled bank, the old
    /// active bank is cleared for the next transfer).
    pub fn swap(&mut self) {
        self.banks[self.active].clear();
        self.active = 1 - self.active;
        self.swaps += 1;
    }

    /// Number of swaps performed.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Total BRAM bytes of both banks.
    pub fn total_bytes(&self) -> usize {
        self.banks[0].capacity_bytes() + self.banks[1].capacity_bytes()
    }
}

/// The DMA input path from DRAM into `Buf_E` / `Buf_P` / `Buf_H`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DmaModel;

impl DmaModel {
    /// Cycles needed to transfer one event frame's input data
    /// (packed event coordinates plus the per-frame parameters).
    pub fn frame_transfer_cycles(config: &AcceleratorConfig) -> Cycles {
        // 4 bytes per event (two packed Q9.7 coordinates), the 3x3 homography
        // and 3 Q11.21 coefficients per depth plane.
        let event_bytes = config.events_per_frame * 4;
        let param_bytes = 9 * 4 + config.num_depth_planes * 3 * 4;
        let payload = (event_bytes + param_bytes) as f64;
        config.dma_setup_cycles + (payload / config.dma_bytes_per_cycle).ceil() as Cycles
    }
}

/// The DSI image stored in external DDR3 memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramDsiModel;

impl DramDsiModel {
    /// Size of the DSI score array in bytes for 16-bit scores.
    pub fn dsi_bytes(config: &AcceleratorConfig) -> usize {
        config.sensor_width * config.sensor_height * config.num_depth_planes * 2
    }

    /// Cycles the Vote Execute Unit needs to apply all votes of one frame
    /// (read-modify-write of 16-bit scores over the AXI-HP ports).
    pub fn vote_cycles(config: &AcceleratorConfig) -> Cycles {
        (config.votes_per_frame() as f64 / config.votes_per_cycle()).ceil() as Cycles
    }

    /// Cycles needed to reset (zero) the whole DSI when a new key frame is
    /// selected, limited by DRAM write bandwidth.
    pub fn reset_cycles(config: &AcceleratorConfig) -> Cycles {
        let bytes = Self::dsi_bytes(config) as f64;
        let bw_bytes_per_cycle = config.dram_peak_bandwidth() * config.dram_efficiency * 2.0
            / config.fabric_clock.frequency_hz;
        (bytes / bw_bytes_per_cycle).ceil() as Cycles
    }
}

/// The full on-chip buffer inventory of the Eventor prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferInventory {
    /// Event buffer `Buf_E` (packed input coordinates).
    pub buf_e: DoubleBuffer,
    /// Intermediate buffer `Buf_I` (canonical projections), one per `PE_Zi`.
    pub buf_i: Vec<DoubleBuffer>,
    /// Proportional-coefficient buffer `Buf_P`.
    pub buf_p: DoubleBuffer,
    /// Vote-address buffer `Buf_V`.
    pub buf_v: DoubleBuffer,
}

impl BufferInventory {
    /// Builds the buffer inventory for a configuration.
    pub fn new(config: &AcceleratorConfig) -> Self {
        // Bank capacities are rounded up to whole BRAM18 primitives (2 KB).
        let granule = 2 * 1024;
        let event_bytes = (config.events_per_frame * 4).next_multiple_of(granule);
        let canonical_bytes = (config.events_per_frame * 4).next_multiple_of(granule);
        let phi_bytes = (config.num_depth_planes * 3 * 4).next_multiple_of(granule);
        // Vote addresses are produced in batches; the buffer holds one batch
        // of per-plane addresses for a block of events.
        let vote_batch_bytes = 16 * 1024;
        Self {
            buf_e: DoubleBuffer::new("Buf_E", event_bytes),
            buf_i: (0..config.num_pe_zi)
                .map(|i| DoubleBuffer::new(&format!("Buf_I{i}"), canonical_bytes))
                .collect(),
            buf_p: DoubleBuffer::new("Buf_P", phi_bytes),
            buf_v: DoubleBuffer::new("Buf_V", vote_batch_bytes),
        }
    }

    /// Total BRAM bytes used by all buffers.
    pub fn total_bram_bytes(&self) -> usize {
        self.buf_e.total_bytes()
            + self
                .buf_i
                .iter()
                .map(DoubleBuffer::total_bytes)
                .sum::<usize>()
            + self.buf_p.total_bytes()
            + self.buf_v.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_fill_and_overflow() {
        let mut b = Bram::new("Buf_E", 16);
        assert!(b.fill(10));
        assert!(!b.fill(10), "overflow must be rejected");
        assert_eq!(b.used_bytes(), 10);
        assert!((b.occupancy() - 10.0 / 16.0).abs() < 1e-12);
        b.clear();
        assert_eq!(b.used_bytes(), 0);
        assert_eq!(b.name(), "Buf_E");
    }

    #[test]
    fn double_buffer_swap_semantics() {
        let mut db = DoubleBuffer::new("Buf_E", 64);
        assert!(db.fill_bank().fill(32));
        assert_eq!(db.active_bank().used_bytes(), 0);
        db.swap();
        assert_eq!(db.active_bank().used_bytes(), 32);
        assert_eq!(db.swaps(), 1);
        assert_eq!(db.total_bytes(), 128);
    }

    #[test]
    fn dma_transfer_scales_with_frame_size() {
        let base = AcceleratorConfig::default();
        let small = AcceleratorConfig::default().with_events_per_frame(256);
        assert!(DmaModel::frame_transfer_cycles(&base) > DmaModel::frame_transfer_cycles(&small));
        assert!(DmaModel::frame_transfer_cycles(&small) > base.dma_setup_cycles);
    }

    #[test]
    fn dsi_footprint_matches_quantized_size() {
        let config = AcceleratorConfig::default();
        // 240 x 180 x 100 voxels x 2 bytes = 8.64 MB.
        assert_eq!(DramDsiModel::dsi_bytes(&config), 240 * 180 * 100 * 2);
        assert!(DramDsiModel::vote_cycles(&config) > 0);
        assert!(DramDsiModel::reset_cycles(&config) > 0);
    }

    #[test]
    fn vote_cycles_scale_inversely_with_efficiency() {
        let fast = AcceleratorConfig::default();
        let slow = AcceleratorConfig {
            dram_efficiency: fast.dram_efficiency / 2.0,
            ..fast.clone()
        };
        let c_fast = DramDsiModel::vote_cycles(&fast);
        let c_slow = DramDsiModel::vote_cycles(&slow);
        assert!(c_slow > c_fast);
        assert!((c_slow as f64 / c_fast as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn buffer_inventory_counts_pe_zi_buffers() {
        let two = BufferInventory::new(&AcceleratorConfig::default());
        let four = BufferInventory::new(&AcceleratorConfig::default().with_pe_zi(4));
        assert_eq!(two.buf_i.len(), 2);
        assert_eq!(four.buf_i.len(), 4);
        assert!(four.total_bram_bytes() > two.total_bram_bytes());
        // The prototype's buffers fit comfortably in the 64 KB reported in Table 2.
        assert!(two.total_bram_bytes() <= 64 * 1024);
    }
}
