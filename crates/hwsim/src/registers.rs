//! The memory-mapped control/status register file through which the ARM host
//! drives the accelerator.
//!
//! The paper's description is operational ("ARM configures DMA to transfer
//! input event coordinates and parameters to input buffers, then sends
//! instructions to start the computational modules"); this module gives that
//! interface a concrete register map so the driver in `eventor-core` and the
//! device model in [`crate::device`] can exchange commands the same way the
//! PS and PL of the prototype do over an AXI-Lite slave port.

use std::fmt;

/// Word offsets of the accelerator's AXI-Lite register map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Register {
    /// Control register (start, DSI reset, soft reset, interrupt enable).
    Control = 0,
    /// Status register (busy, done, error, buffer-ready flags).
    Status = 1,
    /// Frame kind of the next frame: 0 = normal, 1 = key.
    FrameKind = 2,
    /// Number of events in the staged frame.
    NumEvents = 3,
    /// Number of DSI depth planes.
    NumPlanes = 4,
    /// Sensor width in pixels.
    SensorWidth = 5,
    /// Sensor height in pixels.
    SensorHeight = 6,
    /// Base address of the DSI region in DRAM (word address).
    DsiBase = 7,
    /// Votes applied during the last frame (read-only result).
    VotesApplied = 8,
    /// Events dropped by the projection-missing judgement (read-only result).
    EventsDropped = 9,
    /// Low 32 bits of the cycle count of the last frame (read-only result).
    CyclesLow = 10,
    /// High 32 bits of the cycle count of the last frame (read-only result).
    CyclesHigh = 11,
    /// Interrupt status (write 1 to clear).
    InterruptStatus = 12,
}

/// Number of 32-bit registers in the map.
pub const REGISTER_COUNT: usize = 16;

/// Control-register bits.
pub mod ctrl {
    /// Start processing the staged frame.
    pub const START: u32 = 1 << 0;
    /// Reset (zero) the DSI region before processing — set for key frames.
    pub const RESET_DSI: u32 = 1 << 1;
    /// Soft-reset the datapath and clear all result registers.
    pub const SOFT_RESET: u32 = 1 << 2;
    /// Enable the frame-done interrupt.
    pub const IRQ_ENABLE: u32 = 1 << 3;
}

/// Status-register bits.
pub mod status {
    /// The datapath is processing a frame.
    pub const BUSY: u32 = 1 << 0;
    /// The last started frame has completed.
    pub const DONE: u32 = 1 << 1;
    /// The staged configuration was rejected (e.g. zero events).
    pub const ERROR: u32 = 1 << 2;
    /// `Buf_E` has a free bank and can accept the next DMA chain.
    pub const BUF_E_READY: u32 = 1 << 3;
    /// `Buf_I` has a free bank (canonical module may run ahead).
    pub const BUF_I_READY: u32 = 1 << 4;
}

/// The register file of the accelerator's AXI-Lite slave interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    words: [u32; REGISTER_COUNT],
    writes: u64,
    reads: u64,
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterFile {
    /// Creates a register file in its reset state (`Buf_E`/`Buf_I` ready).
    pub fn new() -> Self {
        let mut rf = Self {
            words: [0; REGISTER_COUNT],
            writes: 0,
            reads: 0,
        };
        rf.words[Register::Status as usize] = status::BUF_E_READY | status::BUF_I_READY;
        rf
    }

    /// Reads a register.
    pub fn read(&mut self, register: Register) -> u32 {
        self.reads += 1;
        self.words[register as usize]
    }

    /// Reads a register without counting the access (model-internal view).
    pub fn peek(&self, register: Register) -> u32 {
        self.words[register as usize]
    }

    /// Writes a register.
    pub fn write(&mut self, register: Register, value: u32) {
        self.writes += 1;
        self.words[register as usize] = value;
    }

    /// Sets the given status bits.
    pub fn set_status(&mut self, bits: u32) {
        self.words[Register::Status as usize] |= bits;
    }

    /// Clears the given status bits.
    pub fn clear_status(&mut self, bits: u32) {
        self.words[Register::Status as usize] &= !bits;
    }

    /// Whether all the given status bits are set.
    pub fn status_is(&self, bits: u32) -> bool {
        self.words[Register::Status as usize] & bits == bits
    }

    /// Stores the 64-bit cycle count of the last frame in the result
    /// registers.
    pub fn set_cycle_result(&mut self, cycles: u64) {
        self.words[Register::CyclesLow as usize] = cycles as u32;
        self.words[Register::CyclesHigh as usize] = (cycles >> 32) as u32;
    }

    /// Reads back the 64-bit cycle count of the last frame.
    pub fn cycle_result(&self) -> u64 {
        (self.words[Register::CyclesHigh as usize] as u64) << 32
            | self.words[Register::CyclesLow as usize] as u64
    }

    /// Number of host register accesses (reads + writes) so far.
    pub fn host_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Resets every register to its power-on value.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl fmt::Display for RegisterFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CTRL   = {:#010x}",
            self.words[Register::Control as usize]
        )?;
        writeln!(
            f,
            "STATUS = {:#010x}",
            self.words[Register::Status as usize]
        )?;
        writeln!(f, "EVENTS = {}", self.words[Register::NumEvents as usize])?;
        writeln!(f, "PLANES = {}", self.words[Register::NumPlanes as usize])?;
        write!(f, "CYCLES = {}", self.cycle_result())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_reports_ready_buffers() {
        let rf = RegisterFile::new();
        assert!(rf.status_is(status::BUF_E_READY));
        assert!(rf.status_is(status::BUF_I_READY));
        assert!(!rf.status_is(status::BUSY));
        assert_eq!(rf.host_accesses(), 0);
    }

    #[test]
    fn read_write_round_trip() {
        let mut rf = RegisterFile::new();
        rf.write(Register::NumEvents, 1024);
        rf.write(Register::NumPlanes, 100);
        assert_eq!(rf.read(Register::NumEvents), 1024);
        assert_eq!(rf.read(Register::NumPlanes), 100);
        assert_eq!(rf.host_accesses(), 4);
    }

    #[test]
    fn status_bit_manipulation() {
        let mut rf = RegisterFile::new();
        rf.set_status(status::BUSY);
        assert!(rf.status_is(status::BUSY));
        rf.clear_status(status::BUSY);
        rf.set_status(status::DONE);
        assert!(!rf.status_is(status::BUSY));
        assert!(rf.status_is(status::DONE));
        assert!(!rf.status_is(status::BUSY | status::DONE));
    }

    #[test]
    fn cycle_result_spans_two_registers() {
        let mut rf = RegisterFile::new();
        let cycles = 0x1_2345_6789_u64;
        rf.set_cycle_result(cycles);
        assert_eq!(rf.cycle_result(), cycles);
        assert_eq!(rf.peek(Register::CyclesHigh), 1);
        assert_eq!(rf.peek(Register::CyclesLow), 0x2345_6789);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut rf = RegisterFile::new();
        rf.write(Register::Control, ctrl::START | ctrl::RESET_DSI);
        rf.set_status(status::ERROR);
        rf.reset();
        assert_eq!(rf.peek(Register::Control), 0);
        assert!(!rf.status_is(status::ERROR));
        assert!(rf.status_is(status::BUF_E_READY));
    }

    #[test]
    fn display_includes_key_registers() {
        let mut rf = RegisterFile::new();
        rf.write(Register::NumEvents, 7);
        rf.set_cycle_result(99);
        let s = format!("{rf}");
        assert!(s.contains("EVENTS = 7"));
        assert!(s.contains("CYCLES = 99"));
    }
}
