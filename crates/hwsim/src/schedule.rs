//! Frame-level pipeline schedule of the accelerator (Fig. 6 of the paper)
//! and the resulting performance figures (Table 3, Eventor column).
//!
//! For a **normal** frame the Canonical Projection Module runs concurrently
//! with the Proportional Projection Module working on the previous frame's
//! canonical output, so the per-frame latency is the Proportional Projection
//! Module's time alone (`𝒫{Z0}` is hidden). For a **key** frame the DSI is
//! reset and the pipeline drains: the canonical projection of the key frame
//! cannot be overlapped, so its latency adds to the frame time.

use crate::memory::DmaModel;
use crate::pe::{proportional_module_cycles, PeZ0};
use crate::timing::{AcceleratorConfig, Cycles};

/// Frame type within the pipeline schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A regular event frame: `𝒫{Z0}` is overlapped with the previous frame.
    Normal,
    /// The first frame after a new key reference view was selected.
    Key,
}

/// Latency breakdown of a single event frame on the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameTiming {
    /// Cycles spent in the Canonical Projection Module (`𝒫{Z0}`).
    pub canonical_cycles: Cycles,
    /// Cycles spent in the Proportional Projection Module (`𝒫{Z0;Zi}` + `ℛ`).
    pub proportional_cycles: Cycles,
    /// Cycles of DMA input transfer that are *not* hidden by double
    /// buffering (zero when double buffering is enabled).
    pub exposed_dma_cycles: Cycles,
    /// Total frame latency in cycles as seen by the pipeline.
    pub total_cycles: Cycles,
}

/// Computes the latency of one frame of the given kind.
pub fn frame_timing(config: &AcceleratorConfig, kind: FrameKind) -> FrameTiming {
    let canonical = PeZ0::frame_cycles(config);
    let proportional = proportional_module_cycles(config);
    let dma = DmaModel::frame_transfer_cycles(config);
    let exposed_dma = if config.double_buffering { 0 } else { dma };
    let total = match kind {
        // P{Z0} of frame N overlaps with P{Z0;Zi}+R of frame N-1 (and P{Z0}
        // is shorter), so only the proportional module time is exposed.
        FrameKind::Normal => proportional + exposed_dma,
        // A key frame flushes the pipeline: the canonical projection runs
        // first, then the proportional module.
        FrameKind::Key => canonical + proportional + exposed_dma,
    };
    FrameTiming {
        canonical_cycles: canonical,
        proportional_cycles: proportional,
        exposed_dma_cycles: exposed_dma,
        total_cycles: total,
    }
}

/// The accelerator-side performance summary reported in Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorPerformance {
    /// `𝒫{Z0}` runtime per event frame, microseconds.
    pub canonical_us: f64,
    /// `𝒫{Z0;Zi}` + `ℛ` runtime per event frame, microseconds.
    pub proportional_us: f64,
    /// Total runtime per normal event frame, microseconds.
    pub normal_frame_us: f64,
    /// Total runtime per key event frame, microseconds.
    pub key_frame_us: f64,
    /// Event processing rate for normal frames, events per second.
    pub event_rate_normal: f64,
    /// Event processing rate for key frames, events per second.
    pub event_rate_key: f64,
}

/// Computes the Table 3 performance summary for a configuration.
pub fn performance(config: &AcceleratorConfig) -> AcceleratorPerformance {
    let clk = config.fabric_clock;
    let normal = frame_timing(config, FrameKind::Normal);
    let key = frame_timing(config, FrameKind::Key);
    let events = config.events_per_frame as f64;
    let normal_us = clk.cycles_to_us(normal.total_cycles);
    let key_us = clk.cycles_to_us(key.total_cycles);
    AcceleratorPerformance {
        canonical_us: clk.cycles_to_us(normal.canonical_cycles),
        proportional_us: clk.cycles_to_us(normal.proportional_cycles),
        normal_frame_us: normal_us,
        key_frame_us: key_us,
        event_rate_normal: events / (normal_us * 1e-6),
        event_rate_key: events / (key_us * 1e-6),
    }
}

/// Total accelerator busy time for a whole sequence of frames, in seconds.
///
/// `normal_frames` and `key_frames` are the counts of each frame kind
/// (every key-frame switch turns exactly one frame into a key frame).
pub fn sequence_runtime_seconds(
    config: &AcceleratorConfig,
    normal_frames: u64,
    key_frames: u64,
) -> f64 {
    let clk = config.fabric_clock;
    let normal = frame_timing(config, FrameKind::Normal).total_cycles;
    let key = frame_timing(config, FrameKind::Key).total_cycles;
    clk.cycles_to_seconds(normal * normal_frames + key * key_frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_is_reproduced() {
        let perf = performance(&AcceleratorConfig::default());
        // Paper: 8.24 us / 551.58 us / 551.58 us / 559.82 us, 1.86 / 1.83 Meps.
        assert!(
            (perf.canonical_us - 8.24).abs() < 0.1,
            "{}",
            perf.canonical_us
        );
        assert!(
            (perf.proportional_us - 551.58).abs() < 15.0,
            "{}",
            perf.proportional_us
        );
        assert!((perf.normal_frame_us - perf.proportional_us).abs() < 1e-9);
        assert!((perf.key_frame_us - (perf.normal_frame_us + perf.canonical_us)).abs() < 1e-9);
        assert!(
            (perf.event_rate_normal / 1e6 - 1.86).abs() < 0.06,
            "{}",
            perf.event_rate_normal
        );
        assert!(
            (perf.event_rate_key / 1e6 - 1.83).abs() < 0.06,
            "{}",
            perf.event_rate_key
        );
        assert!(perf.event_rate_normal > perf.event_rate_key);
    }

    #[test]
    fn key_frames_are_slower_than_normal_frames() {
        let config = AcceleratorConfig::default();
        let normal = frame_timing(&config, FrameKind::Normal);
        let key = frame_timing(&config, FrameKind::Key);
        assert!(key.total_cycles > normal.total_cycles);
        assert_eq!(
            key.total_cycles - normal.total_cycles,
            normal.canonical_cycles
        );
    }

    #[test]
    fn disabling_double_buffering_exposes_dma_time() {
        let with = AcceleratorConfig::default();
        let without = AcceleratorConfig::default().with_double_buffering(false);
        let t_with = frame_timing(&with, FrameKind::Normal);
        let t_without = frame_timing(&without, FrameKind::Normal);
        assert_eq!(t_with.exposed_dma_cycles, 0);
        assert!(t_without.exposed_dma_cycles > 0);
        assert!(t_without.total_cycles > t_with.total_cycles);
    }

    #[test]
    fn sequence_runtime_accumulates_frames() {
        let config = AcceleratorConfig::default();
        let t = sequence_runtime_seconds(&config, 100, 5);
        let normal_s = config
            .fabric_clock
            .cycles_to_seconds(frame_timing(&config, FrameKind::Normal).total_cycles);
        assert!(t > 100.0 * normal_s);
        assert!(t < 106.0 * normal_s);
        assert_eq!(sequence_runtime_seconds(&config, 0, 0), 0.0);
    }

    #[test]
    fn event_rate_improves_with_fewer_planes() {
        let full = performance(&AcceleratorConfig::default());
        let half = performance(&AcceleratorConfig::default().with_depth_planes(50));
        assert!(half.event_rate_normal > full.event_rate_normal);
    }
}
