//! Activity-based energy model: energy per frame derived from the *actual*
//! work the functional device performed, rather than from average power
//! alone.
//!
//! The static [`crate::PowerModel`] reproduces the Table 3 power row (1.86 W
//! for the prototype). This module complements it with a bottom-up view:
//! per-operation energies for the `PE_Z0` MACs, the per-plane transfers of
//! the `PE_Zi` array, the DSI read-modify-write traffic, the on-chip buffer
//! accesses and the DMA input stream, plus the platform's static power over
//! the frame latency. Fed with a [`FrameExecution`] from the device model it
//! yields an energy breakdown whose implied average power agrees with the
//! calibrated static model on paper-scale frames, and which additionally
//! shows *where* the energy goes and how it shifts when events are dropped,
//! planes are reduced or frames shrink.

use crate::device::FrameExecution;
use crate::timing::AcceleratorConfig;

/// Per-operation energy constants of the activity model, in picojoules, plus
/// the platform's static power.
///
/// The defaults are calibrated so that a full 1024-event, 100-plane frame
/// (102 400 votes, 551.58 µs) lands at the paper's 1.86 W average power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityEnergyModel {
    /// Energy of one canonical projection (3×3 MAC + normalization) in `PE_Z0`.
    pub pj_per_canonical_projection: f64,
    /// Energy of one plane transfer (scalar MAC + nearest-voxel find + vote
    /// address generation) in a `PE_Zi`.
    pub pj_per_plane_transfer: f64,
    /// Energy per byte of DSI read-modify-write traffic at the DDR3 interface.
    pub pj_per_dram_byte: f64,
    /// Energy per on-chip buffer (BRAM) access.
    pub pj_per_bram_access: f64,
    /// Energy per byte streamed in by the DMA engine.
    pub pj_per_dma_byte: f64,
    /// Static platform power (PS, PL static, DRAM background), watts.
    pub static_power_w: f64,
}

impl Default for ActivityEnergyModel {
    fn default() -> Self {
        Self {
            pj_per_canonical_projection: 5_000.0,
            pj_per_plane_transfer: 1_000.0,
            pj_per_dram_byte: 200.0,
            pj_per_bram_access: 100.0,
            pj_per_dma_byte: 50.0,
            static_power_w: 1.48,
        }
    }
}

/// Energy breakdown of one frame (or an accumulated set of frames), joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Canonical-projection (`PE_Z0`) energy.
    pub canonical_j: f64,
    /// Proportional-projection / vote-generation (`PE_Zi` array) energy.
    pub proportional_j: f64,
    /// DSI read-modify-write energy at the DRAM interface.
    pub vote_dram_j: f64,
    /// On-chip buffer access energy.
    pub bram_j: f64,
    /// DMA input-stream energy.
    pub dma_j: f64,
    /// Static platform energy over the frame latency.
    pub static_j: f64,
    /// Frame latency the static share was integrated over, seconds.
    pub seconds: f64,
    /// Events that entered the frame(s).
    pub events: u64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.canonical_j
            + self.proportional_j
            + self.vote_dram_j
            + self.bram_j
            + self.dma_j
            + self.static_j
    }

    /// Dynamic (activity-proportional) energy in joules.
    pub fn dynamic_j(&self) -> f64 {
        self.total_j() - self.static_j
    }

    /// Implied average power over the frame latency, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.total_j() / self.seconds
    }

    /// Energy per event in nanojoules.
    pub fn nj_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.total_j() * 1e9 / self.events as f64
    }

    /// Accumulates another breakdown (for whole-sequence totals).
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.canonical_j += other.canonical_j;
        self.proportional_j += other.proportional_j;
        self.vote_dram_j += other.vote_dram_j;
        self.bram_j += other.bram_j;
        self.dma_j += other.dma_j;
        self.static_j += other.static_j;
        self.seconds += other.seconds;
        self.events += other.events;
    }
}

impl ActivityEnergyModel {
    /// Computes the energy breakdown of one executed frame.
    pub fn frame_energy(
        &self,
        execution: &FrameExecution,
        config: &AcceleratorConfig,
    ) -> EnergyBreakdown {
        let pj = 1e-12;
        let surviving = execution.events_in - execution.events_dropped;
        let transfers = execution.votes_applied + execution.transfers_missed;
        let seconds = config
            .fabric_clock
            .cycles_to_seconds(execution.total_cycles);

        // Input payload: packed events, per-plane phi and the homography.
        let dma_bytes =
            (execution.events_in as usize * 4 + config.num_depth_planes * 12 + 36) as f64;
        // Buffer traffic: each event word is written and read once in Buf_E,
        // each surviving canonical projection is written and read once in
        // Buf_I, each vote address is written and read once in Buf_V.
        let bram_accesses = 2.0 * execution.events_in as f64
            + 2.0 * surviving as f64
            + 2.0 * execution.votes_applied as f64;

        EnergyBreakdown {
            canonical_j: self.pj_per_canonical_projection * execution.events_in as f64 * pj,
            proportional_j: self.pj_per_plane_transfer * transfers as f64 * pj,
            vote_dram_j: self.pj_per_dram_byte
                * (execution.votes_applied as f64 * config.bytes_per_vote as f64)
                * pj,
            bram_j: self.pj_per_bram_access * bram_accesses * pj,
            dma_j: self.pj_per_dma_byte * dma_bytes * pj,
            static_j: self.static_power_w * seconds,
            seconds,
            events: execution.events_in,
        }
    }

    /// Accumulates the energy of a sequence of executed frames.
    pub fn sequence_energy(
        &self,
        executions: &[FrameExecution],
        config: &AcceleratorConfig,
    ) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for e in executions {
            total.accumulate(&self.frame_energy(e, config));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::{HomographyRegisters, PhiEntry};
    use crate::device::{EventorDevice, FrameJob};
    use crate::schedule::FrameKind;
    use eventor_fixed::PackedCoord;

    fn paper_scale_execution() -> (FrameExecution, AcceleratorConfig) {
        let config = AcceleratorConfig::default();
        let mut device = EventorDevice::new(config.clone());
        let identity =
            HomographyRegisters::from_matrix(&[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        let phi = PhiEntry::from_f64(1.0, 0.0, 0.0).raw_words();
        let job = FrameJob {
            event_words: (0..1024)
                .map(|i| PackedCoord::from_f64((i % 240) as f64, (i % 180) as f64).to_word())
                .collect(),
            homography_words: identity.raw_words(),
            phi_words: vec![phi; 100],
            kind: FrameKind::Normal,
        };
        (device.run_frame(job).expect("frame accepted"), config)
    }

    #[test]
    fn paper_scale_frame_average_power_matches_static_model() {
        let (exec, config) = paper_scale_execution();
        let breakdown = ActivityEnergyModel::default().frame_energy(&exec, &config);
        let power = breakdown.average_power_w();
        // The static model (Table 3) puts the prototype at 1.86 W; the
        // activity model must agree to within ~10 % on a full frame.
        assert!((power - 1.86).abs() < 0.2, "average power {power} W");
        assert!(breakdown.total_j() > 0.0);
        assert!(breakdown.dynamic_j() > 0.0);
        assert!(
            breakdown.static_j > breakdown.dynamic_j(),
            "static power dominates at 130 MHz"
        );
        // Roughly 1 µJ per event at ~1.86 W and ~1.86 Mev/s.
        let nj = breakdown.nj_per_event();
        assert!(nj > 500.0 && nj < 2000.0, "{nj} nJ per event");
    }

    #[test]
    fn vote_traffic_dominates_the_dynamic_energy() {
        let (exec, config) = paper_scale_execution();
        let b = ActivityEnergyModel::default().frame_energy(&exec, &config);
        assert!(b.proportional_j + b.vote_dram_j > b.canonical_j + b.dma_j);
        assert!(b.vote_dram_j > b.dma_j);
    }

    #[test]
    fn fewer_planes_reduce_dynamic_energy_proportionally() {
        let config_full = AcceleratorConfig::default();
        let config_half = AcceleratorConfig::default().with_depth_planes(50);
        let model = ActivityEnergyModel::default();

        let run = |config: &AcceleratorConfig| {
            let mut device = EventorDevice::new(config.clone());
            let identity = HomographyRegisters::from_matrix(&[
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]);
            let phi = PhiEntry::from_f64(1.0, 0.0, 0.0).raw_words();
            let job = FrameJob {
                event_words: (0..512)
                    .map(|i| PackedCoord::from_f64((i % 200) as f64, (i % 150) as f64).to_word())
                    .collect(),
                homography_words: identity.raw_words(),
                phi_words: vec![phi; config.num_depth_planes],
                kind: FrameKind::Normal,
            };
            device.run_frame(job).expect("frame accepted")
        };

        let full = model.frame_energy(&run(&config_full), &config_full);
        let half = model.frame_energy(&run(&config_half), &config_half);
        let ratio = half.dynamic_j() / full.dynamic_j();
        assert!(ratio > 0.4 && ratio < 0.65, "dynamic energy ratio {ratio}");
    }

    #[test]
    fn sequence_energy_accumulates_frames() {
        let (exec, config) = paper_scale_execution();
        let model = ActivityEnergyModel::default();
        let single = model.frame_energy(&exec, &config);
        let triple = model.sequence_energy(&[exec, exec, exec], &config);
        assert!((triple.total_j() - 3.0 * single.total_j()).abs() < 1e-12);
        assert_eq!(triple.events, 3 * single.events);
        assert!((triple.seconds - 3.0 * single.seconds).abs() < 1e-12);
        assert!((triple.average_power_w() - single.average_power_w()).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.total_j(), 0.0);
        assert_eq!(b.average_power_w(), 0.0);
        assert_eq!(b.nj_per_event(), 0.0);
    }
}
