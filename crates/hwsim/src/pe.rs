//! Processing-element timing models: `PE_Z0` (Canonical Projection Module)
//! and `PE_Zi` (Proportional Projection Module), plus the Vote Execute Unit.
//!
//! All units are fully pipelined with an initiation interval of one, so their
//! latency for a frame is `work_items + pipeline_overhead` cycles; the frame
//! schedule in [`crate::schedule`] composes them.

use crate::memory::DramDsiModel;
use crate::timing::{AcceleratorConfig, Cycles};

/// Timing model of `PE_Z0`: the matrix-vector MAC array plus normalization
/// divider that computes the canonical back-projection `𝒫{Z0}`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PeZ0;

impl PeZ0 {
    /// Cycles to process one event frame (one event per cycle when the
    /// pipeline is full).
    pub fn frame_cycles(config: &AcceleratorConfig) -> Cycles {
        config.events_per_frame as Cycles + config.pe_z0_pipeline_overhead
    }
}

/// Timing model of the array of `PE_Zi`: scalar MACs, nearest-voxel finder
/// and vote-address generator computing `𝒫{Z0;Zi}` and `𝒢`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PeZiArray;

impl PeZiArray {
    /// Cycles for the PE array to generate all vote addresses of one frame:
    /// each event must visit every depth plane, and the planes are divided
    /// evenly among the `PE_Zi`.
    pub fn frame_cycles(config: &AcceleratorConfig) -> Cycles {
        let planes_per_pe = config.num_depth_planes.div_ceil(config.num_pe_zi);
        (config.events_per_frame * planes_per_pe) as Cycles + config.pe_zi_pipeline_overhead
    }
}

/// Timing model of the Vote Execute Unit: DSI read-modify-write traffic over
/// the AXI-HP ports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VoteExecuteUnit;

impl VoteExecuteUnit {
    /// Cycles to apply all votes of one frame.
    pub fn frame_cycles(config: &AcceleratorConfig) -> Cycles {
        DramDsiModel::vote_cycles(config)
    }
}

/// Combined timing of the Proportional Projection Module for one frame: the
/// PE array and the Vote Execute Unit operate concurrently (addresses stream
/// through `Buf_V`), so the slower of the two dominates.
pub fn proportional_module_cycles(config: &AcceleratorConfig) -> Cycles {
    PeZiArray::frame_cycles(config).max(VoteExecuteUnit::frame_cycles(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::ClockDomain;

    #[test]
    fn pe_z0_latency_matches_paper() {
        // Table 3: P{Z0} takes 8.24 us per 1024-event frame on Eventor.
        let config = AcceleratorConfig::default();
        let us = ClockDomain::fabric_default().cycles_to_us(PeZ0::frame_cycles(&config));
        assert!((us - 8.24).abs() < 0.1, "P(Z0) latency {us} us");
    }

    #[test]
    fn proportional_module_latency_matches_paper() {
        // Table 3: P{Z0;Zi} + R takes 551.58 us per frame on Eventor.
        let config = AcceleratorConfig::default();
        let us = ClockDomain::fabric_default().cycles_to_us(proportional_module_cycles(&config));
        assert!((us - 551.58).abs() < 15.0, "P(Z0;Zi)+R latency {us} us");
    }

    #[test]
    fn vote_unit_is_the_bottleneck_in_default_config() {
        let config = AcceleratorConfig::default();
        assert!(VoteExecuteUnit::frame_cycles(&config) > PeZiArray::frame_cycles(&config));
    }

    #[test]
    fn more_pe_zi_reduces_address_generation_time() {
        let two = AcceleratorConfig::default();
        let four = AcceleratorConfig::default().with_pe_zi(4);
        assert!(PeZiArray::frame_cycles(&four) < PeZiArray::frame_cycles(&two));
        // But the overall proportional module time saturates once the vote
        // unit dominates.
        assert_eq!(
            proportional_module_cycles(&four),
            VoteExecuteUnit::frame_cycles(&four)
        );
    }

    #[test]
    fn single_pe_zi_makes_address_generation_dominate() {
        let one = AcceleratorConfig::default().with_pe_zi(1);
        assert!(PeZiArray::frame_cycles(&one) > VoteExecuteUnit::frame_cycles(&one));
        assert_eq!(
            proportional_module_cycles(&one),
            PeZiArray::frame_cycles(&one)
        );
    }

    #[test]
    fn fewer_planes_scale_both_units_down() {
        let full = AcceleratorConfig::default();
        let half = AcceleratorConfig::default().with_depth_planes(50);
        assert!(PeZiArray::frame_cycles(&half) < PeZiArray::frame_cycles(&full));
        assert!(VoteExecuteUnit::frame_cycles(&half) < VoteExecuteUnit::frame_cycles(&full));
    }
}
