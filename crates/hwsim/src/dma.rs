//! Descriptor-based DMA engine streaming event frames and per-frame
//! parameters from DRAM into the on-chip buffers.
//!
//! The ARM host prepares a small chain of descriptors per event frame — one
//! for the packed event coordinates going to `Buf_E`, one for the
//! proportional coefficients `φ` going to `Buf_P` and one for the homography
//! `H_{Z0}` going to the `Buf_H` register bank — then kicks the engine and
//! polls (or waits for the interrupt). The engine model charges a per-chain
//! setup cost plus payload time on the general-purpose AXI port and reports
//! the transfer time so the frame scheduler can decide whether it is hidden
//! behind processing (double buffering) or exposed.

use crate::axi::{AxiBurst, AxiPort};
use crate::timing::{AcceleratorConfig, Cycles};

/// Destination of a DMA descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaTarget {
    /// Packed event coordinates → event buffer `Buf_E`.
    BufE,
    /// Proportional back-projection coefficients `φ` → `Buf_P`.
    BufP,
    /// Homography `H_{Z0}` → the `Buf_H` register bank.
    BufH,
}

/// One DMA descriptor: a contiguous transfer from DRAM into an on-chip
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaDescriptor {
    /// Source byte address in DRAM.
    pub source_address: u64,
    /// Payload length in bytes.
    pub length_bytes: usize,
    /// On-chip destination.
    pub target: DmaTarget,
}

impl DmaDescriptor {
    /// Creates a descriptor.
    pub fn new(source_address: u64, length_bytes: usize, target: DmaTarget) -> Self {
        Self {
            source_address,
            length_bytes,
            target,
        }
    }
}

/// Accumulated DMA statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DmaStats {
    /// Descriptors executed.
    pub descriptors: u64,
    /// Descriptor chains executed (one per event frame).
    pub chains: u64,
    /// Total payload bytes transferred.
    pub bytes: u64,
    /// Total cycles spent transferring (setup + payload).
    pub busy_cycles: Cycles,
}

/// The DMA engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaEngine {
    port: AxiPort,
    setup_cycles: Cycles,
    max_burst_bytes: usize,
    stats: DmaStats,
}

impl DmaEngine {
    /// Creates a DMA engine with the platform defaults (AXI-GP path,
    /// 256-byte bursts).
    pub fn new(config: &AcceleratorConfig) -> Self {
        Self {
            port: AxiPort::gp_dma_default(),
            setup_cycles: config.dma_setup_cycles,
            max_burst_bytes: 256,
            stats: DmaStats::default(),
        }
    }

    /// Executes one descriptor, returning the cycles it took.
    pub fn execute(&mut self, descriptor: &DmaDescriptor) -> Cycles {
        let mut remaining = descriptor.length_bytes;
        let mut address = descriptor.source_address;
        let mut cycles: Cycles = 0;
        while remaining > 0 {
            let chunk = remaining.min(self.max_burst_bytes);
            // The DMA reads from DRAM and pushes into BRAM; only the DRAM side
            // crosses the AXI fabric.
            let beats = (chunk as u32).div_ceil(4);
            cycles += self.port.issue(AxiBurst::read(address, beats, 4));
            address += chunk as u64;
            remaining -= chunk;
        }
        self.stats.descriptors += 1;
        self.stats.bytes += descriptor.length_bytes as u64;
        self.stats.busy_cycles += cycles;
        cycles
    }

    /// Executes a chain of descriptors (one event frame's input set) and
    /// returns the total transfer time including the chain setup cost.
    pub fn execute_chain(&mut self, descriptors: &[DmaDescriptor]) -> Cycles {
        let mut cycles = self.setup_cycles;
        for d in descriptors {
            cycles += self.execute(d);
        }
        self.stats.chains += 1;
        self.stats.busy_cycles += self.setup_cycles;
        cycles
    }

    /// Builds the canonical per-frame descriptor chain for a configuration:
    /// packed events, per-plane `φ` coefficients and the homography.
    pub fn frame_descriptors(config: &AcceleratorConfig) -> Vec<DmaDescriptor> {
        let event_bytes = config.events_per_frame * 4;
        let phi_bytes = config.num_depth_planes * 3 * 4;
        let h_bytes = 9 * 4;
        vec![
            DmaDescriptor::new(0x0000_0000, event_bytes, DmaTarget::BufE),
            DmaDescriptor::new(0x0010_0000, phi_bytes, DmaTarget::BufP),
            DmaDescriptor::new(0x0020_0000, h_bytes, DmaTarget::BufH),
        ]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// The underlying AXI port (for traffic inspection).
    pub fn port(&self) -> &AxiPort {
        &self.port
    }

    /// Clears the statistics.
    pub fn clear_stats(&mut self) {
        self.stats = DmaStats::default();
        self.port.clear_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DmaModel;

    #[test]
    fn frame_chain_matches_analytic_model_within_burst_overhead() {
        let config = AcceleratorConfig::default();
        let mut dma = DmaEngine::new(&config);
        let chain = DmaEngine::frame_descriptors(&config);
        let cycles = dma.execute_chain(&chain);
        let analytic = DmaModel::frame_transfer_cycles(&config);
        // The transaction-level engine adds per-burst issue latency the
        // analytic model folds into its single setup constant, so allow a
        // modest margin.
        let ratio = cycles as f64 / analytic as f64;
        assert!(
            ratio > 0.8 && ratio < 2.0,
            "functional {cycles} vs analytic {analytic}"
        );
    }

    #[test]
    fn descriptor_counters_accumulate() {
        let config = AcceleratorConfig::default();
        let mut dma = DmaEngine::new(&config);
        let chain = DmaEngine::frame_descriptors(&config);
        dma.execute_chain(&chain);
        dma.execute_chain(&chain);
        let stats = dma.stats();
        assert_eq!(stats.chains, 2);
        assert_eq!(stats.descriptors, 6);
        let expected_bytes = 2 * (1024 * 4 + 100 * 3 * 4 + 36) as u64;
        assert_eq!(stats.bytes, expected_bytes);
        assert!(stats.busy_cycles > 0);
        assert_eq!(dma.port().stats().bytes_read, expected_bytes);
        dma.clear_stats();
        assert_eq!(dma.stats(), DmaStats::default());
    }

    #[test]
    fn large_transfers_split_into_bursts() {
        let config = AcceleratorConfig::default();
        let mut dma = DmaEngine::new(&config);
        dma.execute(&DmaDescriptor::new(0, 1024, DmaTarget::BufE));
        // 1024 bytes at 256-byte bursts = 4 read transactions.
        assert_eq!(dma.port().stats().read_transactions, 4);
    }

    #[test]
    fn frame_descriptors_cover_all_targets() {
        let chain = DmaEngine::frame_descriptors(&AcceleratorConfig::default());
        assert_eq!(chain.len(), 3);
        assert!(chain.iter().any(|d| d.target == DmaTarget::BufE));
        assert!(chain.iter().any(|d| d.target == DmaTarget::BufP));
        assert!(chain.iter().any(|d| d.target == DmaTarget::BufH));
        assert_eq!(chain[0].length_bytes, 4096);
    }
}
