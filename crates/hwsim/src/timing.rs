//! Clock domains and architectural timing parameters of the Eventor
//! accelerator model.

/// A number of fabric clock cycles.
pub type Cycles = u64;

/// A clock domain with a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    /// Frequency in hertz.
    pub frequency_hz: f64,
}

impl ClockDomain {
    /// The Eventor programmable-logic clock (130 MHz in the paper).
    pub fn fabric_default() -> Self {
        Self {
            frequency_hz: 130.0e6,
        }
    }

    /// The DDR3 memory clock (533 MHz in the paper).
    pub fn ddr_default() -> Self {
        Self {
            frequency_hz: 533.0e6,
        }
    }

    /// Creates a clock domain.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn new(frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0, "clock frequency must be positive");
        Self { frequency_hz }
    }

    /// Converts a cycle count in this domain to seconds.
    pub fn cycles_to_seconds(&self, cycles: Cycles) -> f64 {
        cycles as f64 / self.frequency_hz
    }

    /// Converts a cycle count in this domain to microseconds.
    pub fn cycles_to_us(&self, cycles: Cycles) -> f64 {
        self.cycles_to_seconds(cycles) * 1e6
    }

    /// Converts a duration in seconds to (rounded-up) cycles.
    pub fn seconds_to_cycles(&self, seconds: f64) -> Cycles {
        (seconds * self.frequency_hz).ceil() as Cycles
    }

    /// Clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        1e9 / self.frequency_hz
    }
}

/// Architectural configuration of the Eventor prototype.
///
/// The defaults reproduce the prototype evaluated in the paper: one `PE_Z0`,
/// two `PE_Zi`, 1024-event frames, 100 depth planes, a 130 MHz fabric clock
/// and a 32-bit DDR3-533 external memory reached through two AXI-HP ports.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Fabric (programmable logic) clock.
    pub fabric_clock: ClockDomain,
    /// DDR memory clock.
    pub ddr_clock: ClockDomain,
    /// Number of `PE_Zi` processing elements in the Proportional Projection
    /// Module.
    pub num_pe_zi: usize,
    /// Number of events per event frame.
    pub events_per_frame: usize,
    /// Number of DSI depth planes.
    pub num_depth_planes: usize,
    /// Sensor width in pixels (DSI width).
    pub sensor_width: usize,
    /// Sensor height in pixels (DSI height).
    pub sensor_height: usize,
    /// Pipeline fill/drain overhead of `PE_Z0`, in cycles per frame.
    pub pe_z0_pipeline_overhead: Cycles,
    /// Pipeline fill/drain plus control overhead of the Proportional
    /// Projection Module, in cycles per frame.
    pub pe_zi_pipeline_overhead: Cycles,
    /// Number of AXI-HP ports available to the Vote Execute Unit.
    pub axi_hp_ports: usize,
    /// Effective fraction of the theoretical DRAM bandwidth achieved by the
    /// Vote Execute Unit's read-modify-write traffic (random-ish accesses,
    /// bank conflicts, refresh). Calibrated against the paper's Table 3.
    pub dram_efficiency: f64,
    /// Bytes of DSI-score traffic per vote (16-bit score read + write).
    pub bytes_per_vote: usize,
    /// DDR data-bus width in bytes (32-bit on the XC7Z020 PS DDR controller).
    pub ddr_bus_bytes: usize,
    /// Whether the input buffers are double-buffered (ping-pong). Without
    /// double buffering the DMA transfer time is exposed in the frame
    /// latency instead of being overlapped.
    pub double_buffering: bool,
    /// DMA setup latency per frame, in fabric cycles.
    pub dma_setup_cycles: Cycles,
    /// Effective DMA streaming bandwidth from DRAM into `Buf_E`, bytes per
    /// fabric cycle.
    pub dma_bytes_per_cycle: f64,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self {
            fabric_clock: ClockDomain::fabric_default(),
            ddr_clock: ClockDomain::ddr_default(),
            num_pe_zi: 2,
            events_per_frame: 1024,
            num_depth_planes: 100,
            sensor_width: 240,
            sensor_height: 180,
            pe_z0_pipeline_overhead: 47,
            pe_zi_pipeline_overhead: 64,
            axi_hp_ports: 2,
            dram_efficiency: 0.175,
            bytes_per_vote: 4,
            ddr_bus_bytes: 4,
            double_buffering: true,
            dma_setup_cycles: 120,
            dma_bytes_per_cycle: 4.0,
        }
    }
}

impl AcceleratorConfig {
    /// Builder-style override of the number of `PE_Zi`.
    pub fn with_pe_zi(mut self, n: usize) -> Self {
        self.num_pe_zi = n.max(1);
        self
    }

    /// Builder-style override of the number of depth planes.
    pub fn with_depth_planes(mut self, n: usize) -> Self {
        self.num_depth_planes = n.max(2);
        self
    }

    /// Builder-style override of double buffering.
    pub fn with_double_buffering(mut self, enabled: bool) -> Self {
        self.double_buffering = enabled;
        self
    }

    /// Builder-style override of the frame size.
    pub fn with_events_per_frame(mut self, n: usize) -> Self {
        self.events_per_frame = n.max(1);
        self
    }

    /// Total DSI votes generated per full event frame (one per event per
    /// depth plane).
    pub fn votes_per_frame(&self) -> u64 {
        self.events_per_frame as u64 * self.num_depth_planes as u64
    }

    /// Peak DRAM bandwidth in bytes per second (DDR: two transfers per clock).
    pub fn dram_peak_bandwidth(&self) -> f64 {
        self.ddr_clock.frequency_hz * 2.0 * self.ddr_bus_bytes as f64
    }

    /// Effective vote throughput of the Vote Execute Unit, in votes per
    /// fabric cycle, limited by DRAM read-modify-write bandwidth across the
    /// available AXI-HP ports.
    pub fn votes_per_cycle(&self) -> f64 {
        let effective_bw = self.dram_peak_bandwidth()
            * self.dram_efficiency
            * (self.axi_hp_ports as f64 / 2.0).min(1.0);
        let votes_per_second = effective_bw / self.bytes_per_vote as f64;
        votes_per_second / self.fabric_clock.frequency_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_conversions() {
        let clk = ClockDomain::fabric_default();
        assert!((clk.cycles_to_us(130) - 1.0).abs() < 1e-9);
        assert_eq!(clk.seconds_to_cycles(1e-6), 130);
        assert!((clk.period_ns() - 7.6923).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn zero_frequency_panics() {
        let _ = ClockDomain::new(0.0);
    }

    #[test]
    fn default_matches_paper_prototype() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.num_pe_zi, 2);
        assert_eq!(c.events_per_frame, 1024);
        assert_eq!(c.num_depth_planes, 100);
        assert!((c.fabric_clock.frequency_hz - 130e6).abs() < 1.0);
        assert!((c.ddr_clock.frequency_hz - 533e6).abs() < 1.0);
        assert_eq!(c.votes_per_frame(), 102_400);
    }

    #[test]
    fn builders() {
        let c = AcceleratorConfig::default()
            .with_pe_zi(4)
            .with_depth_planes(50)
            .with_double_buffering(false)
            .with_events_per_frame(512);
        assert_eq!(c.num_pe_zi, 4);
        assert_eq!(c.num_depth_planes, 50);
        assert!(!c.double_buffering);
        assert_eq!(c.events_per_frame, 512);
        // Degenerate values are clamped.
        assert_eq!(AcceleratorConfig::default().with_pe_zi(0).num_pe_zi, 1);
    }

    #[test]
    fn vote_throughput_is_positive_and_bandwidth_limited() {
        let c = AcceleratorConfig::default();
        let vpc = c.votes_per_cycle();
        assert!(vpc > 0.5 && vpc < 4.0, "votes per cycle {vpc}");
        // Halving the DRAM efficiency halves the throughput.
        let slow = AcceleratorConfig {
            dram_efficiency: c.dram_efficiency / 2.0,
            ..c.clone()
        };
        assert!((slow.votes_per_cycle() - vpc / 2.0).abs() < 1e-9);
        // A single AXI port halves it as well.
        let one_port = AcceleratorConfig {
            axi_hp_ports: 1,
            ..c
        };
        assert!((one_port.votes_per_cycle() - vpc / 2.0).abs() < 1e-9);
    }
}
