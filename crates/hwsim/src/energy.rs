//! Power and energy model (the power row of Table 3 and the paper's headline
//! 24× energy-efficiency claim).
//!
//! The model splits the Zynq's power into the ARM processing-system (PS)
//! share and a programmable-logic (PL) share that scales with the resources
//! in use and the fabric clock. The constants are calibrated so that the
//! paper's prototype configuration lands at the reported 1.86 W; the Intel
//! i5-7300HQ baseline uses its 45 W TDP, as the paper does.

use crate::resources::ResourceReport;
use crate::timing::AcceleratorConfig;

/// Power consumption of the Intel i5-7300HQ CPU baseline, in watts (TDP, the
/// figure the paper uses).
pub const INTEL_I5_POWER_W: f64 = 45.0;

/// Parameters of the Zynq power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static + dynamic power of the ARM PS (CPU, DDR controller, on-chip
    /// interconnect), watts.
    pub ps_power_w: f64,
    /// Static power of the programmable logic, watts.
    pub pl_static_w: f64,
    /// Dynamic PL power per LUT at 100 MHz, watts.
    pub w_per_lut_100mhz: f64,
    /// Dynamic PL power per flip-flop at 100 MHz, watts.
    pub w_per_ff_100mhz: f64,
    /// Dynamic PL power per KB of active BRAM at 100 MHz, watts.
    pub w_per_bram_kb_100mhz: f64,
    /// DDR3 device + PHY power under the accelerator's traffic, watts.
    pub dram_power_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            ps_power_w: 1.10,
            pl_static_w: 0.12,
            w_per_lut_100mhz: 8.0e-6,
            w_per_ff_100mhz: 4.0e-6,
            w_per_bram_kb_100mhz: 1.0e-3,
            dram_power_w: 0.26,
        }
    }
}

impl PowerModel {
    /// Total accelerator power for a configuration and its resource usage,
    /// in watts.
    pub fn accelerator_power_w(
        &self,
        config: &AcceleratorConfig,
        resources: &ResourceReport,
    ) -> f64 {
        let clock_scale = config.fabric_clock.frequency_hz / 100.0e6;
        let pl_dynamic = clock_scale
            * (self.w_per_lut_100mhz * resources.total_luts() as f64
                + self.w_per_ff_100mhz * resources.total_flip_flops() as f64
                + self.w_per_bram_kb_100mhz * resources.total_bram_bytes() as f64 / 1024.0);
        self.ps_power_w + self.pl_static_w + self.dram_power_w + pl_dynamic
    }
}

/// Energy comparison between the CPU baseline and the accelerator on the same
/// workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyComparison {
    /// CPU runtime for the workload, seconds.
    pub cpu_seconds: f64,
    /// Accelerator runtime for the workload, seconds.
    pub accelerator_seconds: f64,
    /// CPU power, watts.
    pub cpu_power_w: f64,
    /// Accelerator power, watts.
    pub accelerator_power_w: f64,
}

impl EnergyComparison {
    /// CPU energy in joules.
    pub fn cpu_energy_j(&self) -> f64 {
        self.cpu_seconds * self.cpu_power_w
    }

    /// Accelerator energy in joules.
    pub fn accelerator_energy_j(&self) -> f64 {
        self.accelerator_seconds * self.accelerator_power_w
    }

    /// Energy-efficiency improvement factor (CPU energy / accelerator
    /// energy) — the paper's headline "24×" figure.
    pub fn efficiency_gain(&self) -> f64 {
        let acc = self.accelerator_energy_j();
        if acc <= 0.0 {
            return 0.0;
        }
        self.cpu_energy_j() / acc
    }

    /// Pure power-reduction factor (ignoring runtime differences).
    pub fn power_reduction(&self) -> f64 {
        if self.accelerator_power_w <= 0.0 {
            return 0.0;
        }
        self.cpu_power_w / self.accelerator_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::estimate_resources;

    #[test]
    fn prototype_power_matches_table3() {
        let config = AcceleratorConfig::default();
        let resources = estimate_resources(&config);
        let p = PowerModel::default().accelerator_power_w(&config, &resources);
        assert!((p - 1.86).abs() < 0.15, "accelerator power {p} W");
    }

    #[test]
    fn power_scales_with_resources() {
        let model = PowerModel::default();
        let small = AcceleratorConfig::default();
        let big = AcceleratorConfig::default().with_pe_zi(8);
        let p_small = model.accelerator_power_w(&small, &estimate_resources(&small));
        let p_big = model.accelerator_power_w(&big, &estimate_resources(&big));
        assert!(p_big > p_small);
    }

    #[test]
    fn energy_comparison_matches_paper_magnitude() {
        // Table 3: comparable runtimes, 45 W vs 1.86 W -> ~24x efficiency.
        let cmp = EnergyComparison {
            cpu_seconds: 581.95e-6,
            accelerator_seconds: 551.58e-6,
            cpu_power_w: INTEL_I5_POWER_W,
            accelerator_power_w: 1.86,
        };
        let gain = cmp.efficiency_gain();
        assert!(gain > 20.0 && gain < 30.0, "efficiency gain {gain}");
        assert!((cmp.power_reduction() - 24.19).abs() < 0.5);
        assert!(cmp.cpu_energy_j() > cmp.accelerator_energy_j());
    }

    #[test]
    fn degenerate_comparisons_are_safe() {
        let cmp = EnergyComparison {
            cpu_seconds: 1.0,
            accelerator_seconds: 0.0,
            cpu_power_w: 45.0,
            accelerator_power_w: 0.0,
        };
        assert_eq!(cmp.efficiency_gain(), 0.0);
        assert_eq!(cmp.power_reduction(), 0.0);
    }
}
