//! Behavioural model of the external DDR3 memory holding the DSI score
//! volume.
//!
//! The Eventor prototype keeps the whole disparity space image (DSI) in the
//! 1 GB DDR3 attached to the Zynq PS and reaches it from the programmable
//! logic through the AXI-HP ports. This module models that memory at the
//! *data* level: a flat array of 16-bit scores addressed exactly the way the
//! Vote Address Generator addresses it (`plane * W * H + y * W + x`), with
//! read/write/read-modify-write accounting so the transaction-level AXI and
//! energy models can be fed from real traffic instead of analytic estimates.

use crate::timing::AcceleratorConfig;

/// A linear DSI voxel address as produced by the Vote Address Generator.
pub type VoxelAddress = u64;

/// Access statistics of the DSI region in external memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Number of 16-bit score reads.
    pub score_reads: u64,
    /// Number of 16-bit score writes.
    pub score_writes: u64,
    /// Number of read-modify-write vote operations.
    pub vote_rmw_ops: u64,
    /// Number of votes that saturated the 16-bit score.
    pub saturated_votes: u64,
    /// Number of accesses that fell outside the DSI region (address faults).
    pub address_faults: u64,
    /// Number of full-volume resets.
    pub resets: u64,
}

impl DramStats {
    /// Total bytes moved across the memory interface by score traffic
    /// (2 bytes per read or write).
    pub fn score_bytes(&self) -> u64 {
        2 * (self.score_reads + self.score_writes)
    }
}

/// The DSI score volume stored in external DDR3 memory.
///
/// Scores are 16-bit unsigned integers (Table 1); votes are applied as
/// saturating read-modify-write operations, exactly what the Vote Execute
/// Unit performs over the AXI-HP ports.
///
/// # Examples
///
/// ```
/// use eventor_hwsim::DsiDram;
/// let mut dram = DsiDram::new(240, 180, 100);
/// let addr = dram.linear_address(10, 20, 5).unwrap();
/// dram.vote(addr);
/// dram.vote(addr);
/// assert_eq!(dram.score(10, 20, 5), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DsiDram {
    width: usize,
    height: usize,
    planes: usize,
    scores: Vec<u16>,
    stats: DramStats,
}

impl DsiDram {
    /// Allocates a zeroed DSI region of `width x height x planes` voxels.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (the hardware cannot address an empty
    /// volume).
    pub fn new(width: usize, height: usize, planes: usize) -> Self {
        assert!(
            width > 0 && height > 0 && planes > 0,
            "DSI dimensions must be positive"
        );
        Self {
            width,
            height,
            planes,
            scores: vec![0; width * height * planes],
            stats: DramStats::default(),
        }
    }

    /// Allocates the DSI region described by an accelerator configuration.
    pub fn for_config(config: &AcceleratorConfig) -> Self {
        Self::new(
            config.sensor_width,
            config.sensor_height,
            config.num_depth_planes,
        )
    }

    /// Volume width in voxels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Volume height in voxels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of depth planes.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Number of voxels in the volume.
    pub fn voxel_count(&self) -> usize {
        self.scores.len()
    }

    /// Bytes occupied by the score array (2 bytes per voxel).
    pub fn footprint_bytes(&self) -> usize {
        self.scores.len() * 2
    }

    /// Linear address of voxel `(x, y, plane)`, or `None` when the voxel is
    /// outside the volume.
    pub fn linear_address(&self, x: usize, y: usize, plane: usize) -> Option<VoxelAddress> {
        if x >= self.width || y >= self.height || plane >= self.planes {
            return None;
        }
        Some(((plane * self.height + y) * self.width + x) as VoxelAddress)
    }

    /// Reads the score stored at a linear address.
    ///
    /// Out-of-range addresses are counted as address faults and return `None`.
    pub fn read(&mut self, addr: VoxelAddress) -> Option<u16> {
        match self.scores.get(addr as usize) {
            Some(&s) => {
                self.stats.score_reads += 1;
                Some(s)
            }
            None => {
                self.stats.address_faults += 1;
                None
            }
        }
    }

    /// Writes a score to a linear address.
    ///
    /// Out-of-range addresses are counted as address faults and ignored.
    pub fn write(&mut self, addr: VoxelAddress, value: u16) -> bool {
        match self.scores.get_mut(addr as usize) {
            Some(s) => {
                *s = value;
                self.stats.score_writes += 1;
                true
            }
            None => {
                self.stats.address_faults += 1;
                false
            }
        }
    }

    /// Applies one vote to a linear address: the saturating read-modify-write
    /// the Vote Execute Unit performs.
    ///
    /// Returns the new score, or `None` for an address fault.
    pub fn vote(&mut self, addr: VoxelAddress) -> Option<u16> {
        let Some(slot) = self.scores.get_mut(addr as usize) else {
            self.stats.address_faults += 1;
            return None;
        };
        self.stats.score_reads += 1;
        self.stats.score_writes += 1;
        self.stats.vote_rmw_ops += 1;
        if *slot == u16::MAX {
            self.stats.saturated_votes += 1;
        } else {
            *slot += 1;
        }
        Some(*slot)
    }

    /// The score of voxel `(x, y, plane)` without touching the statistics
    /// (a debug/readback view, not a hardware access).
    pub fn score(&self, x: usize, y: usize, plane: usize) -> Option<u16> {
        let addr = self.linear_address(x, y, plane)?;
        self.scores.get(addr as usize).copied()
    }

    /// The raw score array in `plane`-major, then row-major order.
    pub fn scores(&self) -> &[u16] {
        &self.scores
    }

    /// The scores of one depth plane.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn plane_scores(&self, plane: usize) -> &[u16] {
        assert!(plane < self.planes, "plane {plane} out of range");
        let stride = self.width * self.height;
        &self.scores[plane * stride..(plane + 1) * stride]
    }

    /// Zeroes the whole volume (the DSI reset performed when a new key frame
    /// is selected).
    pub fn reset(&mut self) {
        self.scores.fill(0);
        self.stats.resets += 1;
    }

    /// Overwrites the whole score array without touching the statistics — the
    /// checkpoint-restore path, which re-images a snapshotted DSI into the
    /// memory model (a host-side DMA, not Vote Execute Unit traffic).
    ///
    /// # Panics
    ///
    /// Panics if `scores` does not cover the volume exactly.
    pub fn load_scores(&mut self, scores: &[u16]) {
        assert_eq!(
            scores.len(),
            self.scores.len(),
            "score image must cover the DSI region exactly"
        );
        self.scores.copy_from_slice(scores);
    }

    /// Sum of all scores (equals the number of applied votes as long as no
    /// voxel saturated).
    pub fn total_score(&self) -> u64 {
        self.scores.iter().map(|&s| s as u64).sum()
    }

    /// Largest score in the volume.
    pub fn max_score(&self) -> u16 {
        self.scores.iter().copied().max().unwrap_or(0)
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Clears the access statistics (the score contents are untouched).
    pub fn clear_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing_matches_vote_address_generator_layout() {
        let dram = DsiDram::new(240, 180, 100);
        assert_eq!(dram.linear_address(0, 0, 0), Some(0));
        assert_eq!(dram.linear_address(1, 0, 0), Some(1));
        assert_eq!(dram.linear_address(0, 1, 0), Some(240));
        assert_eq!(dram.linear_address(0, 0, 1), Some(240 * 180));
        assert_eq!(dram.linear_address(239, 179, 99), Some(240 * 180 * 100 - 1));
        assert_eq!(dram.linear_address(240, 0, 0), None);
        assert_eq!(dram.linear_address(0, 180, 0), None);
        assert_eq!(dram.linear_address(0, 0, 100), None);
    }

    #[test]
    fn footprint_matches_table1_dsi_quantization() {
        let dram = DsiDram::for_config(&AcceleratorConfig::default());
        // 240 x 180 x 100 voxels at 2 bytes each.
        assert_eq!(dram.footprint_bytes(), 8_640_000);
        assert_eq!(dram.voxel_count(), 4_320_000);
        assert_eq!(dram.width(), 240);
        assert_eq!(dram.height(), 180);
        assert_eq!(dram.planes(), 100);
    }

    #[test]
    fn votes_are_read_modify_write() {
        let mut dram = DsiDram::new(16, 16, 4);
        let addr = dram.linear_address(3, 5, 2).unwrap();
        assert_eq!(dram.vote(addr), Some(1));
        assert_eq!(dram.vote(addr), Some(2));
        let stats = dram.stats();
        assert_eq!(stats.vote_rmw_ops, 2);
        assert_eq!(stats.score_reads, 2);
        assert_eq!(stats.score_writes, 2);
        assert_eq!(stats.score_bytes(), 8);
        assert_eq!(dram.score(3, 5, 2), Some(2));
        assert_eq!(dram.total_score(), 2);
        assert_eq!(dram.max_score(), 2);
    }

    #[test]
    fn votes_saturate_instead_of_wrapping() {
        let mut dram = DsiDram::new(4, 4, 1);
        let addr = dram.linear_address(0, 0, 0).unwrap();
        dram.write(addr, u16::MAX);
        assert_eq!(dram.vote(addr), Some(u16::MAX));
        assert_eq!(dram.stats().saturated_votes, 1);
    }

    #[test]
    fn out_of_range_accesses_fault_instead_of_panicking() {
        let mut dram = DsiDram::new(4, 4, 1);
        assert_eq!(dram.read(1_000_000), None);
        assert!(!dram.write(1_000_000, 1));
        assert_eq!(dram.vote(1_000_000), None);
        assert_eq!(dram.stats().address_faults, 3);
    }

    #[test]
    fn reset_zeroes_and_counts() {
        let mut dram = DsiDram::new(8, 8, 2);
        let addr = dram.linear_address(1, 1, 1).unwrap();
        dram.vote(addr);
        dram.reset();
        assert_eq!(dram.total_score(), 0);
        assert_eq!(dram.stats().resets, 1);
        assert!(dram.plane_scores(1).iter().all(|&s| s == 0));
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        let _ = DsiDram::new(0, 10, 10);
    }

    #[test]
    fn load_scores_overwrites_without_stats() {
        let mut dram = DsiDram::new(4, 4, 2);
        let image: Vec<u16> = (0..32).collect();
        dram.load_scores(&image);
        assert_eq!(dram.scores(), image.as_slice());
        assert_eq!(dram.stats(), DramStats::default());
    }

    #[test]
    #[should_panic]
    fn load_scores_rejects_wrong_length() {
        let mut dram = DsiDram::new(4, 4, 2);
        dram.load_scores(&[0; 3]);
    }

    #[test]
    fn clear_stats_keeps_scores() {
        let mut dram = DsiDram::new(4, 4, 1);
        let addr = dram.linear_address(2, 2, 0).unwrap();
        dram.vote(addr);
        dram.clear_stats();
        assert_eq!(dram.stats(), DramStats::default());
        assert_eq!(dram.score(2, 2, 0), Some(1));
    }
}
