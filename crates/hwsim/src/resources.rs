//! FPGA resource estimation (Table 2 of the paper).
//!
//! The estimator assigns per-component LUT/FF/BRAM costs to every block of
//! the Eventor architecture (Fig. 5) and sums them for a given
//! [`AcceleratorConfig`]. The per-component unit costs are *calibrated* so
//! that the paper's prototype configuration (one `PE_Z0`, two `PE_Zi`,
//! double-buffered BRAMs) reproduces the utilization reported in Table 2:
//! 17 538 LUTs (32.97 %), 22 830 FFs (21.46 %) and 64 KB of BRAM (11.43 %)
//! on the Zynq XC7Z020. Scaling the architecture (more `PE_Zi`, deeper
//! buffers) then extrapolates from those calibrated unit costs.

use crate::memory::BufferInventory;
use crate::timing::AcceleratorConfig;

/// Total resources of the Xilinx Zynq XC7Z020 programmable logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevceCapacity {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub flip_flops: u64,
    /// Block RAM, in bytes.
    pub bram_bytes: u64,
}

/// The XC7Z020 device used by the paper's prototype.
pub const XC7Z020: DevceCapacity = DevceCapacity {
    luts: 53_200,
    flip_flops: 106_400,
    // 4.9 Mb of block RAM ≈ 560 KB usable (the divisor that reproduces the
    // paper's 11.43 % figure for 64 KB).
    bram_bytes: 560 * 1024,
};

/// Resource cost of one architectural component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentCost {
    /// Component name.
    pub name: &'static str,
    /// LUTs used.
    pub luts: u64,
    /// Flip-flops used.
    pub flip_flops: u64,
    /// BRAM bytes used.
    pub bram_bytes: u64,
}

/// Full utilization report.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceReport {
    /// Per-component breakdown.
    pub components: Vec<ComponentCost>,
    /// Device capacity used for the percentage columns.
    pub device: DevceCapacity,
}

impl ResourceReport {
    /// Total LUTs.
    pub fn total_luts(&self) -> u64 {
        self.components.iter().map(|c| c.luts).sum()
    }

    /// Total flip-flops.
    pub fn total_flip_flops(&self) -> u64 {
        self.components.iter().map(|c| c.flip_flops).sum()
    }

    /// Total BRAM bytes.
    pub fn total_bram_bytes(&self) -> u64 {
        self.components.iter().map(|c| c.bram_bytes).sum()
    }

    /// LUT utilization as a fraction of the device.
    pub fn lut_utilization(&self) -> f64 {
        self.total_luts() as f64 / self.device.luts as f64
    }

    /// Flip-flop utilization as a fraction of the device.
    pub fn ff_utilization(&self) -> f64 {
        self.total_flip_flops() as f64 / self.device.flip_flops as f64
    }

    /// BRAM utilization as a fraction of the device.
    pub fn bram_utilization(&self) -> f64 {
        self.total_bram_bytes() as f64 / self.device.bram_bytes as f64
    }

    /// Formats the report as an aligned text table (the Table 2 layout plus a
    /// per-component breakdown).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>8} {:>10}\n",
            "component", "LUT", "FF", "BRAM (KB)"
        ));
        for c in &self.components {
            out.push_str(&format!(
                "{:<28} {:>8} {:>8} {:>10.1}\n",
                c.name,
                c.luts,
                c.flip_flops,
                c.bram_bytes as f64 / 1024.0
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>8} {:>8} {:>10.1}\n",
            "TOTAL",
            self.total_luts(),
            self.total_flip_flops(),
            self.total_bram_bytes() as f64 / 1024.0
        ));
        out.push_str(&format!(
            "utilization: LUT {:.2}%  FF {:.2}%  BRAM {:.2}%\n",
            100.0 * self.lut_utilization(),
            100.0 * self.ff_utilization(),
            100.0 * self.bram_utilization()
        ));
        out
    }
}

/// Estimates the resource utilization of a configuration.
pub fn estimate_resources(config: &AcceleratorConfig) -> ResourceReport {
    // Unit costs calibrated against the paper's prototype (see module docs).
    const PE_Z0_LUT: u64 = 4_200;
    const PE_Z0_FF: u64 = 5_600;
    const PE_ZI_LUT: u64 = 2_450;
    const PE_ZI_FF: u64 = 3_100;
    const VOTE_UNIT_LUT: u64 = 3_600;
    const VOTE_UNIT_FF: u64 = 4_400;
    const DMA_AXI_LUT: u64 = 2_900;
    const DMA_AXI_FF: u64 = 4_100;
    const CONTROL_LUT: u64 = 1_938;
    const CONTROL_FF: u64 = 2_530;

    let buffers = BufferInventory::new(config);
    let n_pe = config.num_pe_zi as u64;
    // The paper's 64 KB figure covers the double-buffered BRAMs rounded up to
    // whole BRAM18 primitives (2 KB granularity).
    let bram_granule = 2 * 1024;
    let raw_bram = buffers.total_bram_bytes() as u64;
    let bram_bytes = raw_bram.div_ceil(bram_granule) * bram_granule;

    let components = vec![
        ComponentCost {
            name: "Canonical Projection (PE_Z0)",
            luts: PE_Z0_LUT,
            flip_flops: PE_Z0_FF,
            bram_bytes: 0,
        },
        ComponentCost {
            name: "Proportional Projection PEs",
            luts: PE_ZI_LUT * n_pe,
            flip_flops: PE_ZI_FF * n_pe,
            bram_bytes: 0,
        },
        ComponentCost {
            name: "Vote Execute Unit",
            luts: VOTE_UNIT_LUT,
            flip_flops: VOTE_UNIT_FF,
            bram_bytes: 0,
        },
        ComponentCost {
            name: "DMA + AXI interface",
            luts: DMA_AXI_LUT,
            flip_flops: DMA_AXI_FF,
            bram_bytes: 0,
        },
        ComponentCost {
            name: "Controllers + Data Allocator",
            luts: CONTROL_LUT,
            flip_flops: CONTROL_FF,
            bram_bytes: 0,
        },
        ComponentCost {
            name: "Double-buffered BRAMs",
            luts: 0,
            flip_flops: 0,
            bram_bytes,
        },
    ];
    ResourceReport {
        components,
        device: XC7Z020,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_configuration_matches_table2() {
        let report = estimate_resources(&AcceleratorConfig::default());
        assert_eq!(report.total_luts(), 17_538);
        assert_eq!(report.total_flip_flops(), 22_830);
        let bram_kb = report.total_bram_bytes() as f64 / 1024.0;
        assert!((bram_kb - 64.0).abs() <= 10.0, "BRAM {bram_kb} KB");
        assert!((100.0 * report.lut_utilization() - 32.97).abs() < 0.1);
        assert!((100.0 * report.ff_utilization() - 21.46).abs() < 0.1);
        assert!((100.0 * report.bram_utilization() - 11.43).abs() < 2.0);
    }

    #[test]
    fn more_pe_zi_costs_more_logic() {
        let two = estimate_resources(&AcceleratorConfig::default());
        let four = estimate_resources(&AcceleratorConfig::default().with_pe_zi(4));
        assert!(four.total_luts() > two.total_luts());
        assert!(four.total_flip_flops() > two.total_flip_flops());
        assert!(four.total_bram_bytes() > two.total_bram_bytes());
        // Still fits on the device.
        assert!(four.lut_utilization() < 1.0);
    }

    #[test]
    fn report_table_contains_totals() {
        let report = estimate_resources(&AcceleratorConfig::default());
        let table = report.to_table();
        assert!(table.contains("TOTAL"));
        assert!(table.contains("utilization"));
        assert!(table.contains("17538"));
    }
}
