//! The full functional device model: register file, DMA, on-chip buffers,
//! processing-element datapaths, Vote Execute Unit and DDR3-backed DSI,
//! assembled the way Fig. 5 assembles the prototype.
//!
//! [`EventorDevice`] is what the host driver in `eventor-core` talks to. A
//! frame is processed the same way the ARM PS drives the PL:
//!
//! 1. the driver stages a [`FrameJob`] (packed event words, `H_{Z0}` words
//!    and per-plane `φ` words) and the DMA streams it into the double
//!    buffers,
//! 2. the driver writes the control register to start the frame,
//! 3. `PE_Z0` produces the canonical projections into `Buf_I`, the `PE_Zi`
//!    array generates vote addresses into `Buf_V`, and the Vote Execute Unit
//!    applies them to the DSI in DRAM over the AXI-HP ports,
//! 4. the driver polls the status register, reads back the result counters
//!    and (at key-frame boundaries) reads the DSI out of DRAM.
//!
//! Cycle accounting is derived from the *actual* work performed (events
//! surviving the projection-missing judgement, votes that landed inside the
//! sensor), using the same per-unit throughput assumptions as the analytic
//! model in [`crate::schedule`]; the two agree on full frames by
//! construction, and the device model additionally reflects dropped events
//! and out-of-sensor transfers.

use crate::axi::AxiHpInterconnect;
use crate::datapath::{
    HomographyRegisters, PeZ0Datapath, PeZiArrayDatapath, PhiEntry, VoteExecuteDatapath,
};
use crate::dma::{DmaDescriptor, DmaEngine, DmaTarget};
use crate::dram::DsiDram;
use crate::fsm::{CanonicalState, ProportionalState};
use crate::memory::{BufferInventory, DramDsiModel};
use crate::registers::{ctrl, status, Register, RegisterFile};
use crate::schedule::FrameKind;
use crate::timing::{AcceleratorConfig, Cycles};

/// The per-frame input set staged by the host driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameJob {
    /// Packed Q9.7 event-coordinate words (the `Buf_E` payload).
    pub event_words: Vec<u32>,
    /// The nine Q11.21 words of `H_{Z0}` in row-major order (the `Buf_H`
    /// payload).
    pub homography_words: [i32; 9],
    /// Three Q11.21 words per depth plane: `(scale, offset_x, offset_y)`
    /// (the `Buf_P` payload).
    pub phi_words: Vec<[i32; 3]>,
    /// Whether this frame starts a new key reference view (resets the DSI).
    pub kind: FrameKind,
}

impl FrameJob {
    /// Payload bytes the DMA must move for this frame.
    pub fn payload_bytes(&self) -> usize {
        self.event_words.len() * 4 + self.phi_words.len() * 12 + 36
    }
}

/// Result counters of one executed frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameExecution {
    /// Frame kind that was executed.
    pub kind: FrameKind,
    /// Events shipped to the device.
    pub events_in: u64,
    /// Events dropped by the projection-missing judgement of `PE_Z0`.
    pub events_dropped: u64,
    /// Plane transfers whose projection fell outside the sensor.
    pub transfers_missed: u64,
    /// Votes applied to the DSI.
    pub votes_applied: u64,
    /// DMA transfer cycles for the frame's input set.
    pub dma_cycles: Cycles,
    /// Cycles spent in `𝒫{Z0}` (canonical projection).
    pub canonical_cycles: Cycles,
    /// Cycles spent in `𝒫{Z0;Zi}` + `ℛ` (the proportional module).
    pub proportional_cycles: Cycles,
    /// Cycles spent resetting the DSI (key frames only).
    pub reset_cycles: Cycles,
    /// Total frame latency as exposed by the pipeline schedule.
    pub total_cycles: Cycles,
}

impl FrameExecution {
    /// Frame latency in microseconds for a given fabric clock.
    pub fn total_us(&self, config: &AcceleratorConfig) -> f64 {
        config.fabric_clock.cycles_to_us(self.total_cycles)
    }
}

/// Aggregate statistics over the device's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Frames executed.
    pub frames: u64,
    /// Key frames executed.
    pub key_frames: u64,
    /// Total events received.
    pub events_in: u64,
    /// Total events dropped.
    pub events_dropped: u64,
    /// Total votes applied.
    pub votes_applied: u64,
    /// Total cycles of accelerator busy time.
    pub busy_cycles: Cycles,
}

/// The assembled Eventor device model.
#[derive(Debug, Clone, PartialEq)]
pub struct EventorDevice {
    config: AcceleratorConfig,
    registers: RegisterFile,
    buffers: BufferInventory,
    dma: DmaEngine,
    axi_hp: AxiHpInterconnect,
    dram: DsiDram,
    vote_unit: VoteExecuteDatapath,
    staged: Option<FrameJob>,
    canonical_state: CanonicalState,
    proportional_state: ProportionalState,
    stats: DeviceStats,
}

impl EventorDevice {
    /// Builds a device for a configuration, with a zeroed DSI in DRAM.
    pub fn new(config: AcceleratorConfig) -> Self {
        let mut registers = RegisterFile::new();
        registers.write(Register::NumPlanes, config.num_depth_planes as u32);
        registers.write(Register::SensorWidth, config.sensor_width as u32);
        registers.write(Register::SensorHeight, config.sensor_height as u32);
        Self {
            dram: DsiDram::for_config(&config),
            buffers: BufferInventory::new(&config),
            dma: DmaEngine::new(&config),
            axi_hp: AxiHpInterconnect::new(config.axi_hp_ports.max(1)),
            vote_unit: VoteExecuteDatapath::new(),
            registers,
            staged: None,
            canonical_state: CanonicalState::Idle,
            proportional_state: ProportionalState::Idle,
            stats: DeviceStats::default(),
            config,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Host view of the register file.
    pub fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.registers
    }

    /// Read-only view of the register file.
    pub fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    /// The DSI volume stored in DRAM.
    pub fn dsi(&self) -> &DsiDram {
        &self.dram
    }

    /// Lifetime statistics of the device.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Current state of the Canonical Projection Controller.
    pub fn canonical_state(&self) -> CanonicalState {
        self.canonical_state
    }

    /// Current state of the Proportional Projection Controller.
    pub fn proportional_state(&self) -> ProportionalState {
        self.proportional_state
    }

    /// Zeroes the DSI region (the host-initiated reset outside frame
    /// processing).
    pub fn reset_dsi(&mut self) {
        self.dram.reset();
    }

    /// Overwrites the DSI region with a snapshotted score image (the
    /// checkpoint-restore path: a host-side DMA that bypasses the Vote
    /// Execute Unit, so access statistics are untouched).
    ///
    /// # Panics
    ///
    /// Panics if `scores` does not cover the DSI region exactly.
    pub fn load_dsi(&mut self, scores: &[u16]) {
        self.dram.load_scores(scores);
    }

    /// Stages a frame job and performs the DMA transfer into the input
    /// buffers, returning the transfer cycles.
    ///
    /// The transfer is rejected (status `ERROR` raised, `None` returned) when
    /// the frame is empty or its plane count disagrees with the configured
    /// DSI depth.
    pub fn load_frame(&mut self, job: FrameJob) -> Option<Cycles> {
        if job.event_words.is_empty() || job.phi_words.len() != self.config.num_depth_planes {
            self.registers.set_status(status::ERROR);
            return None;
        }
        self.registers.clear_status(status::ERROR | status::DONE);
        self.canonical_state = CanonicalState::WaitDma;

        let event_bytes = job.event_words.len() * 4;
        let phi_bytes = job.phi_words.len() * 12;
        let descriptors = [
            DmaDescriptor::new(0x0000_0000, event_bytes, DmaTarget::BufE),
            DmaDescriptor::new(0x0010_0000, phi_bytes, DmaTarget::BufP),
            DmaDescriptor::new(0x0020_0000, 36, DmaTarget::BufH),
        ];
        let cycles = self.dma.execute_chain(&descriptors);

        // Fill the ping-pong banks; the datapath consumes them after a swap.
        let _ = self.buffers.buf_e.fill_bank().fill(event_bytes);
        let _ = self.buffers.buf_p.fill_bank().fill(phi_bytes);
        self.buffers.buf_e.swap();
        self.buffers.buf_p.swap();
        self.registers
            .write(Register::NumEvents, job.event_words.len() as u32);
        self.registers.write(
            Register::FrameKind,
            match job.kind {
                FrameKind::Normal => 0,
                FrameKind::Key => 1,
            },
        );
        self.registers.clear_status(status::BUF_E_READY);
        self.staged = Some(job);
        self.canonical_state = CanonicalState::Idle;
        Some(cycles)
    }

    /// Starts the staged frame by writing the control register, runs it to
    /// completion and returns its execution record.
    ///
    /// Returns `None` (with status `ERROR`) when no frame is staged.
    pub fn start_frame(&mut self) -> Option<FrameExecution> {
        let Some(job) = self.staged.take() else {
            self.registers.set_status(status::ERROR);
            return None;
        };
        let mut control = ctrl::START | ctrl::IRQ_ENABLE;
        if job.kind == FrameKind::Key {
            control |= ctrl::RESET_DSI;
        }
        self.registers.write(Register::Control, control);
        self.registers.set_status(status::BUSY);
        self.registers.clear_status(status::DONE);

        let execution = self.execute(&job);

        self.registers.clear_status(status::BUSY);
        self.registers
            .set_status(status::DONE | status::BUF_E_READY);
        self.registers
            .write(Register::VotesApplied, execution.votes_applied as u32);
        self.registers
            .write(Register::EventsDropped, execution.events_dropped as u32);
        self.registers.set_cycle_result(execution.total_cycles);
        self.registers.write(Register::InterruptStatus, 1);

        self.stats.frames += 1;
        if execution.kind == FrameKind::Key {
            self.stats.key_frames += 1;
        }
        self.stats.events_in += execution.events_in;
        self.stats.events_dropped += execution.events_dropped;
        self.stats.votes_applied += execution.votes_applied;
        self.stats.busy_cycles += execution.total_cycles;
        Some(execution)
    }

    /// Convenience wrapper: stage, transfer and execute a frame in one call,
    /// the way the interrupt-driven driver loop does.
    pub fn run_frame(&mut self, job: FrameJob) -> Option<FrameExecution> {
        self.load_frame(job)?;
        self.start_frame()
    }

    fn execute(&mut self, job: &FrameJob) -> FrameExecution {
        let width = self.config.sensor_width as u32;
        let height = self.config.sensor_height as u32;

        // Key frames reset the DSI before voting restarts.
        let reset_cycles = if job.kind == FrameKind::Key {
            self.proportional_state = ProportionalState::ResetDsi;
            self.dram.reset();
            DramDsiModel::reset_cycles(&self.config)
        } else {
            0
        };

        // PE_Z0: canonical projection over the active Buf_E bank.
        self.canonical_state = CanonicalState::Project;
        let h = HomographyRegisters::from_raw_words(job.homography_words);
        let mut pe_z0 = PeZ0Datapath::new();
        let canonical = pe_z0.project_frame(&h, &job.event_words);
        let canonical_cycles =
            job.event_words.len() as Cycles + self.config.pe_z0_pipeline_overhead;
        let _ = self.buffers.buf_i[0].fill_bank().fill(canonical.len() * 4);
        self.buffers.buf_i[0].swap();
        self.canonical_state = CanonicalState::SyncWait;

        // PE_Zi array: proportional projection and vote-address generation.
        self.proportional_state = ProportionalState::TransferAndVote;
        let phi: Vec<PhiEntry> = job
            .phi_words
            .iter()
            .map(|&w| PhiEntry::from_raw_words(w))
            .collect();
        let mut pe_zi = PeZiArrayDatapath::new(phi, self.config.num_pe_zi, width, height);
        let votes = pe_zi.generate_frame_votes(&canonical);
        let planes_per_pe = self.config.num_depth_planes.div_ceil(self.config.num_pe_zi);
        let surviving_events = canonical.iter().flatten().count();
        let address_cycles =
            (surviving_events * planes_per_pe) as Cycles + self.config.pe_zi_pipeline_overhead;

        // Vote Execute Unit: DSI read-modify-write over the AXI-HP ports.
        let _ = self
            .buffers
            .buf_v
            .fill_bank()
            .fill(votes.len().min(4096) * 4);
        self.buffers.buf_v.swap();
        let vote_stats = self
            .vote_unit
            .execute(&votes, &mut self.dram, &mut self.axi_hp);
        let vote_cycles = (votes.len() as f64 / self.config.votes_per_cycle()).ceil() as Cycles;

        // The PE array and the Vote Execute Unit stream through Buf_V and
        // overlap; the slower one bounds the proportional-module time.
        let proportional_cycles = address_cycles.max(vote_cycles);
        self.proportional_state = ProportionalState::Idle;
        self.canonical_state = CanonicalState::Idle;

        let dma_cycles = self.dma.stats().busy_cycles; // cumulative; per-frame recomputed below
        let _ = dma_cycles;
        let frame_dma_cycles = {
            // Recompute just this frame's transfer time from its payload.
            let payload = job.payload_bytes() as f64;
            self.config.dma_setup_cycles
                + (payload / self.config.dma_bytes_per_cycle).ceil() as Cycles
        };
        let exposed_dma = if self.config.double_buffering {
            0
        } else {
            frame_dma_cycles
        };

        // The DSI reset of a key frame is issued as background DRAM write
        // traffic and is not part of the paper's key-frame latency (Table 3);
        // it is reported separately in `reset_cycles`.
        let total_cycles = match job.kind {
            FrameKind::Normal => proportional_cycles + exposed_dma,
            FrameKind::Key => canonical_cycles + proportional_cycles + exposed_dma,
        };

        FrameExecution {
            kind: job.kind,
            events_in: job.event_words.len() as u64,
            events_dropped: pe_z0.events_dropped(),
            transfers_missed: pe_zi.stats().transfers_missed,
            votes_applied: vote_stats.votes_applied,
            dma_cycles: frame_dma_cycles,
            canonical_cycles,
            proportional_cycles,
            reset_cycles,
            total_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_fixed::PackedCoord;

    fn identity_job(events: usize, planes: usize, kind: FrameKind) -> FrameJob {
        let identity =
            HomographyRegisters::from_matrix(&[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        let phi = PhiEntry::from_f64(1.0, 0.0, 0.0).raw_words();
        FrameJob {
            event_words: (0..events)
                .map(|i| PackedCoord::from_f64((i % 240) as f64, (i % 180) as f64).to_word())
                .collect(),
            homography_words: identity.raw_words(),
            phi_words: vec![phi; planes],
            kind,
        }
    }

    fn small_config() -> AcceleratorConfig {
        AcceleratorConfig::default()
            .with_events_per_frame(64)
            .with_depth_planes(10)
    }

    #[test]
    fn identity_frame_votes_every_event_on_every_plane() {
        let config = small_config();
        let mut device = EventorDevice::new(config.clone());
        let job = identity_job(64, 10, FrameKind::Key);
        let exec = device.run_frame(job).unwrap();
        assert_eq!(exec.events_in, 64);
        assert_eq!(exec.events_dropped, 0);
        assert_eq!(exec.transfers_missed, 0);
        assert_eq!(exec.votes_applied, 64 * 10);
        assert_eq!(device.dsi().total_score(), 64 * 10);
        assert_eq!(device.stats().frames, 1);
        assert_eq!(device.stats().key_frames, 1);
        // The identity projection votes exactly where the event sits.
        assert_eq!(device.dsi().score(5, 5, 0), Some(1));
    }

    #[test]
    fn register_interface_reports_results() {
        let config = small_config();
        let mut device = EventorDevice::new(config);
        let job = identity_job(32, 10, FrameKind::Normal);
        let exec = device.run_frame(job).unwrap();
        assert!(device.registers().status_is(status::DONE));
        assert!(!device.registers().status_is(status::BUSY));
        assert_eq!(
            device.registers().peek(Register::VotesApplied) as u64,
            exec.votes_applied
        );
        assert_eq!(device.registers().cycle_result(), exec.total_cycles);
        assert_eq!(device.registers().peek(Register::NumEvents), 32);
        assert!(device.registers().peek(Register::Control) & ctrl::START != 0);
    }

    #[test]
    fn empty_or_mismatched_jobs_raise_error_status() {
        let config = small_config();
        let mut device = EventorDevice::new(config);
        let mut empty = identity_job(0, 10, FrameKind::Normal);
        empty.event_words.clear();
        assert!(device.load_frame(empty).is_none());
        assert!(device.registers().status_is(status::ERROR));

        let wrong_planes = identity_job(16, 3, FrameKind::Normal);
        assert!(device.load_frame(wrong_planes).is_none());

        // Starting without a staged frame is also an error.
        assert!(device.start_frame().is_none());
    }

    #[test]
    fn key_frames_reset_the_dsi_and_cost_more() {
        let config = small_config();
        let mut device = EventorDevice::new(config);
        let normal = device
            .run_frame(identity_job(64, 10, FrameKind::Normal))
            .unwrap();
        assert_eq!(device.dsi().total_score(), 640);
        let key = device
            .run_frame(identity_job(64, 10, FrameKind::Key))
            .unwrap();
        // The key frame zeroed the DSI before voting again.
        assert_eq!(device.dsi().total_score(), 640);
        assert!(key.total_cycles > normal.total_cycles);
        assert!(key.reset_cycles > 0);
        assert_eq!(normal.reset_cycles, 0);
    }

    #[test]
    fn paper_scale_frame_latency_matches_analytic_schedule() {
        let config = AcceleratorConfig::default();
        let mut device = EventorDevice::new(config.clone());
        let job = identity_job(1024, 100, FrameKind::Normal);
        let exec = device.run_frame(job).unwrap();
        let analytic = crate::schedule::frame_timing(&config, FrameKind::Normal);
        // Full frames with no dropped events reproduce the analytic latency
        // to within a few percent (the analytic model assumes every transfer
        // votes; identity jobs satisfy that).
        let ratio = exec.total_cycles as f64 / analytic.total_cycles as f64;
        assert!(
            ratio > 0.95 && ratio < 1.05,
            "functional {} vs analytic {}",
            exec.total_cycles,
            analytic.total_cycles
        );
        assert!((exec.total_us(&config) - 551.58).abs() < 30.0);
    }

    #[test]
    fn dropped_events_reduce_vote_traffic() {
        let config = small_config();
        let mut device = EventorDevice::new(config);
        // A scaling homography throws most events out of the Q9.7 range.
        let h =
            HomographyRegisters::from_matrix(&[[8.0, 0.0, 0.0], [0.0, 8.0, 0.0], [0.0, 0.0, 1.0]]);
        let mut job = identity_job(64, 10, FrameKind::Normal);
        job.homography_words = h.raw_words();
        let exec = device.run_frame(job).unwrap();
        assert!(exec.events_dropped > 0);
        assert!(exec.votes_applied < 64 * 10);
        assert_eq!(
            exec.votes_applied + exec.transfers_missed,
            (exec.events_in - exec.events_dropped) * 10
        );
    }

    #[test]
    fn device_accumulates_lifetime_stats() {
        let config = small_config();
        let mut device = EventorDevice::new(config);
        for i in 0..5 {
            let kind = if i == 0 {
                FrameKind::Key
            } else {
                FrameKind::Normal
            };
            device.run_frame(identity_job(64, 10, kind)).unwrap();
        }
        let stats = device.stats();
        assert_eq!(stats.frames, 5);
        assert_eq!(stats.key_frames, 1);
        assert_eq!(stats.events_in, 320);
        assert_eq!(stats.votes_applied, 5 * 640);
        assert!(stats.busy_cycles > 0);
        device.reset_dsi();
        assert_eq!(device.dsi().total_score(), 0);
        assert_eq!(device.canonical_state(), CanonicalState::Idle);
        assert_eq!(device.proportional_state(), ProportionalState::Idle);
    }

    #[test]
    fn frame_job_payload_accounts_for_all_buffers() {
        let job = identity_job(64, 10, FrameKind::Normal);
        assert_eq!(job.payload_bytes(), 64 * 4 + 10 * 12 + 36);
    }
}
