//! Discrete-event simulation of the controller finite-state machines and the
//! frame-level pipeline of Fig. 6.
//!
//! The Canonical Projection Controller and the Proportional Projection
//! Controller are modelled as explicit state machines that exchange the
//! `Buf_E` / `Buf_I` double-buffer hand-shake:
//!
//! * for a **normal** frame the canonical controller starts the next frame's
//!   `𝒫{Z0}` as soon as a `Buf_I` bank is free, so its latency hides behind
//!   the proportional module working on the previous frame;
//! * for a **key** frame the canonical controller waits in its
//!   synchronization state until the proportional module has drained and the
//!   DSI has been reset, exposing the canonical latency.
//!
//! The simulator reproduces the analytic schedule of [`crate::schedule`]
//! frame by frame — the unit tests assert the steady-state agreement — while
//! also reporting per-module busy time, buffer occupancy hand-offs and the
//! states each controller visited, which the analytic model cannot provide.

use crate::memory::DmaModel;
use crate::pe::{proportional_module_cycles, PeZ0};
use crate::schedule::FrameKind;
use crate::timing::{AcceleratorConfig, Cycles};

/// States of the Canonical Projection Controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CanonicalState {
    /// Waiting for a frame to be staged.
    Idle,
    /// Waiting for the DMA to finish filling `Buf_E` (only visible when
    /// double buffering is disabled).
    WaitDma,
    /// Waiting in the synchronization state for the proportional module to
    /// drain (key frames only).
    SyncWait,
    /// Running `𝒫{Z0}` over the active `Buf_E` bank.
    Project,
}

/// States of the Proportional Projection Controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProportionalState {
    /// Waiting for a `Buf_I` bank to be handed over.
    Idle,
    /// Resetting the DSI in DRAM (key frames only).
    ResetDsi,
    /// Running `𝒫{Z0;Zi}`, `𝒢` and `𝒱` over the active `Buf_I` bank.
    TransferAndVote,
}

/// Timeline of one frame through the pipeline, in absolute fabric cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTrace {
    /// Frame kind (normal or key).
    pub kind: FrameKind,
    /// Cycle at which the DMA transfer for this frame started.
    pub dma_start: Cycles,
    /// Cycle at which the DMA transfer completed.
    pub dma_end: Cycles,
    /// Cycle at which `𝒫{Z0}` started.
    pub canonical_start: Cycles,
    /// Cycle at which `𝒫{Z0}` finished (the `Buf_I` hand-over).
    pub canonical_end: Cycles,
    /// Cycle at which the proportional module started on this frame.
    pub proportional_start: Cycles,
    /// Cycle at which the proportional module finished this frame.
    pub proportional_end: Cycles,
}

impl FrameTrace {
    /// The frame's completion-to-completion latency relative to the previous
    /// frame's proportional completion.
    pub fn pipeline_period(&self, previous_end: Cycles) -> Cycles {
        self.proportional_end - previous_end
    }
}

/// Aggregate result of simulating a frame sequence through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTrace {
    /// Per-frame timelines in submission order.
    pub frames: Vec<FrameTrace>,
    /// Cycle at which the last frame completed.
    pub total_cycles: Cycles,
    /// Cycles the Canonical Projection Module spent projecting.
    pub canonical_busy: Cycles,
    /// Cycles the Proportional Projection Module spent transferring/voting.
    pub proportional_busy: Cycles,
    /// Cycles spent in DSI resets (key frames).
    pub reset_busy: Cycles,
    /// Cycles of DMA transfer (whether or not they were hidden).
    pub dma_busy: Cycles,
    /// Number of `Buf_E`/`Buf_I` double-buffer swaps performed.
    pub buffer_swaps: u64,
}

impl PipelineTrace {
    /// Utilization of the proportional module (the throughput-limiting unit).
    pub fn proportional_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.proportional_busy as f64 / self.total_cycles as f64
    }

    /// Utilization of the canonical module.
    pub fn canonical_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.canonical_busy as f64 / self.total_cycles as f64
    }

    /// Average cycles per frame over the whole trace.
    pub fn mean_frame_cycles(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.total_cycles as f64 / self.frames.len() as f64
    }

    /// Event throughput in events per second for a given frame size and
    /// fabric clock.
    pub fn event_rate(&self, config: &AcceleratorConfig) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let events = self.frames.len() as f64 * config.events_per_frame as f64;
        events / config.fabric_clock.cycles_to_seconds(self.total_cycles)
    }
}

/// Discrete-event simulator of the two projection-module controllers.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSimulator {
    config: AcceleratorConfig,
}

impl PipelineSimulator {
    /// Creates a simulator for a configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self { config }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Simulates a sequence of frames through the pipelined schedule of
    /// Fig. 6 and returns the full timeline.
    pub fn simulate(&self, kinds: &[FrameKind]) -> PipelineTrace {
        let canonical_cycles = PeZ0::frame_cycles(&self.config);
        let proportional_cycles = proportional_module_cycles(&self.config);
        let dma_cycles = DmaModel::frame_transfer_cycles(&self.config);
        let reset_cycles = crate::memory::DramDsiModel::reset_cycles(&self.config);

        let mut frames = Vec::with_capacity(kinds.len());
        let mut canonical_free: Cycles = 0; // when the canonical module can next start
        let mut proportional_free: Cycles = 0; // when the proportional module can next start
        let mut dma_free: Cycles = 0; // when the DMA engine can next start
        let mut canonical_busy: Cycles = 0;
        let mut proportional_busy: Cycles = 0;
        let mut reset_busy: Cycles = 0;
        let mut dma_busy: Cycles = 0;
        let mut buffer_swaps: u64 = 0;

        for &kind in kinds {
            // DMA: with double buffering the transfer overlaps the previous
            // frame's processing; without it the canonical module must wait
            // for the transfer to finish.
            let dma_start = dma_free;
            let dma_end = dma_start + dma_cycles;
            dma_free = dma_end;
            dma_busy += dma_cycles;

            let input_ready = if self.config.double_buffering {
                // The ping-pong bank was filled while the previous frame was
                // processed; only the very first frame sees the transfer.
                if frames.is_empty() {
                    dma_end
                } else {
                    canonical_free
                }
            } else {
                dma_end.max(canonical_free)
            };

            // Key frames synchronize: the canonical controller waits in its
            // SyncWait state until the proportional module drained, then the
            // DSI reset runs before the proportional module may restart.
            let canonical_start = match kind {
                FrameKind::Normal => input_ready,
                FrameKind::Key => input_ready.max(proportional_free),
            };
            let canonical_end = canonical_start + canonical_cycles;
            canonical_busy += canonical_cycles;
            canonical_free = canonical_end;
            buffer_swaps += 1;

            if kind == FrameKind::Key {
                // The DSI reset is issued to the PS DRAM controller when the
                // key frame is selected and proceeds as background write
                // traffic; the paper's key-frame latency (Table 3) does not
                // include it, so it is accounted as busy time but kept off
                // the frame critical path.
                reset_busy += reset_cycles;
            }
            let proportional_start = canonical_end.max(proportional_free);
            let proportional_end = proportional_start + proportional_cycles;
            proportional_busy += proportional_cycles;
            proportional_free = proportional_end;

            frames.push(FrameTrace {
                kind,
                dma_start,
                dma_end,
                canonical_start,
                canonical_end,
                proportional_start,
                proportional_end,
            });
        }

        PipelineTrace {
            total_cycles: frames.last().map_or(0, |f| f.proportional_end),
            frames,
            canonical_busy,
            proportional_busy,
            reset_busy,
            dma_busy,
            buffer_swaps,
        }
    }

    /// Simulates `n` frames where every `keyframe_interval`-th frame is a key
    /// frame (the first frame is always a key frame, as in the real system).
    pub fn simulate_periodic(&self, n: usize, keyframe_interval: usize) -> PipelineTrace {
        let interval = keyframe_interval.max(1);
        let kinds: Vec<FrameKind> = (0..n)
            .map(|i| {
                if i % interval == 0 {
                    FrameKind::Key
                } else {
                    FrameKind::Normal
                }
            })
            .collect();
        self.simulate(&kinds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::frame_timing;

    #[test]
    fn steady_state_normal_frame_period_matches_analytic_model() {
        let config = AcceleratorConfig::default();
        let sim = PipelineSimulator::new(config.clone());
        let kinds = vec![FrameKind::Normal; 12];
        let trace = sim.simulate(&kinds);
        let analytic = frame_timing(&config, FrameKind::Normal).total_cycles;
        // After the pipeline fills, the completion-to-completion period of a
        // normal frame equals the proportional-module time.
        for pair in trace.frames.windows(2).skip(2) {
            assert_eq!(pair[1].pipeline_period(pair[0].proportional_end), analytic);
        }
        assert_eq!(trace.frames.len(), 12);
        assert_eq!(trace.buffer_swaps, 12);
    }

    #[test]
    fn canonical_projection_is_hidden_for_normal_frames() {
        let config = AcceleratorConfig::default();
        let sim = PipelineSimulator::new(config);
        let trace = sim.simulate(&[FrameKind::Normal; 6]);
        // From the second frame on, the canonical projection of frame N runs
        // while the proportional module is still busy with frame N-1.
        for i in 1..trace.frames.len() {
            assert!(trace.frames[i].canonical_start < trace.frames[i - 1].proportional_end);
        }
    }

    #[test]
    fn key_frames_expose_the_canonical_latency() {
        let config = AcceleratorConfig::default();
        let sim = PipelineSimulator::new(config.clone());
        let kinds = [
            FrameKind::Normal,
            FrameKind::Normal,
            FrameKind::Key,
            FrameKind::Normal,
            FrameKind::Normal,
        ];
        let trace = sim.simulate(&kinds);
        let key = &trace.frames[2];
        let prev = &trace.frames[1];
        // The key frame's canonical projection does not start before the
        // previous frame's proportional module has drained.
        assert!(key.canonical_start >= prev.proportional_end);
        // Its period is therefore at least canonical + proportional.
        let analytic_key = frame_timing(&config, FrameKind::Key).total_cycles;
        assert!(key.pipeline_period(prev.proportional_end) >= analytic_key);
    }

    #[test]
    fn disabling_double_buffering_slows_the_pipeline() {
        let with = PipelineSimulator::new(AcceleratorConfig::default());
        let without =
            PipelineSimulator::new(AcceleratorConfig::default().with_double_buffering(false));
        let kinds = vec![FrameKind::Normal; 8];
        assert!(without.simulate(&kinds).total_cycles >= with.simulate(&kinds).total_cycles);
    }

    #[test]
    fn utilization_and_rates_are_sane() {
        let config = AcceleratorConfig::default();
        let sim = PipelineSimulator::new(config.clone());
        let trace = sim.simulate_periodic(40, 10);
        assert_eq!(
            trace
                .frames
                .iter()
                .filter(|f| f.kind == FrameKind::Key)
                .count(),
            4
        );
        assert!(
            trace.proportional_utilization() > 0.9,
            "{}",
            trace.proportional_utilization()
        );
        assert!(
            trace.canonical_utilization() < 0.1,
            "{}",
            trace.canonical_utilization()
        );
        let rate = trace.event_rate(&config);
        assert!(rate > 1.5e6 && rate < 2.0e6, "event rate {rate}");
        assert!(trace.mean_frame_cycles() > 0.0);
        assert!(trace.reset_busy > 0);
    }

    #[test]
    fn empty_sequence_produces_empty_trace() {
        let sim = PipelineSimulator::new(AcceleratorConfig::default());
        let trace = sim.simulate(&[]);
        assert!(trace.frames.is_empty());
        assert_eq!(trace.total_cycles, 0);
        assert_eq!(trace.event_rate(sim.config()), 0.0);
        assert_eq!(trace.proportional_utilization(), 0.0);
        assert_eq!(trace.canonical_utilization(), 0.0);
        assert_eq!(trace.mean_frame_cycles(), 0.0);
    }

    #[test]
    fn more_pe_zi_do_not_slow_the_simulated_pipeline() {
        let kinds = vec![FrameKind::Normal; 10];
        let two = PipelineSimulator::new(AcceleratorConfig::default()).simulate(&kinds);
        let four =
            PipelineSimulator::new(AcceleratorConfig::default().with_pe_zi(4)).simulate(&kinds);
        assert!(four.total_cycles <= two.total_cycles);
    }
}
