//! Bit-accurate functional models of the Eventor processing elements.
//!
//! Where [`crate::pe`] models *how long* the processing elements take, this
//! module models *what they compute*, at the precision of the Table 1
//! fixed-point formats:
//!
//! * [`HomographyRegisters`] / [`PeZ0Datapath`] — the `Buf_H` register bank
//!   and the matrix-vector MAC + normalization of `PE_Z0` (`𝒫{Z0}`),
//! * [`PhiEntry`] / [`PeZiArrayDatapath`] — the `Buf_P` contents and the
//!   scalar MAC + Nearest Voxel Finder + Vote Address Generator of the
//!   `PE_Zi` array (`𝒫{Z0;Zi}` and `𝒢`),
//! * [`VoteExecuteDatapath`] — the DSI read-modify-write of the Vote Execute
//!   Unit (`𝒱`) against [`crate::DsiDram`], issuing transaction-level AXI
//!   bursts.
//!
//! These models are the register/FSM face of the datapath; the arithmetic
//! itself — wide MAC, normalization, saturation judgement, nearest-voxel
//! rounding — is the **bit-true integer kernel** in
//! [`eventor_fixed::kernel`], the same functions the software golden model
//! in `eventor-core` calls. Device ↔ golden-model agreement is therefore a
//! property of construction; the workspace integration tests
//! (`tests/cosim_equivalence.rs`) assert it end to end.

use crate::axi::{AxiBurst, AxiHpInterconnect};
use crate::dram::DsiDram;
use eventor_fixed::kernel::{self, PhiWords};
use eventor_fixed::{PackedCoord, Q11p21};

/// The `Buf_H` register bank: the 3×3 homography `H_{Z0}` stored as nine
/// Q11.21 words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomographyRegisters {
    words: [Q11p21; 9],
}

impl HomographyRegisters {
    /// Loads the register bank from nine raw Q11.21 bus words in row-major
    /// order.
    pub fn from_raw_words(words: [i32; 9]) -> Self {
        let mut regs = [Q11p21::zero(); 9];
        for (r, w) in regs.iter_mut().zip(words) {
            *r = Q11p21::from_raw(w);
        }
        Self { words: regs }
    }

    /// Quantizes a row-major `f64` homography into the register bank (the
    /// conversion the host driver performs before the DMA transfer).
    pub fn from_matrix(m: &[[f64; 3]; 3]) -> Self {
        let mut words = [0i32; 9];
        for (k, w) in words.iter_mut().enumerate() {
            *w = Q11p21::from_f64(m[k / 3][k % 3]).raw();
        }
        Self::from_raw_words(words)
    }

    /// The raw Q11.21 bus words in row-major order.
    pub fn raw_words(&self) -> [i32; 9] {
        let mut out = [0i32; 9];
        for (o, w) in out.iter_mut().zip(self.words) {
            *o = w.raw();
        }
        out
    }

    /// The entry at `(row, col)` as `f64`.
    pub fn entry(&self, row: usize, col: usize) -> f64 {
        self.words[row * 3 + col].to_f64()
    }
}

/// Functional model of `PE_Z0`: the canonical back-projection `𝒫{Z0}`.
///
/// The matrix-vector MAC runs in explicit `i64` wide accumulators (the RTL
/// keeps full-width partial products), the normalization divider produces
/// the canonical coordinates, and the result is re-quantized to the Q9.7
/// transport format written into `Buf_I` — all via
/// [`kernel::project_z0`] on the raw register words, no `f64` anywhere.
/// Events whose canonical projection cannot be represented in Q9.7, or that
/// map to infinity, are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeZ0Datapath {
    events_processed: u64,
    events_dropped: u64,
}

impl PeZ0Datapath {
    /// Creates an idle datapath.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one packed event word against the homography registers.
    ///
    /// Returns the canonical projection in the Q9.7 transport format, or
    /// `None` when the projection-missing judgement drops the event.
    pub fn project(&mut self, h: &HomographyRegisters, event_word: u32) -> Option<PackedCoord> {
        self.project_words(&h.raw_words(), event_word)
    }

    /// [`Self::project`] on pre-hoisted raw register words — the per-event
    /// body of [`Self::project_frame`], which reads the register bank once
    /// per frame instead of once per event.
    #[inline]
    fn project_words(&mut self, words: &[i32; 9], event_word: u32) -> Option<PackedCoord> {
        self.events_processed += 1;
        let out = kernel::project_z0(words, PackedCoord::from_word(event_word));
        if out.is_none() {
            self.events_dropped += 1;
        }
        out
    }

    /// Processes a whole `Buf_E` bank, producing the `Buf_I` contents.
    pub fn project_frame(
        &mut self,
        h: &HomographyRegisters,
        event_words: &[u32],
    ) -> Vec<Option<PackedCoord>> {
        let words = h.raw_words();
        event_words
            .iter()
            .map(|&w| self.project_words(&words, w))
            .collect()
    }

    /// Events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events dropped by the projection-missing judgement.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }
}

/// One `Buf_P` entry: the proportional back-projection coefficients of a
/// single depth plane, as three Q11.21 words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhiEntry {
    /// Homothety ratio `r_i`.
    pub scale: Q11p21,
    /// Epipole term for the x axis, `(1 - r_i) * e_x`.
    pub offset_x: Q11p21,
    /// Epipole term for the y axis, `(1 - r_i) * e_y`.
    pub offset_y: Q11p21,
}

impl PhiEntry {
    /// Builds an entry from three raw Q11.21 bus words.
    pub fn from_raw_words(words: [i32; 3]) -> Self {
        Self {
            scale: Q11p21::from_raw(words[0]),
            offset_x: Q11p21::from_raw(words[1]),
            offset_y: Q11p21::from_raw(words[2]),
        }
    }

    /// Quantizes floating-point coefficients into an entry.
    pub fn from_f64(scale: f64, offset_x: f64, offset_y: f64) -> Self {
        Self {
            scale: Q11p21::from_f64(scale),
            offset_x: Q11p21::from_f64(offset_x),
            offset_y: Q11p21::from_f64(offset_y),
        }
    }

    /// The raw Q11.21 bus words `(scale, offset_x, offset_y)`.
    pub fn raw_words(&self) -> [i32; 3] {
        [self.scale.raw(), self.offset_x.raw(), self.offset_y.raw()]
    }

    /// The entry as the kernel's raw-word form — what the `PE_Zi` scalar
    /// MACs actually consume.
    #[inline]
    pub fn words(&self) -> PhiWords {
        PhiWords::from_raw_words(self.raw_words())
    }
}

/// A DSI vote address produced by the Vote Address Generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VoteAddress {
    /// Voxel column.
    pub x: u16,
    /// Voxel row.
    pub y: u16,
    /// Depth-plane index.
    pub plane: u16,
}

impl VoteAddress {
    /// The linear DRAM address of the voxel for a `width x height` plane.
    pub fn linear(&self, width: usize, height: usize) -> u64 {
        ((self.plane as usize * height + self.y as usize) * width + self.x as usize) as u64
    }
}

/// Per-frame execution statistics of the `PE_Zi` array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeZiStats {
    /// Plane transfers executed (canonical points × planes).
    pub transfers: u64,
    /// Votes generated (transfers that landed inside the sensor).
    pub votes_generated: u64,
    /// Transfers rejected by the projection-missing judgement.
    pub transfers_missed: u64,
}

/// Functional model of the `PE_Zi` array: scalar MACs, Nearest Voxel Finder
/// and Vote Address Generator.
///
/// Depth planes are distributed over the physical `PE_Zi` in round-robin
/// order (plane `i` is handled by PE `i mod num_pe`); all PEs share the same
/// canonical input, exactly as the Data Allocator distributes it.
#[derive(Debug, Clone, PartialEq)]
pub struct PeZiArrayDatapath {
    /// `Buf_P` contents in the kernel's raw-word form, hoisted once at
    /// construction so the per-event loop touches only integers.
    phi: Vec<PhiWords>,
    num_pe: usize,
    sensor_width: u32,
    sensor_height: u32,
    stats: PeZiStats,
    per_pe_transfers: Vec<u64>,
}

impl PeZiArrayDatapath {
    /// Creates the array datapath.
    ///
    /// # Panics
    ///
    /// Panics if `num_pe` is zero or the sensor is empty.
    pub fn new(phi: Vec<PhiEntry>, num_pe: usize, sensor_width: u32, sensor_height: u32) -> Self {
        assert!(num_pe > 0, "need at least one PE_Zi");
        assert!(
            sensor_width > 0 && sensor_height > 0,
            "sensor must be non-empty"
        );
        Self {
            phi: phi.iter().map(PhiEntry::words).collect(),
            num_pe,
            sensor_width,
            sensor_height,
            stats: PeZiStats::default(),
            per_pe_transfers: vec![0; num_pe],
        }
    }

    /// Number of depth planes loaded in `Buf_P`.
    pub fn num_planes(&self) -> usize {
        self.phi.len()
    }

    /// Number of physical `PE_Zi`.
    pub fn num_pe(&self) -> usize {
        self.num_pe
    }

    /// Transfers one canonical point to every depth plane and generates the
    /// vote addresses of the in-sensor projections.
    pub fn generate_votes(&mut self, canonical: PackedCoord) -> Vec<VoteAddress> {
        let mut votes = Vec::with_capacity(self.phi.len());
        for (i, phi) in self.phi.iter().enumerate() {
            self.per_pe_transfers[i % self.num_pe] += 1;
            self.stats.transfers += 1;
            match kernel::transfer_nearest(phi, canonical, self.sensor_width, self.sensor_height)
                .address()
            {
                Some((vx, vy)) => {
                    self.stats.votes_generated += 1;
                    votes.push(VoteAddress {
                        x: vx,
                        y: vy,
                        plane: i as u16,
                    });
                }
                None => self.stats.transfers_missed += 1,
            }
        }
        votes
    }

    /// Processes a whole `Buf_I` bank (dropped events are skipped), returning
    /// the concatenated vote addresses of the frame.
    pub fn generate_frame_votes(&mut self, canonical: &[Option<PackedCoord>]) -> Vec<VoteAddress> {
        let mut votes = Vec::new();
        for c in canonical.iter().flatten() {
            votes.extend(self.generate_votes(*c));
        }
        votes
    }

    /// Execution statistics since construction.
    pub fn stats(&self) -> PeZiStats {
        self.stats
    }

    /// Plane-transfer count per physical PE (load-balance view).
    pub fn per_pe_transfers(&self) -> &[u64] {
        &self.per_pe_transfers
    }
}

/// Per-frame execution statistics of the Vote Execute Unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VoteExecuteStats {
    /// Votes applied to the DSI.
    pub votes_applied: u64,
    /// Votes whose address faulted (should be zero for a correct datapath).
    pub address_faults: u64,
    /// AXI bursts issued.
    pub bursts: u64,
}

/// Functional model of the Vote Execute Unit: applies vote addresses to the
/// DSI in DRAM as saturating read-modify-write operations, issuing
/// transaction-level AXI traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VoteExecuteDatapath {
    stats: VoteExecuteStats,
}

impl VoteExecuteDatapath {
    /// Creates an idle unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a batch of votes (one `Buf_V` drain) to the DSI.
    ///
    /// Each vote is a 2-byte read plus a 2-byte write on one of the AXI-HP
    /// ports; votes are interleaved over the ports round-robin.
    pub fn execute(
        &mut self,
        votes: &[VoteAddress],
        dram: &mut DsiDram,
        axi: &mut AxiHpInterconnect,
    ) -> VoteExecuteStats {
        let width = dram.width();
        let height = dram.height();
        let mut batch = VoteExecuteStats::default();
        for vote in votes {
            let addr = vote.linear(width, height);
            axi.issue(AxiBurst::read(addr * 2, 1, 2));
            axi.issue(AxiBurst::write(addr * 2, 1, 2));
            batch.bursts += 2;
            match dram.vote(addr) {
                Some(_) => batch.votes_applied += 1,
                None => batch.address_faults += 1,
            }
        }
        self.stats.votes_applied += batch.votes_applied;
        self.stats.address_faults += batch.address_faults;
        self.stats.bursts += batch.bursts;
        batch
    }

    /// Statistics accumulated over all batches.
    pub fn stats(&self) -> VoteExecuteStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_registers() -> HomographyRegisters {
        HomographyRegisters::from_matrix(&[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    }

    #[test]
    fn homography_registers_round_trip_raw_words() {
        let h = HomographyRegisters::from_matrix(&[
            [1.25, -0.5, 3.0],
            [0.0, 0.875, -2.5],
            [0.001, 0.002, 1.0],
        ]);
        let words = h.raw_words();
        let back = HomographyRegisters::from_raw_words(words);
        assert_eq!(h, back);
        assert!((h.entry(0, 0) - 1.25).abs() < 1e-6);
        assert!((h.entry(2, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn identity_homography_passes_coordinates_through() {
        let h = identity_registers();
        let mut pe = PeZ0Datapath::new();
        let input = PackedCoord::from_f64(120.5, 89.25);
        let out = pe.project(&h, input.to_word()).unwrap();
        assert_eq!(out, input);
        assert_eq!(pe.events_processed(), 1);
        assert_eq!(pe.events_dropped(), 0);
    }

    #[test]
    fn degenerate_projection_is_dropped() {
        // A homography whose third row annihilates the input maps it to
        // infinity; the projection-missing judgement must drop it.
        let h =
            HomographyRegisters::from_matrix(&[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 0.0]]);
        let mut pe = PeZ0Datapath::new();
        assert!(pe
            .project(&h, PackedCoord::from_f64(10.0, 10.0).to_word())
            .is_none());
        assert_eq!(pe.events_dropped(), 1);
    }

    #[test]
    fn out_of_transport_range_projection_is_dropped() {
        // Scaling by 8 pushes a 100-pixel coordinate far beyond the Q9.7
        // range.
        let h =
            HomographyRegisters::from_matrix(&[[8.0, 0.0, 0.0], [0.0, 8.0, 0.0], [0.0, 0.0, 1.0]]);
        let mut pe = PeZ0Datapath::new();
        assert!(pe
            .project(&h, PackedCoord::from_f64(100.0, 10.0).to_word())
            .is_none());
        assert_eq!(pe.events_dropped(), 1);
    }

    #[test]
    fn frame_projection_preserves_order_and_length() {
        let h = identity_registers();
        let mut pe = PeZ0Datapath::new();
        let words: Vec<u32> = (0..16)
            .map(|i| PackedCoord::from_f64(i as f64 * 10.0, 5.0).to_word())
            .collect();
        let out = pe.project_frame(&h, &words);
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(Option::is_some));
        assert_eq!(out[3].unwrap().x_f64(), 30.0);
    }

    #[test]
    fn phi_entry_round_trips_raw_words() {
        let phi = PhiEntry::from_f64(0.75, 12.5, -3.25);
        let back = PhiEntry::from_raw_words(phi.raw_words());
        assert_eq!(phi, back);
    }

    #[test]
    fn pe_zi_identity_transfer_votes_every_plane() {
        let phi = vec![PhiEntry::from_f64(1.0, 0.0, 0.0); 10];
        let mut array = PeZiArrayDatapath::new(phi, 2, 240, 180);
        let votes = array.generate_votes(PackedCoord::from_f64(30.0, 40.0));
        assert_eq!(votes.len(), 10);
        assert!(votes
            .iter()
            .enumerate()
            .all(|(i, v)| v.plane as usize == i && v.x == 30 && v.y == 40));
        let stats = array.stats();
        assert_eq!(stats.transfers, 10);
        assert_eq!(stats.votes_generated, 10);
        assert_eq!(stats.transfers_missed, 0);
        // Planes are distributed evenly over the two PEs.
        assert_eq!(array.per_pe_transfers(), &[5, 5]);
    }

    #[test]
    fn pe_zi_out_of_sensor_transfers_are_missed() {
        // A large offset pushes every plane projection outside the sensor.
        let phi = vec![PhiEntry::from_f64(1.0, 500.0, 0.0); 4];
        let mut array = PeZiArrayDatapath::new(phi, 1, 240, 180);
        let votes = array.generate_votes(PackedCoord::from_f64(30.0, 40.0));
        assert!(votes.is_empty());
        assert_eq!(array.stats().transfers_missed, 4);
    }

    #[test]
    fn frame_votes_skip_dropped_events() {
        let phi = vec![PhiEntry::from_f64(1.0, 0.0, 0.0); 3];
        let mut array = PeZiArrayDatapath::new(phi, 1, 240, 180);
        let canonical = vec![
            Some(PackedCoord::from_f64(1.0, 1.0)),
            None,
            Some(PackedCoord::from_f64(2.0, 2.0)),
        ];
        let votes = array.generate_frame_votes(&canonical);
        assert_eq!(votes.len(), 6);
        assert_eq!(array.num_planes(), 3);
        assert_eq!(array.num_pe(), 1);
    }

    #[test]
    fn vote_addresses_match_dram_layout() {
        let v = VoteAddress {
            x: 3,
            y: 2,
            plane: 1,
        };
        let dram = DsiDram::new(10, 5, 4);
        assert_eq!(Some(v.linear(10, 5)), dram.linear_address(3, 2, 1));
    }

    #[test]
    fn vote_execute_applies_and_counts() {
        let mut dram = DsiDram::new(16, 16, 4);
        let mut axi = AxiHpInterconnect::new(2);
        let mut unit = VoteExecuteDatapath::new();
        let votes = vec![
            VoteAddress {
                x: 1,
                y: 1,
                plane: 0,
            },
            VoteAddress {
                x: 1,
                y: 1,
                plane: 0,
            },
            VoteAddress {
                x: 5,
                y: 3,
                plane: 2,
            },
        ];
        let batch = unit.execute(&votes, &mut dram, &mut axi);
        assert_eq!(batch.votes_applied, 3);
        assert_eq!(batch.address_faults, 0);
        assert_eq!(batch.bursts, 6);
        assert_eq!(dram.score(1, 1, 0), Some(2));
        assert_eq!(dram.score(5, 3, 2), Some(1));
        assert_eq!(unit.stats().votes_applied, 3);
        assert_eq!(axi.aggregate_stats().transactions(), 6);
        assert_eq!(axi.aggregate_stats().total_bytes(), 12);
    }

    #[test]
    #[should_panic]
    fn zero_pe_array_panics() {
        let _ = PeZiArrayDatapath::new(vec![], 0, 240, 180);
    }
}
