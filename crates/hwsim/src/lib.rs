//! # eventor-hwsim
//!
//! A cycle-approximate model of the **Eventor** FPGA accelerator platform
//! (Xilinx Zynq XC7Z020, 130 MHz fabric clock, 32-bit DDR3-533), standing in
//! for the hand-optimized RTL prototype the paper evaluates:
//!
//! * [`AcceleratorConfig`] — the architectural knobs (number of `PE_Zi`,
//!   frame size, depth planes, double buffering, AXI-HP ports),
//! * [`PeZ0`], [`PeZiArray`], [`VoteExecuteUnit`] — per-module timing,
//! * [`frame_timing`] / [`performance`] — the frame-pipelined schedule of
//!   Fig. 6 and the Table 3 performance numbers,
//! * [`estimate_resources`] — the Table 2 LUT/FF/BRAM utilization,
//! * [`PowerModel`] / [`EnergyComparison`] — the Table 3 power row and the
//!   24× energy-efficiency headline.
//!
//! The per-component costs and memory-efficiency factors are calibrated
//! against the paper's published prototype figures; scaling experiments
//! (more PEs, different plane counts, no double buffering) extrapolate from
//! that calibration. See `docs/ARCHITECTURE.md` (section 4) for the
//! golden-model-versus-device co-simulation lifecycle this crate's
//! functional datapath participates in.
//!
//! ## Example
//!
//! ```
//! use eventor_hwsim::{performance, AcceleratorConfig};
//!
//! let perf = performance(&AcceleratorConfig::default());
//! // The prototype processes ~1.86 million events per second (Table 3).
//! assert!(perf.event_rate_normal > 1.7e6 && perf.event_rate_normal < 2.0e6);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod activity;
mod axi;
mod datapath;
mod device;
mod dma;
mod dram;
mod energy;
mod fsm;
mod memory;
mod pe;
mod registers;
mod resources;
mod schedule;
mod timing;

pub use activity::{ActivityEnergyModel, EnergyBreakdown};
pub use axi::{AxiBurst, AxiDirection, AxiHpInterconnect, AxiPort, AxiPortStats};
pub use datapath::{
    HomographyRegisters, PeZ0Datapath, PeZiArrayDatapath, PeZiStats, PhiEntry, VoteAddress,
    VoteExecuteDatapath, VoteExecuteStats,
};
pub use device::{DeviceStats, EventorDevice, FrameExecution, FrameJob};
pub use dma::{DmaDescriptor, DmaEngine, DmaStats, DmaTarget};
pub use dram::{DramStats, DsiDram, VoxelAddress};
pub use energy::{EnergyComparison, PowerModel, INTEL_I5_POWER_W};
pub use fsm::{CanonicalState, FrameTrace, PipelineSimulator, PipelineTrace, ProportionalState};
pub use memory::{Bram, BufferInventory, DmaModel, DoubleBuffer, DramDsiModel};
pub use pe::{proportional_module_cycles, PeZ0, PeZiArray, VoteExecuteUnit};
pub use registers::{ctrl, status, Register, RegisterFile, REGISTER_COUNT};
pub use resources::{estimate_resources, ComponentCost, DevceCapacity, ResourceReport, XC7Z020};
pub use schedule::{
    frame_timing, performance, sequence_runtime_seconds, AcceleratorPerformance, FrameKind,
    FrameTiming,
};
pub use timing::{AcceleratorConfig, ClockDomain, Cycles};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn key_frames_never_faster_than_normal_frames(
            n_pe in 1usize..8,
            planes in 2usize..200,
            events in 64usize..4096,
        ) {
            let config = AcceleratorConfig::default()
                .with_pe_zi(n_pe)
                .with_depth_planes(planes)
                .with_events_per_frame(events);
            let normal = frame_timing(&config, FrameKind::Normal);
            let key = frame_timing(&config, FrameKind::Key);
            prop_assert!(key.total_cycles >= normal.total_cycles);
            prop_assert!(normal.total_cycles >= normal.proportional_cycles);
        }

        #[test]
        fn adding_pe_zi_never_slows_the_frame(
            planes in 2usize..200,
            events in 64usize..4096,
        ) {
            let base = AcceleratorConfig::default()
                .with_depth_planes(planes)
                .with_events_per_frame(events);
            let mut prev = frame_timing(&base.clone().with_pe_zi(1), FrameKind::Normal).total_cycles;
            for n in 2..6 {
                let cur = frame_timing(&base.clone().with_pe_zi(n), FrameKind::Normal).total_cycles;
                prop_assert!(cur <= prev, "{} PEs slower than {}", n, n - 1);
                prev = cur;
            }
        }

        #[test]
        fn resource_estimate_scales_monotonically(n_pe in 1usize..8) {
            let smaller = estimate_resources(&AcceleratorConfig::default().with_pe_zi(n_pe));
            let larger = estimate_resources(&AcceleratorConfig::default().with_pe_zi(n_pe + 1));
            prop_assert!(larger.total_luts() > smaller.total_luts());
            prop_assert!(larger.total_flip_flops() > smaller.total_flip_flops());
        }

        #[test]
        fn power_stays_far_below_cpu(n_pe in 1usize..8, planes in 2usize..200) {
            let config = AcceleratorConfig::default().with_pe_zi(n_pe).with_depth_planes(planes);
            let p = PowerModel::default().accelerator_power_w(&config, &estimate_resources(&config));
            prop_assert!(p > 1.0 && p < 6.0, "power {}", p);
            prop_assert!(p < INTEL_I5_POWER_W / 5.0);
        }
    }
}
