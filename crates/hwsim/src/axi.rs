//! Transaction-level model of the AXI interconnect between the programmable
//! logic and the PS memory system.
//!
//! Two kinds of ports are modelled, matching the Zynq-7000 fabric:
//!
//! * the **AXI-GP/DMA path** used to stream event frames and per-frame
//!   parameters into the on-chip buffers (`Buf_E`, `Buf_P`, `Buf_H`), and
//! * the **AXI-HP ports** used by the Vote Execute Unit for the DSI
//!   read-modify-write traffic against DDR3.
//!
//! The model is transaction-level, not signal-level: a burst is charged an
//! issue latency plus a payload time derived from the port's sustainable
//! bandwidth, and an interconnect distributes bursts over the available HP
//! ports round-robin. The counters it accumulates (bytes, transactions, busy
//! cycles) are what the energy model and the Table 3 runtime breakdown
//! consume.

use crate::timing::Cycles;

/// Direction of an AXI burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxiDirection {
    /// Memory-to-fabric transfer (read from DDR).
    Read,
    /// Fabric-to-memory transfer (write to DDR).
    Write,
}

/// One AXI burst transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiBurst {
    /// Byte address of the first beat.
    pub address: u64,
    /// Number of data beats in the burst (AXI allows up to 256).
    pub beats: u32,
    /// Bytes per beat (the HP ports are 64-bit, the GP port 32-bit).
    pub bytes_per_beat: u32,
    /// Transfer direction.
    pub direction: AxiDirection,
}

impl AxiBurst {
    /// Creates a read burst.
    pub fn read(address: u64, beats: u32, bytes_per_beat: u32) -> Self {
        Self {
            address,
            beats,
            bytes_per_beat,
            direction: AxiDirection::Read,
        }
    }

    /// Creates a write burst.
    pub fn write(address: u64, beats: u32, bytes_per_beat: u32) -> Self {
        Self {
            address,
            beats,
            bytes_per_beat,
            direction: AxiDirection::Write,
        }
    }

    /// Payload size of the burst in bytes.
    pub fn bytes(&self) -> u64 {
        self.beats as u64 * self.bytes_per_beat as u64
    }
}

/// Accumulated traffic counters of one AXI port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AxiPortStats {
    /// Number of read bursts issued.
    pub read_transactions: u64,
    /// Number of write bursts issued.
    pub write_transactions: u64,
    /// Bytes read from memory.
    pub bytes_read: u64,
    /// Bytes written to memory.
    pub bytes_written: u64,
    /// Fabric cycles the port spent busy.
    pub busy_cycles: Cycles,
}

impl AxiPortStats {
    /// Total bursts issued.
    pub fn transactions(&self) -> u64 {
        self.read_transactions + self.write_transactions
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// A single AXI master port with a fixed issue latency and sustainable
/// bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct AxiPort {
    name: String,
    /// Cycles of address/handshake latency charged per burst.
    issue_latency: Cycles,
    /// Sustainable payload bandwidth, bytes per fabric cycle.
    bytes_per_cycle: f64,
    stats: AxiPortStats,
}

impl AxiPort {
    /// Creates a port.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive.
    pub fn new(name: impl Into<String>, issue_latency: Cycles, bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "AXI port bandwidth must be positive");
        Self {
            name: name.into(),
            issue_latency,
            bytes_per_cycle,
            stats: AxiPortStats::default(),
        }
    }

    /// A 64-bit AXI-HP port as configured on the XC7Z020 (high-performance
    /// path into the DDR controller).
    pub fn hp_default(index: usize) -> Self {
        Self::new(format!("AXI_HP{index}"), 12, 4.0)
    }

    /// The general-purpose DMA path used for input streaming.
    pub fn gp_dma_default() -> Self {
        Self::new("AXI_GP_DMA", 20, 4.0)
    }

    /// The port's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issues a burst on this port and returns the cycles it occupies the
    /// port.
    pub fn issue(&mut self, burst: AxiBurst) -> Cycles {
        let payload_cycles = (burst.bytes() as f64 / self.bytes_per_cycle).ceil() as Cycles;
        let cycles = self.issue_latency + payload_cycles;
        match burst.direction {
            AxiDirection::Read => {
                self.stats.read_transactions += 1;
                self.stats.bytes_read += burst.bytes();
            }
            AxiDirection::Write => {
                self.stats.write_transactions += 1;
                self.stats.bytes_written += burst.bytes();
            }
        }
        self.stats.busy_cycles += cycles;
        cycles
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> AxiPortStats {
        self.stats
    }

    /// Fraction of `elapsed_cycles` the port spent busy.
    pub fn utilization(&self, elapsed_cycles: Cycles) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        self.stats.busy_cycles as f64 / elapsed_cycles as f64
    }

    /// Clears the traffic counters.
    pub fn clear_stats(&mut self) {
        self.stats = AxiPortStats::default();
    }
}

/// The set of AXI-HP ports available to the Vote Execute Unit, with
/// round-robin distribution of bursts.
#[derive(Debug, Clone, PartialEq)]
pub struct AxiHpInterconnect {
    ports: Vec<AxiPort>,
    next: usize,
}

impl AxiHpInterconnect {
    /// Creates an interconnect with `num_ports` default HP ports.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports` is zero.
    pub fn new(num_ports: usize) -> Self {
        assert!(num_ports > 0, "need at least one AXI-HP port");
        Self {
            ports: (0..num_ports).map(AxiPort::hp_default).collect(),
            next: 0,
        }
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Issues a burst on the next port in round-robin order.
    ///
    /// Returns the index of the port used and the cycles the burst occupied
    /// it. Because the ports operate concurrently, the *pipeline* cost of a
    /// stream of bursts is roughly `busy_cycles / num_ports`; the caller
    /// decides how to fold that into its schedule.
    pub fn issue(&mut self, burst: AxiBurst) -> (usize, Cycles) {
        let index = self.next;
        self.next = (self.next + 1) % self.ports.len();
        let cycles = self.ports[index].issue(burst);
        (index, cycles)
    }

    /// The ports of the interconnect.
    pub fn ports(&self) -> &[AxiPort] {
        &self.ports
    }

    /// Aggregate statistics over all ports.
    pub fn aggregate_stats(&self) -> AxiPortStats {
        let mut total = AxiPortStats::default();
        for p in &self.ports {
            let s = p.stats();
            total.read_transactions += s.read_transactions;
            total.write_transactions += s.write_transactions;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.busy_cycles += s.busy_cycles;
        }
        total
    }

    /// Effective cycles a stream of bursts occupies the interconnect, given
    /// that the ports work in parallel.
    pub fn parallel_cycles(&self) -> Cycles {
        let busy = self.aggregate_stats().busy_cycles;
        busy.div_ceil(self.ports.len() as Cycles)
    }

    /// Clears all port counters.
    pub fn clear_stats(&mut self) {
        for p in &mut self.ports {
            p.clear_stats();
        }
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_payload_sizes() {
        let b = AxiBurst::read(0x1000, 16, 8);
        assert_eq!(b.bytes(), 128);
        assert_eq!(b.direction, AxiDirection::Read);
        let w = AxiBurst::write(0x2000, 4, 4);
        assert_eq!(w.bytes(), 16);
        assert_eq!(w.direction, AxiDirection::Write);
    }

    #[test]
    fn port_charges_latency_plus_payload() {
        let mut port = AxiPort::new("AXI_HP0", 10, 4.0);
        let cycles = port.issue(AxiBurst::read(0, 16, 8)); // 128 bytes
        assert_eq!(cycles, 10 + 32);
        let stats = port.stats();
        assert_eq!(stats.read_transactions, 1);
        assert_eq!(stats.bytes_read, 128);
        assert_eq!(stats.busy_cycles, 42);
        assert!((port.utilization(84) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn writes_and_reads_are_tracked_separately() {
        let mut port = AxiPort::gp_dma_default();
        port.issue(AxiBurst::write(0, 8, 4));
        port.issue(AxiBurst::read(64, 8, 4));
        let s = port.stats();
        assert_eq!(s.read_transactions, 1);
        assert_eq!(s.write_transactions, 1);
        assert_eq!(s.total_bytes(), 64);
        assert_eq!(s.transactions(), 2);
        port.clear_stats();
        assert_eq!(port.stats(), AxiPortStats::default());
        assert_eq!(port.name(), "AXI_GP_DMA");
    }

    #[test]
    fn interconnect_round_robins_over_ports() {
        let mut ic = AxiHpInterconnect::new(2);
        let (p0, _) = ic.issue(AxiBurst::read(0, 1, 8));
        let (p1, _) = ic.issue(AxiBurst::read(8, 1, 8));
        let (p2, _) = ic.issue(AxiBurst::read(16, 1, 8));
        assert_eq!((p0, p1, p2), (0, 1, 0));
        assert_eq!(ic.num_ports(), 2);
        assert_eq!(ic.aggregate_stats().read_transactions, 3);
    }

    #[test]
    fn parallel_cycles_divide_busy_time_across_ports() {
        let mut one = AxiHpInterconnect::new(1);
        let mut two = AxiHpInterconnect::new(2);
        for i in 0..8 {
            one.issue(AxiBurst::write(i * 64, 8, 8));
            two.issue(AxiBurst::write(i * 64, 8, 8));
        }
        assert_eq!(one.parallel_cycles(), two.parallel_cycles() * 2);
        two.clear_stats();
        assert_eq!(two.parallel_cycles(), 0);
    }

    #[test]
    fn utilization_of_idle_port_is_zero() {
        let port = AxiPort::hp_default(1);
        assert_eq!(port.utilization(0), 0.0);
        assert_eq!(port.utilization(100), 0.0);
        assert_eq!(port.name(), "AXI_HP1");
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_port_panics() {
        let _ = AxiPort::new("bad", 1, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_interconnect_panics() {
        let _ = AxiHpInterconnect::new(0);
    }
}
