//! `eventor-cli` — the command-line front end of the scenario corpus
//! (`eventor-scenarios`, `docs/SCENARIOS.md`).
//!
//! ```text
//! eventor-cli list
//! eventor-cli generate --scenario NAME [--seed N] [--out FILE.evtr]
//! eventor-cli replay   --scenario NAME --in FILE.evtr [--seed N] [--backend B] [--expect HEX]
//! eventor-cli check    (--all | --scenario NAME) [--backend B] [--print-table]
//! ```
//!
//! * `list` prints the catalog (name, tags, default seed, description).
//! * `generate` builds a world and records it as an `eventor-evtr/1` file,
//!   printing the reconstruction digest the record must replay to.
//! * `replay` reads a record, runs it through a backend with the named
//!   scenario's configuration, and verifies the digest — against `--expect`
//!   if given, else against the committed golden.
//! * `check` re-runs scenarios from scratch and compares against the
//!   committed golden digests; the CI regression matrix runs
//!   `check --all --backend {software,sharded,serve}`. `--print-table`
//!   emits a fresh `GOLDEN_DIGESTS` table body for intentional re-records.
//!
//! Exit status is non-zero on any mismatch, so the binary doubles as a CI
//! gate without wrapper scripts.

use eventor_scenarios::{
    corpus, digest_output, find, golden_digest, run_world, BackendKind, Scenario, ScenarioWorld,
};
use std::fmt::Write as _;
use std::process::ExitCode;

fn usage() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "eventor-cli — scenario corpus driver\n");
    let _ = writeln!(s, "USAGE:");
    let _ = writeln!(s, "  eventor-cli list");
    let _ = writeln!(
        s,
        "  eventor-cli generate --scenario NAME [--seed N] [--out FILE.evtr]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli replay   --scenario NAME --in FILE.evtr [--seed N] [--backend B] [--expect HEX]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli check    (--all | --scenario NAME) [--backend B] [--print-table]"
    );
    let _ = writeln!(
        s,
        "\nBackends: software (default), sharded, cosim, serve. Digests are FNV-1a 64"
    );
    let _ = write!(
        s,
        "over the reconstruction's depth maps; goldens live in eventor-scenarios."
    );
    s
}

/// Minimal `--flag value` parser: no external dependencies, exact flags
/// only, every unknown flag is an error.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().unwrap()),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Self { positional, flags })
    }

    fn flag_value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for (n, _) in &self.flags {
            if !allowed.contains(&n.as_str()) {
                return Err(format!("unknown flag --{n}\n\n{}", usage()));
            }
        }
        Ok(())
    }
}

fn backend_from(args: &Args) -> Result<BackendKind, String> {
    match args.flag_value("backend") {
        None => Ok(BackendKind::Software),
        Some(name) => BackendKind::parse(name).ok_or_else(|| {
            format!(
                "unknown backend `{name}` (expected one of: {})",
                BackendKind::ALL.map(BackendKind::name).join(", ")
            )
        }),
    }
}

fn scenario_from(args: &Args) -> Result<&'static eventor_scenarios::CorpusScenario, String> {
    let name = args
        .flag_value("scenario")
        .ok_or_else(|| format!("--scenario NAME is required\n\n{}", usage()))?;
    find(name)
        .ok_or_else(|| format!("unknown scenario `{name}`; run `eventor-cli list` for the catalog"))
}

fn cmd_list(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[])?;
    println!(
        "{:<20} {:>10} {:<44} description",
        "scenario", "seed", "tags"
    );
    for s in corpus() {
        println!(
            "{:<20} {:>#10x} {:<44} {}",
            s.name(),
            s.default_seed(),
            s.tags().join(","),
            s.description()
        );
    }
    println!(
        "\n{} scenarios; digests recorded at each default seed.",
        corpus().len()
    );
    Ok(())
}

fn build_world(
    scenario: &dyn Scenario,
    seed: Option<&str>,
) -> Result<(ScenarioWorld, u64), String> {
    let seed = match seed {
        None => scenario.default_seed(),
        Some(text) => parse_u64(text)?,
    };
    let world = scenario
        .build(seed)
        .map_err(|e| format!("{}: build failed: {e}", scenario.name()))?;
    Ok((world, seed))
}

fn parse_u64(text: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| format!("`{text}` is not a u64 (decimal or 0x-hex)"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["scenario", "seed", "out", "backend"])?;
    let scenario = scenario_from(args)?;
    let backend = backend_from(args)?;
    let (world, seed) = build_world(scenario, args.flag_value("seed"))?;
    let output = run_world(&world, backend)
        .map_err(|e| format!("{}: reconstruction failed: {e}", scenario.name()))?;
    let digest = digest_output(&output);
    if let Some(path) = args.flag_value("out") {
        let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        eventor_events::write_evtr(&world.events, &world.trajectory, file)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "recorded {} events + {} poses -> {path} (eventor-evtr/1)",
            world.events.len(),
            world.trajectory.len()
        );
    }
    println!(
        "{}: seed {seed:#x} backend {backend} keyframes {} digest {digest:#018x}",
        scenario.name(),
        output.output.keyframes.len(),
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["scenario", "in", "seed", "backend", "expect"])?;
    let scenario = scenario_from(args)?;
    let backend = backend_from(args)?;
    let path = args
        .flag_value("in")
        .ok_or_else(|| format!("--in FILE.evtr is required\n\n{}", usage()))?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let (events, trajectory) =
        eventor_events::read_evtr(file).map_err(|e| format!("{path}: {e}"))?;
    // The record carries the inputs; the scenario contributes the camera and
    // reconstruction configuration they were recorded for — recovered
    // without rebuilding (and re-simulating) the world.
    let seed = match args.flag_value("seed") {
        None => scenario.default_seed(),
        Some(text) => parse_u64(text)?,
    };
    let (camera, config) = scenario.session_profile(seed);
    let world = ScenarioWorld {
        name: scenario.name().to_string(),
        seed,
        camera,
        trajectory,
        events,
        config,
    };
    let output = run_world(&world, backend)
        .map_err(|e| format!("{}: replay failed: {e}", scenario.name()))?;
    let digest = digest_output(&output);
    let expected = match args.flag_value("expect") {
        Some(text) => Some(parse_u64(text)?),
        None => golden_digest(scenario.name()),
    };
    match expected {
        Some(want) if want == digest => {
            println!(
                "{}: replay of {path} on {backend} reproduces digest {digest:#018x} — OK",
                scenario.name()
            );
            Ok(())
        }
        Some(want) => Err(format!(
            "{}: replay digest {digest:#018x} != expected {want:#018x}",
            scenario.name()
        )),
        None => {
            println!(
                "{}: replay digest {digest:#018x} (no golden to compare against)",
                scenario.name()
            );
            Ok(())
        }
    }
}

fn cmd_check(args: &Args) -> Result<(), String> {
    args.reject_unknown(&["all", "scenario", "backend", "print-table"])?;
    let backend = backend_from(args)?;
    let targets: Vec<&eventor_scenarios::CorpusScenario> = if args.has_flag("all") {
        corpus().iter().collect()
    } else {
        vec![scenario_from(args)?]
    };
    let mut failures = Vec::new();
    let mut table = String::new();
    for scenario in &targets {
        let (world, _) = build_world(*scenario, None)?;
        let output = run_world(&world, backend)
            .map_err(|e| format!("{}: run failed: {e}", scenario.name()))?;
        let digest = digest_output(&output);
        let _ = writeln!(table, "    ({:?}, {digest:#018x}),", scenario.name());
        match golden_digest(scenario.name()) {
            Some(want) if want == digest => {
                println!(
                    "  ok   {:<20} {backend:<9} digest {digest:#018x}",
                    scenario.name()
                );
            }
            Some(want) => {
                println!(
                    "  FAIL {:<20} {backend:<9} digest {digest:#018x} != golden {want:#018x}",
                    scenario.name()
                );
                failures.push(scenario.name());
            }
            None => {
                println!(
                    "  FAIL {:<20} {backend:<9} digest {digest:#018x} has no committed golden",
                    scenario.name()
                );
                failures.push(scenario.name());
            }
        }
    }
    if args.has_flag("print-table") {
        println!("\n// GOLDEN_DIGESTS body for crates/scenarios/src/golden.rs:");
        print!("{table}");
    }
    if failures.is_empty() {
        println!(
            "check: {} scenario(s) bit-identical on the {backend} backend",
            targets.len()
        );
        Ok(())
    } else {
        Err(format!(
            "check: {} of {} scenario(s) diverged on the {backend} backend: {}",
            failures.len(),
            targets.len(),
            failures.join(", ")
        ))
    }
}

fn run() -> Result<(), String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return Err(usage());
    }
    let command = raw.remove(0);
    let args = Args::parse(raw)?;
    if !args.positional.is_empty() {
        return Err(format!(
            "unexpected argument `{}`\n\n{}",
            args.positional[0],
            usage()
        ));
    }
    match command.as_str() {
        "list" => cmd_list(&args),
        "generate" => cmd_generate(&args),
        "replay" => cmd_replay(&args),
        "check" => cmd_check(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
