//! `eventor-cli` — the command-line front end of the scenario corpus
//! (`eventor-scenarios`, `docs/SCENARIOS.md`).
//!
//! ```text
//! eventor-cli list
//! eventor-cli generate --scenario NAME [--seed N] [--out FILE.evtr]
//! eventor-cli replay   --scenario NAME --in FILE.evtr [--seed N] [--backend B] [--expect HEX]
//! eventor-cli check    (--all | --scenario NAME | --spec FILE) [--backend B] [--print-table]
//! eventor-cli fuzz     --seed N [--count N] [--max-events N] [--backend B]...
//!                      [--invariant NAME]... [--report FILE] [--minimize-dir DIR] [--no-minimize]
//! eventor-cli minimize --spec FILE [--backend B] [--invariant NAME] [--out FILE]
//! eventor-cli serve    [--addr ADDR] [--workers N] [--port-file FILE]
//!                      [--max-conns N] [--keepalive SECS]
//! eventor-cli connect  --addr ADDR (--scenario NAME [--seed N] | --spec FILE)
//!                      [--backend B] [--expect HEX]
//! eventor-cli checkpoint --scenario NAME --out FILE.evtr [--seed N] [--backend B] [--events N]
//! eventor-cli resume   --in FILE.evtr [--backend B] [--check] [--expect HEX]
//! ```
//!
//! * `list` prints the catalog (name, tags, default seed, description).
//! * `generate` builds a world and records it as an `eventor-evtr/1` file,
//!   printing the reconstruction digest the record must replay to.
//! * `replay` reads a record, runs it through a backend with the named
//!   scenario's configuration, and verifies the digest — against `--expect`
//!   if given, else against the committed golden.
//! * `check` re-runs scenarios from scratch and compares against the
//!   committed golden digests; the CI regression matrix runs
//!   `check --all --backend {software,sharded,serve}`. `--print-table`
//!   emits a fresh `GOLDEN_DIGESTS` table body for intentional re-records.
//!   `--spec FILE` instead checks one `eventor-fuzzworld/1` spec against its
//!   pinned golden (the committed-regression path).
//! * `fuzz` runs a seeded generative campaign: `--count` worlds (scaled by
//!   `PROPTEST_CASES_MULTIPLIER`) are generated from `--seed`, every
//!   metamorphic invariant (F.1-F.5, `docs/SCENARIOS.md` §8) is checked, and
//!   violations are auto-minimized. The machine-readable `eventor-fuzz/1`
//!   JSON report goes to stdout (and `--report FILE`); minimized
//!   reproductions go to `--minimize-dir` as `.fuzzworld` files. Output is
//!   bit-reproducible: same seed, count and environment — same bytes.
//! * `minimize` shrinks one failing `.fuzzworld` spec along the generator
//!   axes and emits the minimized spec (stdout or `--out`).
//! * `serve` binds an `eventor-wire/1` TCP server (`docs/WIRE.md`) over the
//!   multi-session serving engine and runs until killed. It prints
//!   `listening on ADDR` once ready; `--addr 127.0.0.1:0` picks a free
//!   loopback port (recover it from the printed line or `--port-file`).
//! * `connect` streams one scenario (or `.fuzzworld` spec) to a running
//!   server, recomputes the digest from the depth maps streamed back, and
//!   verifies server digest == client digest == the expected golden.
//! * `checkpoint` runs a scenario stream partway (`--events`, default half)
//!   through a backend and records the mid-flight session as an
//!   `eventor-evtr/1` `CKPT` container, embedding the scenario and seed as
//!   the resume origin.
//! * `resume` restores a `CKPT` container (on the recorded backend unless
//!   `--backend` overrides), regenerates the origin scenario's stream,
//!   replays the remainder, and prints the final digest; `--check` verifies
//!   it against the committed golden — the kill-and-restore drill CI runs.
//!
//! Exit codes are distinct and stable (`docs/SCENARIOS.md` §9): 0 success,
//! 1 usage or internal error, 2 digest mismatch or invariant violation,
//! 3 unknown scenario, 4 invalid or truncated record/spec, 5 wire-protocol
//! error (typed server rejection, corrupt frame), 6 network failure
//! (connect refused, connection lost, timeout), 7 checkpoint error (a
//! structurally invalid checkpoint payload inside an intact container, or a
//! snapshot/restore the session layer refuses).

use eventor_core::SessionCheckpoint;
use eventor_emvs::EmvsError;
use eventor_net::{
    KeepaliveConfig, ManifestSource, NetConfig, SessionManifest, WireClient, WireError, WireServer,
};
use eventor_scenarios::{
    builder_for_profile, check_invariant, corpus, digest_output, digest_world, find, golden_digest,
    minimize_spec, run_fuzz, run_world, session_for_profile, BackendKind, FuzzOptions, FuzzReport,
    Invariant, Scenario, ScenarioError, ScenarioWorld, Violation, WorldSpec,
};
use eventor_serve::{LoadShape, ServeConfig};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Exit code: bad flags, missing arguments, or an internal failure.
const CODE_USAGE: u8 = 1;
/// Exit code: a digest mismatch or a caught invariant violation.
const CODE_MISMATCH: u8 = 2;
/// Exit code: a scenario name that is not in the corpus.
const CODE_UNKNOWN_SCENARIO: u8 = 3;
/// Exit code: an `.evtr` record or `.fuzzworld` spec that failed to parse.
const CODE_BAD_RECORD: u8 = 4;
/// Exit code: an `eventor-wire/1` protocol error (typed server rejection,
/// corrupt or unexpected frame).
const CODE_WIRE: u8 = 5;
/// Exit code: a network failure (connect refused, connection lost, reply
/// timeout).
const CODE_NET: u8 = 6;
/// Exit code: a checkpoint error — a structurally invalid `CKPT` payload
/// inside an intact container, or a snapshot/restore the session layer
/// refuses (incompatible backend, inconsistent state). Distinct from
/// [`CODE_BAD_RECORD`], which covers container-level corruption.
const CODE_CHECKPOINT: u8 = 7;

/// An error carrying its process exit code.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            code: CODE_USAGE,
            message: message.into(),
        }
    }

    fn mismatch(message: impl Into<String>) -> Self {
        Self {
            code: CODE_MISMATCH,
            message: message.into(),
        }
    }

    fn unknown_scenario(message: impl Into<String>) -> Self {
        Self {
            code: CODE_UNKNOWN_SCENARIO,
            message: message.into(),
        }
    }

    fn bad_record(message: impl Into<String>) -> Self {
        Self {
            code: CODE_BAD_RECORD,
            message: message.into(),
        }
    }

    fn checkpoint(message: impl Into<String>) -> Self {
        Self {
            code: CODE_CHECKPOINT,
            message: message.into(),
        }
    }

    /// Maps a session-layer error: checkpoint refusals keep their own exit
    /// code (exit 7); everything else is internal (exit 1).
    fn from_emvs(context: &str, e: EmvsError) -> Self {
        match e {
            EmvsError::Checkpoint { .. } => Self::checkpoint(format!("{context}: {e}")),
            _ => Self::usage(format!("{context}: {e}")),
        }
    }

    /// Maps a scenario-layer error: spec problems are record problems
    /// (exit 4); everything else is internal (exit 1).
    fn from_scenario(context: &str, e: ScenarioError) -> Self {
        match e {
            ScenarioError::Spec { .. } => Self::bad_record(format!("{context}: {e}")),
            _ => Self::usage(format!("{context}: {e}")),
        }
    }

    /// Maps a wire-layer error: transport failures (refused, lost, timed
    /// out) are network errors (exit 6); everything else — typed server
    /// rejections, corrupt frames, state-machine violations — is a wire
    /// error (exit 5).
    fn from_wire(context: &str, e: WireError) -> Self {
        let code = match e {
            WireError::Io { .. } | WireError::ConnectionClosed | WireError::Timeout { .. } => {
                CODE_NET
            }
            _ => CODE_WIRE,
        };
        Self {
            code,
            message: format!("{context}: {e}"),
        }
    }
}

fn usage() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "eventor-cli — scenario corpus driver\n");
    let _ = writeln!(s, "USAGE:");
    let _ = writeln!(s, "  eventor-cli list");
    let _ = writeln!(
        s,
        "  eventor-cli generate --scenario NAME [--seed N] [--out FILE.evtr]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli replay   --scenario NAME --in FILE.evtr [--seed N] [--backend B] [--expect HEX]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli check    (--all | --scenario NAME | --spec FILE) [--backend B] [--print-table]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli fuzz     --seed N [--count N] [--max-events N] [--backend B]..."
    );
    let _ = writeln!(
        s,
        "                       [--invariant NAME]... [--report FILE] [--minimize-dir DIR] [--no-minimize]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli minimize --spec FILE [--backend B] [--invariant NAME] [--out FILE]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli serve    [--addr ADDR] [--workers N] [--port-file FILE]"
    );
    let _ = writeln!(
        s,
        "                       [--max-conns N] [--keepalive SECS (0 = off)]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli connect  --addr ADDR (--scenario NAME [--seed N] | --spec FILE)"
    );
    let _ = writeln!(s, "                       [--backend B] [--expect HEX]");
    let _ = writeln!(
        s,
        "  eventor-cli checkpoint --scenario NAME --out FILE.evtr [--seed N] [--backend B] [--events N]"
    );
    let _ = writeln!(
        s,
        "  eventor-cli resume   --in FILE.evtr [--backend B] [--check] [--expect HEX]"
    );
    let _ = writeln!(
        s,
        "\nBackends: software (default), sharded, cosim, serve. Digests are FNV-1a 64"
    );
    let _ = writeln!(
        s,
        "over the reconstruction's depth maps; goldens live in eventor-scenarios."
    );
    let _ = write!(
        s,
        "Exit codes: 0 ok, 1 usage/internal, 2 mismatch/violation, 3 unknown scenario,\n4 bad record, 5 wire-protocol error, 6 network failure, 7 checkpoint error."
    );
    s
}

/// Minimal `--flag value` parser: no external dependencies, exact flags
/// only, every unknown flag is an error.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().unwrap()),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Self { positional, flags })
    }

    fn flag_value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Every value of a repeatable flag, in order.
    fn flag_values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), CliError> {
        for (n, _) in &self.flags {
            if !allowed.contains(&n.as_str()) {
                return Err(CliError::usage(format!(
                    "unknown flag --{n}\n\n{}",
                    usage()
                )));
            }
        }
        Ok(())
    }
}

fn backend_from(args: &Args) -> Result<BackendKind, CliError> {
    match args.flag_value("backend") {
        None => Ok(BackendKind::Software),
        Some(name) => parse_backend(name),
    }
}

fn parse_backend(name: &str) -> Result<BackendKind, CliError> {
    BackendKind::parse(name).ok_or_else(|| {
        CliError::usage(format!(
            "unknown backend `{name}` (expected one of: {})",
            BackendKind::ALL.map(BackendKind::name).join(", ")
        ))
    })
}

fn parse_invariant(name: &str) -> Result<Invariant, CliError> {
    Invariant::parse(name).ok_or_else(|| {
        CliError::usage(format!(
            "unknown invariant `{name}` (expected one of: {})",
            Invariant::ALL.map(Invariant::name).join(", ")
        ))
    })
}

fn scenario_from(args: &Args) -> Result<&'static eventor_scenarios::CorpusScenario, CliError> {
    let name = args
        .flag_value("scenario")
        .ok_or_else(|| CliError::usage(format!("--scenario NAME is required\n\n{}", usage())))?;
    find(name).ok_or_else(|| {
        CliError::unknown_scenario(format!(
            "unknown scenario `{name}`; run `eventor-cli list` for the catalog"
        ))
    })
}

fn cmd_list(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[])?;
    println!(
        "{:<20} {:>10} {:<44} description",
        "scenario", "seed", "tags"
    );
    for s in corpus() {
        println!(
            "{:<20} {:>#10x} {:<44} {}",
            s.name(),
            s.default_seed(),
            s.tags().join(","),
            s.description()
        );
    }
    println!(
        "\n{} scenarios; digests recorded at each default seed.",
        corpus().len()
    );
    Ok(())
}

fn build_world(
    scenario: &dyn Scenario,
    seed: Option<&str>,
) -> Result<(ScenarioWorld, u64), CliError> {
    let seed = match seed {
        None => scenario.default_seed(),
        Some(text) => parse_u64(text)?,
    };
    let world = scenario
        .build(seed)
        .map_err(|e| CliError::usage(format!("{}: build failed: {e}", scenario.name())))?;
    Ok((world, seed))
}

fn parse_u64(text: &str) -> Result<u64, CliError> {
    let parsed = if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| CliError::usage(format!("`{text}` is not a u64 (decimal or 0x-hex)")))
}

fn parse_usize(text: &str) -> Result<usize, CliError> {
    text.parse()
        .map_err(|_| CliError::usage(format!("`{text}` is not a count")))
}

fn cmd_generate(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["scenario", "seed", "out", "backend"])?;
    let scenario = scenario_from(args)?;
    let backend = backend_from(args)?;
    let (world, seed) = build_world(scenario, args.flag_value("seed"))?;
    let output = run_world(&world, backend)
        .map_err(|e| CliError::usage(format!("{}: reconstruction failed: {e}", scenario.name())))?;
    let digest = digest_output(&output);
    if let Some(path) = args.flag_value("out") {
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::usage(format!("cannot create {path}: {e}")))?;
        eventor_events::write_evtr(&world.events, &world.trajectory, file)
            .map_err(|e| CliError::usage(format!("cannot write {path}: {e}")))?;
        println!(
            "recorded {} events + {} poses -> {path} (eventor-evtr/1)",
            world.events.len(),
            world.trajectory.len()
        );
    }
    println!(
        "{}: seed {seed:#x} backend {backend} keyframes {} digest {digest:#018x}",
        scenario.name(),
        output.output.keyframes.len(),
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["scenario", "in", "seed", "backend", "expect"])?;
    let scenario = scenario_from(args)?;
    let backend = backend_from(args)?;
    let path = args
        .flag_value("in")
        .ok_or_else(|| CliError::usage(format!("--in FILE.evtr is required\n\n{}", usage())))?;
    let file = std::fs::File::open(path)
        .map_err(|e| CliError::usage(format!("cannot open {path}: {e}")))?;
    // A record that fails to parse — truncated, corrupt, version-skewed —
    // is its own failure class (exit 4), distinct from a digest mismatch.
    let (events, trajectory) = eventor_events::read_evtr(file)
        .map_err(|e| CliError::bad_record(format!("{path}: {e}")))?;
    // The record carries the inputs; the scenario contributes the camera and
    // reconstruction configuration they were recorded for — recovered
    // without rebuilding (and re-simulating) the world.
    let seed = match args.flag_value("seed") {
        None => scenario.default_seed(),
        Some(text) => parse_u64(text)?,
    };
    let (camera, config) = scenario.session_profile(seed);
    let world = ScenarioWorld {
        name: scenario.name().to_string(),
        seed,
        camera,
        trajectory,
        events,
        config,
    };
    let output = run_world(&world, backend)
        .map_err(|e| CliError::usage(format!("{}: replay failed: {e}", scenario.name())))?;
    let digest = digest_output(&output);
    let expected = match args.flag_value("expect") {
        Some(text) => Some(parse_u64(text)?),
        None => golden_digest(scenario.name()),
    };
    match expected {
        Some(want) if want == digest => {
            println!(
                "{}: replay of {path} on {backend} reproduces digest {digest:#018x} — OK",
                scenario.name()
            );
            Ok(())
        }
        Some(want) => Err(CliError::mismatch(format!(
            "{}: replay digest {digest:#018x} != expected {want:#018x}",
            scenario.name()
        ))),
        None => {
            println!(
                "{}: replay digest {digest:#018x} (no golden to compare against)",
                scenario.name()
            );
            Ok(())
        }
    }
}

/// `check --spec FILE`: one committed `.fuzzworld` regression against its
/// pinned golden.
fn check_spec(path: &str, backend: BackendKind) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
    let spec = WorldSpec::parse(&text).map_err(|e| CliError::bad_record(format!("{path}: {e}")))?;
    let want = spec.golden.ok_or_else(|| {
        CliError::usage(format!(
            "{path}: spec has no pinned golden digest; add one with `minimize` or the fuzzer"
        ))
    })?;
    let world = spec.build().map_err(|e| CliError::from_scenario(path, e))?;
    let digest = digest_world(&world, backend).map_err(|e| CliError::from_scenario(path, e))?;
    if digest == want {
        println!(
            "  ok   {:<40} {backend:<9} digest {digest:#018x}",
            spec.world_name()
        );
        println!("check: 1 fuzz regression bit-identical on the {backend} backend");
        Ok(())
    } else {
        Err(CliError::mismatch(format!(
            "{}: digest {digest:#018x} != golden {want:#018x} on the {backend} backend",
            spec.world_name()
        )))
    }
}

fn cmd_check(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["all", "scenario", "spec", "backend", "print-table"])?;
    let backend = backend_from(args)?;
    if let Some(path) = args.flag_value("spec") {
        return check_spec(path, backend);
    }
    let targets: Vec<&eventor_scenarios::CorpusScenario> = if args.has_flag("all") {
        corpus().iter().collect()
    } else {
        vec![scenario_from(args)?]
    };
    let mut failures = Vec::new();
    let mut table = String::new();
    for scenario in &targets {
        let (world, _) = build_world(*scenario, None)?;
        let output = run_world(&world, backend)
            .map_err(|e| CliError::usage(format!("{}: run failed: {e}", scenario.name())))?;
        let digest = digest_output(&output);
        let _ = writeln!(table, "    ({:?}, {digest:#018x}),", scenario.name());
        match golden_digest(scenario.name()) {
            Some(want) if want == digest => {
                println!(
                    "  ok   {:<20} {backend:<9} digest {digest:#018x}",
                    scenario.name()
                );
            }
            Some(want) => {
                println!(
                    "  FAIL {:<20} {backend:<9} digest {digest:#018x} != golden {want:#018x}",
                    scenario.name()
                );
                failures.push(scenario.name());
            }
            None => {
                println!(
                    "  FAIL {:<20} {backend:<9} digest {digest:#018x} has no committed golden",
                    scenario.name()
                );
                failures.push(scenario.name());
            }
        }
    }
    if args.has_flag("print-table") {
        println!("\n// GOLDEN_DIGESTS body for crates/scenarios/src/golden.rs:");
        print!("{table}");
    }
    if failures.is_empty() {
        println!(
            "check: {} scenario(s) bit-identical on the {backend} backend",
            targets.len()
        );
        Ok(())
    } else {
        Err(CliError::mismatch(format!(
            "check: {} of {} scenario(s) diverged on the {backend} backend: {}",
            failures.len(),
            targets.len(),
            failures.join(", ")
        )))
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn violation_json(v: &Violation) -> String {
    format!(
        "{{\"contract\":\"{}\",\"invariant\":\"{}\",\"world\":\"{}\",\"backend\":\"{}\",\"detail\":\"{}\"}}",
        v.invariant.contract(),
        v.invariant.name(),
        json_escape(&v.world),
        v.backend.name(),
        json_escape(&v.detail)
    )
}

/// Renders the `eventor-fuzz/1` report. Deliberately free of timestamps,
/// hostnames and paths: the same campaign must serialize to the same bytes.
fn report_json(report: &FuzzReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"format\": \"eventor-fuzz/1\",");
    let _ = writeln!(s, "  \"seed\": \"{:#018x}\",", report.seed);
    let _ = writeln!(s, "  \"count\": {},", report.count);
    let _ = writeln!(s, "  \"violations\": {},", report.violation_count());
    let _ = writeln!(s, "  \"worlds\": [");
    for (i, w) in report.worlds.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(
            s,
            "      \"name\": \"{}\",",
            json_escape(&w.spec.world_name())
        );
        let _ = writeln!(s, "      \"digest\": \"{:#018x}\",", w.digest);
        let _ = writeln!(s, "      \"spec\": \"{}\",", json_escape(&w.spec.to_text()));
        let violations: Vec<String> = w.violations.iter().map(violation_json).collect();
        let _ = writeln!(s, "      \"violations\": [{}],", violations.join(","));
        match &w.minimized {
            Some(min) => {
                let _ = writeln!(
                    s,
                    "      \"minimized\": \"{}\"",
                    json_escape(&min.to_text())
                );
            }
            None => {
                let _ = writeln!(s, "      \"minimized\": null");
            }
        }
        let comma = if i + 1 < report.worlds.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    s.push_str("}\n");
    s
}

fn cmd_fuzz(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "seed",
        "count",
        "max-events",
        "backend",
        "invariant",
        "report",
        "minimize-dir",
        "no-minimize",
    ])?;
    let seed = parse_u64(
        args.flag_value("seed")
            .ok_or_else(|| CliError::usage(format!("--seed N is required\n\n{}", usage())))?,
    )?;
    let base_count = match args.flag_value("count") {
        None => 4,
        Some(text) => parse_usize(text)?,
    };
    // Nightly CI deepens campaigns the same way it deepens proptests: one
    // multiplier environment variable scales the case count.
    let count = proptest::scaled_cases(base_count.min(u32::MAX as usize) as u32) as usize;
    let mut backends: Vec<BackendKind> = args
        .flag_values("backend")
        .into_iter()
        .map(parse_backend)
        .collect::<Result<_, _>>()?;
    if backends.is_empty() {
        backends.push(BackendKind::Software);
    }
    let mut invariants: Vec<Invariant> = args
        .flag_values("invariant")
        .into_iter()
        .map(parse_invariant)
        .collect::<Result<_, _>>()?;
    if invariants.is_empty() {
        invariants = Invariant::ALL.to_vec();
    }
    let max_events = match args.flag_value("max-events") {
        None => None,
        Some(text) => Some(parse_usize(text)?),
    };
    let options = FuzzOptions {
        backends,
        invariants,
        max_events,
        minimize: !args.has_flag("no-minimize"),
    };
    let report = run_fuzz(seed, count, &options)
        .map_err(|e| CliError::from_scenario("fuzz campaign failed", e))?;
    let json = report_json(&report);
    print!("{json}");
    if let Some(path) = args.flag_value("report") {
        std::fs::write(path, &json)
            .map_err(|e| CliError::usage(format!("cannot write {path}: {e}")))?;
    }
    if let Some(dir) = args.flag_value("minimize-dir") {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::usage(format!("cannot create {dir}: {e}")))?;
        for w in &report.worlds {
            if let Some(min) = &w.minimized {
                let path = format!("{dir}/{}.fuzzworld", min.world_name());
                std::fs::write(&path, min.to_text())
                    .map_err(|e| CliError::usage(format!("cannot write {path}: {e}")))?;
                eprintln!("minimized reproduction -> {path}");
            }
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(CliError::mismatch(format!(
            "fuzz: {} invariant violation(s) across {} world(s) (seed {seed:#x})",
            report.violation_count(),
            report.count
        )))
    }
}

fn cmd_minimize(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["spec", "backend", "invariant", "out"])?;
    let path = args
        .flag_value("spec")
        .ok_or_else(|| CliError::usage(format!("--spec FILE is required\n\n{}", usage())))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
    let spec = WorldSpec::parse(&text).map_err(|e| CliError::bad_record(format!("{path}: {e}")))?;
    let backend = backend_from(args)?;
    let invariants: Vec<Invariant> = match args.flag_value("invariant") {
        Some(name) => vec![parse_invariant(name)?],
        None => Invariant::ALL.to_vec(),
    };
    let world = spec.build().map_err(|e| CliError::from_scenario(path, e))?;
    // Find the invariant the spec actually violates; minimizing a healthy
    // spec would only shred it to the generator floors.
    let mut failing = None;
    for &invariant in &invariants {
        let verdict = check_invariant(&world, invariant, backend)
            .map_err(|e| CliError::from_scenario(path, e))?;
        if let Some(v) = verdict {
            eprintln!("reproduced: {v}");
            failing = Some(invariant);
            break;
        }
    }
    let Some(invariant) = failing else {
        println!(
            "{}: no invariant violation reproduces on the {backend} backend; nothing to minimize",
            spec.world_name()
        );
        return Ok(());
    };
    let mut fails = |probe: &WorldSpec| -> bool {
        probe
            .build()
            .ok()
            .and_then(|w| check_invariant(&w, invariant, backend).ok())
            .flatten()
            .is_some()
    };
    let mut min = minimize_spec(&spec, &mut fails);
    min.golden = min
        .build()
        .ok()
        .and_then(|w| digest_world(&w, backend).ok());
    eprintln!(
        "minimized {} -> {} (samples {} -> {}, events {} -> {}, planes {} -> {}, noise {} -> {})",
        spec.world_name(),
        min.world_name(),
        spec.samples,
        min.samples,
        spec.event_cap,
        min.event_cap,
        spec.planes,
        min.planes,
        spec.noise.len(),
        min.noise.len()
    );
    match args.flag_value("out") {
        Some(out) => {
            std::fs::write(out, min.to_text())
                .map_err(|e| CliError::usage(format!("cannot write {out}: {e}")))?;
            println!("minimized spec -> {out}");
        }
        None => print!("{}", min.to_text()),
    }
    Ok(())
}

/// `serve`: bind an `eventor-wire/1` server over the multi-session engine
/// and run until the process is killed.
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["addr", "workers", "port-file", "max-conns", "keepalive"])?;
    let addr = args.flag_value("addr").unwrap_or("127.0.0.1:0");
    let mut config = NetConfig::new();
    if let Some(workers) = args.flag_value("workers") {
        config = config.with_serve(ServeConfig::new().with_workers(parse_usize(workers)?));
    }
    if let Some(max_conns) = args.flag_value("max-conns") {
        config = config.with_max_conns(parse_usize(max_conns)?);
    }
    if let Some(keepalive) = args.flag_value("keepalive") {
        // Seconds; 0 disables idle probing entirely.
        let secs = parse_usize(keepalive)?;
        config = config.with_keepalive(if secs == 0 {
            KeepaliveConfig::disabled()
        } else {
            KeepaliveConfig::every(std::time::Duration::from_secs(secs as u64))
        });
    }
    let server = WireServer::bind(addr, config)
        .map_err(|e| CliError::from_wire(&format!("cannot bind {addr}"), e))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::from_wire(addr, e))?;
    // The readiness line is the contract scripts and the CI smoke test key
    // on; the port file is the machine-readable variant.
    println!("listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = args.flag_value("port-file") {
        std::fs::write(path, format!("{local}\n"))
            .map_err(|e| CliError::usage(format!("cannot write {path}: {e}")))?;
    }
    server.run_until(|| false);
    Ok(())
}

/// `connect`: stream one world to a running server and verify bit-identity
/// three ways — the server's digest, the digest recomputed from the depth
/// maps streamed back, and the expected golden.
fn cmd_connect(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["addr", "scenario", "seed", "spec", "backend", "expect"])?;
    let addr = args
        .flag_value("addr")
        .ok_or_else(|| CliError::usage(format!("--addr ADDR is required\n\n{}", usage())))?;
    let backend = backend_from(args)?;

    // Build the world locally (for the input stream) and the manifest the
    // server will rebuild the session profile from.
    let (world, manifest, label, golden) = if let Some(path) = args.flag_value("spec") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
        let spec =
            WorldSpec::parse(&text).map_err(|e| CliError::bad_record(format!("{path}: {e}")))?;
        let world = spec.build().map_err(|e| CliError::from_scenario(path, e))?;
        let manifest = SessionManifest {
            backend,
            source: ManifestSource::Spec { text },
        };
        (world, manifest, spec.world_name(), spec.golden)
    } else {
        let scenario = scenario_from(args)?;
        let (world, seed) = build_world(scenario, args.flag_value("seed"))?;
        let manifest = SessionManifest {
            backend,
            source: ManifestSource::Scenario {
                name: scenario.name().to_string(),
                seed,
            },
        };
        // The committed golden pins the default seed only.
        let golden = (seed == scenario.default_seed())
            .then(|| golden_digest(scenario.name()))
            .flatten();
        (world, manifest, scenario.name().to_string(), golden)
    };
    let expected = match args.flag_value("expect") {
        Some(text) => Some(parse_u64(text)?),
        None => golden,
    };

    let mut client = WireClient::connect(addr)
        .map_err(|e| CliError::from_wire(&format!("connect {addr}"), e))?;
    let id = client
        .admit(&manifest)
        .map_err(|e| CliError::from_wire(&label, e))?;
    let report = client
        .drive(
            id,
            &world.trajectory,
            world.events.as_slice(),
            LoadShape::Steady { chunk: 2048 },
        )
        .map_err(|e| CliError::from_wire(&label, e))?;
    let local_digest = client.digest(id);
    let _ = client.bye();

    if report.digest != local_digest {
        return Err(CliError::mismatch(format!(
            "{label}: server digest {:#018x} != digest {local_digest:#018x} recomputed from the streamed depth maps",
            report.digest
        )));
    }
    match expected {
        Some(want) if want != report.digest => Err(CliError::mismatch(format!(
            "{label}: served digest {:#018x} != expected {want:#018x} on the {backend} backend",
            report.digest
        ))),
        Some(_) => {
            println!(
                "{label}: served over {addr} on {backend}: {} keyframes, {} events, digest {:#018x} — OK (server == client == golden)",
                report.keyframes, report.events_processed, report.digest
            );
            Ok(())
        }
        None => {
            println!(
                "{label}: served over {addr} on {backend}: {} keyframes, {} events, digest {:#018x} (no golden to compare against)",
                report.keyframes, report.events_processed, report.digest
            );
            Ok(())
        }
    }
}

/// `checkpoint`: run a scenario stream partway through a backend and record
/// the mid-flight session as an `eventor-evtr/1` `CKPT` container.
fn cmd_checkpoint(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["scenario", "seed", "backend", "events", "out"])?;
    let scenario = scenario_from(args)?;
    let backend = backend_from(args)?;
    let out = args
        .flag_value("out")
        .ok_or_else(|| CliError::usage(format!("--out FILE.evtr is required\n\n{}", usage())))?;
    let (world, seed) = build_world(scenario, args.flag_value("seed"))?;
    let events = world.events.as_slice();
    let cut = match args.flag_value("events") {
        None => events.len() / 2,
        Some(text) => parse_usize(text)?.min(events.len()),
    };
    let label = scenario.name();
    let mut session = session_for_profile(world.camera, world.config.clone(), backend)
        .map_err(|e| CliError::from_emvs(label, e))?;
    session
        .push_trajectory(&world.trajectory)
        .map_err(|e| CliError::from_emvs(label, e))?;
    let mut offset = 0usize;
    while offset < cut {
        offset += session
            .push_events(&events[offset..cut])
            .map_err(|e| CliError::from_emvs(label, e))?;
        session.poll().map_err(|e| CliError::from_emvs(label, e))?;
    }
    // The origin string is the resume contract: it names the generator the
    // remainder of the stream comes from.
    let origin = format!("scenario={label} seed={seed:#x}");
    let checkpoint = session
        .snapshot(&origin)
        .map_err(|e| CliError::from_emvs(label, e))?;
    let file = std::fs::File::create(out)
        .map_err(|e| CliError::usage(format!("cannot create {out}: {e}")))?;
    checkpoint
        .write_to(file)
        .map_err(|e| CliError::usage(format!("cannot write {out}: {e}")))?;
    println!(
        "{label}: checkpointed after {cut} of {} events on {} -> {out} ({} keyframes retired)",
        events.len(),
        checkpoint.backend_kind(),
        checkpoint.keyframes_retired(),
    );
    Ok(())
}

/// Parses a `checkpoint` origin string (`scenario=NAME seed=0xHEX`).
fn parse_origin(origin: &str) -> Option<(&str, u64)> {
    let mut name = None;
    let mut seed = None;
    for part in origin.split_whitespace() {
        if let Some(v) = part.strip_prefix("scenario=") {
            name = Some(v);
        } else if let Some(v) = part.strip_prefix("seed=") {
            seed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            };
        }
    }
    Some((name?, seed?))
}

/// `resume`: restore a `CKPT` container, replay the remainder of the origin
/// scenario's stream, and verify the final digest.
fn cmd_resume(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["in", "backend", "check", "expect"])?;
    let path = args
        .flag_value("in")
        .ok_or_else(|| CliError::usage(format!("--in FILE.evtr is required\n\n{}", usage())))?;
    let file = std::fs::File::open(path)
        .map_err(|e| CliError::usage(format!("cannot open {path}: {e}")))?;
    // Two distinct failure classes: container corruption (bad checksum,
    // truncation — exit 4, like any corrupt record) versus a structurally
    // invalid checkpoint payload inside an intact container (exit 7).
    let checkpoint = SessionCheckpoint::read_from(file)
        .map_err(|e| CliError::bad_record(format!("{path}: {e}")))?
        .map_err(|e| CliError::checkpoint(format!("{path}: {e}")))?;
    let (name, seed) = parse_origin(checkpoint.origin()).ok_or_else(|| {
        CliError::checkpoint(format!(
            "{path}: origin `{}` does not name a scenario and seed",
            checkpoint.origin()
        ))
    })?;
    let name = name.to_string();
    let name = name.as_str();
    let scenario = find(name).ok_or_else(|| {
        CliError::unknown_scenario(format!(
            "{path}: origin names unknown scenario `{name}`; run `eventor-cli list` for the catalog"
        ))
    })?;
    let backend = match args.flag_value("backend") {
        Some(text) => parse_backend(text)?,
        None => BackendKind::parse(checkpoint.backend_kind()).ok_or_else(|| {
            CliError::checkpoint(format!(
                "{path}: checkpoint names unknown backend `{}`",
                checkpoint.backend_kind()
            ))
        })?,
    };
    let world = scenario
        .build(seed)
        .map_err(|e| CliError::usage(format!("{name}: build failed: {e}")))?;
    let events = world.events.as_slice();
    let done = usize::try_from(checkpoint.events_pushed())
        .ok()
        .filter(|&n| n <= events.len())
        .ok_or_else(|| {
            CliError::checkpoint(format!(
                "{path}: checkpoint claims {} events pushed but the {name} stream has {}",
                checkpoint.events_pushed(),
                events.len()
            ))
        })?;
    // The builder carries the *scenario's* profile, so restore() cross-checks
    // the checkpoint's embedded camera and configuration against it.
    let mut session = builder_for_profile(world.camera, world.config.clone(), backend)
        .restore(checkpoint)
        .map_err(|e| CliError::from_emvs(path, e))?;
    let mut offset = done;
    while offset < events.len() {
        offset += session
            .push_events(&events[offset..])
            .map_err(|e| CliError::from_emvs(name, e))?;
        session.poll().map_err(|e| CliError::from_emvs(name, e))?;
    }
    let output = session.finish().map_err(|e| CliError::from_emvs(name, e))?;
    let digest = digest_output(&output);
    let expected = match args.flag_value("expect") {
        Some(text) => Some(parse_u64(text)?),
        None if args.has_flag("check") => Some(golden_digest(name).ok_or_else(|| {
            CliError::usage(format!(
                "{name}: no committed golden digest to check against"
            ))
        })?),
        None => None,
    };
    match expected {
        Some(want) if want == digest => {
            println!(
                "{name}: resumed {path} at event {done} on {backend}, finished {} keyframes, digest {digest:#018x} — OK (equals the uninterrupted run)",
                output.output.keyframes.len()
            );
            Ok(())
        }
        Some(want) => Err(CliError::mismatch(format!(
            "{name}: resumed digest {digest:#018x} != expected {want:#018x} on the {backend} backend"
        ))),
        None => {
            println!(
                "{name}: resumed {path} at event {done} on {backend}, finished {} keyframes, digest {digest:#018x}",
                output.output.keyframes.len()
            );
            Ok(())
        }
    }
}

fn run() -> Result<(), CliError> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return Err(CliError::usage(usage()));
    }
    let command = raw.remove(0);
    let args = Args::parse(raw).map_err(CliError::usage)?;
    if !args.positional.is_empty() {
        return Err(CliError::usage(format!(
            "unexpected argument `{}`\n\n{}",
            args.positional[0],
            usage()
        )));
    }
    match command.as_str() {
        "list" => cmd_list(&args),
        "generate" => cmd_generate(&args),
        "replay" => cmd_replay(&args),
        "check" => cmd_check(&args),
        "fuzz" => cmd_fuzz(&args),
        "minimize" => cmd_minimize(&args),
        "serve" => cmd_serve(&args),
        "connect" => cmd_connect(&args),
        "checkpoint" => cmd_checkpoint(&args),
        "resume" => cmd_resume(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{}", e.message);
            ExitCode::from(e.code)
        }
    }
}
