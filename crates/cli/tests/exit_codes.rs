//! Negative-path contract of the `eventor-cli` binary: every failure class
//! has its own stable exit code (`docs/SCENARIOS.md` §9), and the fuzz
//! pipeline — campaign, planted-violation capture, auto-minimization,
//! regression check — works end to end through the real executable.
//!
//! Exit codes under test: 0 success, 1 usage, 2 digest mismatch or invariant
//! violation, 3 unknown scenario, 4 invalid/truncated record, 5 wire-protocol
//! error, 6 network failure, 7 checkpoint error (sealed container, invalid
//! payload).

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_eventor-cli"));
    // Campaign sizing must come from the flags under test, not from an
    // ambient multiplier (nightly CI sets one).
    cmd.env_remove("PROPTEST_CASES_MULTIPLIER");
    cmd.env_remove("EVENTOR_FUZZ_PLANT");
    cmd
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("eventor-cli spawns")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("exit code, not a signal")
}

/// A scratch directory unique to this test binary run.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eventor-cli-exit-codes-{}-{label}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn missing_arguments_and_unknown_flags_exit_1() {
    let no_args = run(&mut cli());
    assert_eq!(exit_code(&no_args), 1);
    let unknown_flag = run(cli().args(["list", "--frobnicate"]));
    assert_eq!(exit_code(&unknown_flag), 1);
    let unknown_command = run(cli().args(["explode"]));
    assert_eq!(exit_code(&unknown_command), 1);
}

#[test]
fn unknown_scenario_exits_3() {
    let output = run(cli().args(["check", "--scenario", "definitely_not_a_scenario"]));
    assert_eq!(exit_code(&output), 3);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown scenario"),
        "stderr should name the failure: {stderr}"
    );
}

#[test]
fn truncated_record_exits_4() {
    let dir = scratch("truncated");
    let path = dir.join("truncated.evtr");
    std::fs::write(&path, b"EVTR").expect("write truncated record");
    let output = run(cli().args([
        "replay",
        "--scenario",
        "shake_closeup",
        "--in",
        path.to_str().unwrap(),
    ]));
    assert_eq!(exit_code(&output), 4);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("invalid evtr record"), "stderr: {stderr}");
}

#[test]
fn malformed_fuzz_spec_exits_4() {
    let dir = scratch("badspec");
    let path = dir.join("bad.fuzzworld");
    std::fs::write(&path, "eventor-fuzzworld/1\nseed = not-a-number\n").expect("write spec");
    let output = run(cli().args(["minimize", "--spec", path.to_str().unwrap()]));
    assert_eq!(exit_code(&output), 4);
}

#[test]
fn digest_mismatch_exits_2() {
    let dir = scratch("mismatch");
    let record = dir.join("shake.evtr");
    let generated = run(cli().args([
        "generate",
        "--scenario",
        "shake_closeup",
        "--out",
        record.to_str().unwrap(),
    ]));
    assert_eq!(exit_code(&generated), 0);
    let output = run(cli().args([
        "replay",
        "--scenario",
        "shake_closeup",
        "--in",
        record.to_str().unwrap(),
        "--expect",
        "0x1",
    ]));
    assert_eq!(exit_code(&output), 2);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("!="),
        "stderr should show both digests: {stderr}"
    );
}

/// The acceptance bar for the fuzz front end: two identical invocations
/// produce identical bytes on stdout and in the report file.
#[test]
fn fuzz_campaign_is_bit_reproducible() {
    let dir = scratch("repro");
    let args = |report: &str| {
        vec![
            "fuzz".to_string(),
            "--seed".into(),
            "0xD5".into(),
            "--count".into(),
            "2".into(),
            "--max-events".into(),
            "1200".into(),
            "--invariant".into(),
            "polarity-relabel".into(),
            "--report".into(),
            report.into(),
        ]
    };
    let r1 = dir.join("report1.json");
    let r2 = dir.join("report2.json");
    let a = run(cli().args(args(r1.to_str().unwrap())));
    let b = run(cli().args(args(r2.to_str().unwrap())));
    assert_eq!(exit_code(&a), 0, "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(exit_code(&b), 0);
    assert_eq!(a.stdout, b.stdout, "fuzz stdout must be bit-reproducible");
    let f1 = std::fs::read(&r1).expect("report 1");
    let f2 = std::fs::read(&r2).expect("report 2");
    assert_eq!(f1, f2, "fuzz report files must be bit-reproducible");
    assert_eq!(a.stdout, f1, "report file mirrors stdout");
    let text = String::from_utf8(f1).expect("report is UTF-8");
    assert!(text.contains("\"format\": \"eventor-fuzz/1\""));
    assert!(text.contains("\"violations\": 0"));
}

/// End-to-end planted-violation drill through the real binary: the hook
/// (crossing the process boundary via `EVENTOR_FUZZ_PLANT`) makes the
/// campaign fail with exit 2, the minimized reproduction lands in
/// `--minimize-dir`, and `check --spec` accepts it once the hook is gone.
#[test]
fn planted_violation_exits_2_and_minimized_spec_checks_clean() {
    let dir = scratch("planted");
    let mindir = dir.join("minimized");
    let output = run(cli().env("EVENTOR_FUZZ_PLANT", "8,400,4").args([
        "fuzz",
        "--seed",
        "0xBEEF",
        "--count",
        "1",
        "--max-events",
        "1200",
        "--invariant",
        "polarity-relabel",
        "--minimize-dir",
        mindir.to_str().unwrap(),
    ]));
    assert_eq!(
        exit_code(&output),
        2,
        "planted violation must fail the campaign: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"violations\": 1"), "stdout: {stdout}");
    assert!(stdout.contains("planted violation hook fired"));

    let minimized: Vec<PathBuf> = std::fs::read_dir(&mindir)
        .expect("minimize dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(minimized.len(), 1, "one failing world, one reproduction");
    let spec_text = std::fs::read_to_string(&minimized[0]).expect("minimized spec");
    assert!(spec_text.starts_with("eventor-fuzzworld/1"));
    assert!(spec_text.contains("samples = 8"), "spec: {spec_text}");
    assert!(spec_text.contains("event_cap = 400"), "spec: {spec_text}");
    assert!(spec_text.contains("planes = 4"), "spec: {spec_text}");
    assert!(spec_text.contains("golden = 0x"), "spec: {spec_text}");

    // Without the plant, the minimized world is healthy and its pinned
    // golden verifies — the committed-regression workflow end to end.
    let check = run(cli().args(["check", "--spec", minimized[0].to_str().unwrap()]));
    assert_eq!(
        exit_code(&check),
        0,
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
}

#[test]
fn connect_to_a_dead_listener_exits_6() {
    // Grab a port the kernel just proved free, then close the listener so
    // the connection is refused.
    let port = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").port()
    };
    let output = run(cli().args([
        "connect",
        "--addr",
        &format!("127.0.0.1:{port}"),
        "--scenario",
        "shake_closeup",
    ]));
    assert_eq!(
        exit_code(&output),
        6,
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn connect_to_a_garbage_server_exits_5() {
    // A listener that speaks anything but eventor-wire/1: the client's
    // handshake reply fails frame validation, which is the wire-protocol
    // exit code, not the network one.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        use std::io::Write;
        if let Ok((mut stream, _)) = listener.accept() {
            let _ = stream.write_all(b"HTTP/1.1 400 Bad Request\r\n\r\n");
            let _ = stream.flush();
        }
    });
    let output = run(cli().args([
        "connect",
        "--addr",
        &addr.to_string(),
        "--scenario",
        "shake_closeup",
    ]));
    server.join().expect("garbage server thread");
    assert_eq!(
        exit_code(&output),
        5,
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn serve_then_connect_round_trips_with_exit_0() {
    // The readiness contract of `serve --port-file`: the file appears only
    // once the listener is bound, and a `connect` against it verifies the
    // served digest against the committed golden (exit 0).
    let dir = scratch("serve-connect");
    let port_file = dir.join("port");
    let _ = std::fs::remove_file(&port_file);
    let mut server = cli()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().expect("utf8 path"),
        ])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "serve never wrote its port file"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    };
    let output = run(cli().args([
        "connect",
        "--addr",
        &addr,
        "--scenario",
        "shake_closeup",
        "--backend",
        "sharded",
    ]));
    server.kill().expect("serve stops");
    let _ = server.wait();
    assert_eq!(
        exit_code(&output),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("server == client == golden"),
        "stdout should report the triple digest equality: {stdout}"
    );
}

/// Checkpoints a scenario through the real binary and returns the container
/// bytes plus the path it was written to.
fn checkpoint_container(label: &str) -> (PathBuf, Vec<u8>) {
    let dir = scratch(label);
    let path = dir.join("mid.ckpt.evtr");
    let output = run(cli().args([
        "checkpoint",
        "--scenario",
        "orbit_burst",
        "--out",
        path.to_str().expect("utf8 path"),
    ]));
    assert_eq!(
        exit_code(&output),
        0,
        "checkpoint stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let bytes = std::fs::read(&path).expect("checkpoint container reads");
    (path, bytes)
}

#[test]
fn resume_of_an_intact_checkpoint_exits_0_and_corruption_exits_4() {
    let (path, bytes) = checkpoint_container("resume-corruption");

    // The honest round trip first: resume --check replays the remainder and
    // verifies the committed golden digest.
    let ok = run(cli().args(["resume", "--in", path.to_str().unwrap(), "--check"]));
    assert_eq!(
        exit_code(&ok),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // A single flipped byte anywhere breaks the container checksum (or the
    // framing before it): exit 4, the invalid-record code, with a message.
    for position in [0, 9, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupt = bytes.clone();
        corrupt[position] ^= 0x40;
        std::fs::write(&path, &corrupt).expect("corrupt container writes");
        let output = run(cli().args(["resume", "--in", path.to_str().unwrap()]));
        assert_eq!(
            exit_code(&output),
            4,
            "flip at byte {position} must be a container error"
        );
        assert!(
            !String::from_utf8_lossy(&output.stderr).is_empty(),
            "exit 4 must explain itself on stderr"
        );
    }

    // Truncation is the other container-level corruption class.
    std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncated container writes");
    let output = run(cli().args(["resume", "--in", path.to_str().unwrap()]));
    assert_eq!(
        exit_code(&output),
        4,
        "truncation must be a container error"
    );
}

#[test]
fn resume_of_a_forged_but_resealed_checkpoint_exits_7() {
    let (path, mut bytes) = checkpoint_container("resume-forged");

    // Forge the origin-string length (the first payload field, right after
    // the 16-byte container header, the CKPT tag, its u64 length, and the
    // u32 payload version) and re-seal the trailing FNV-1a checksum: the
    // container is now *valid* but the checkpoint payload inside is not, so
    // the failure must land in the checkpoint domain (exit 7), not 4.
    const PAYLOAD_START: usize = 16 + 4 + 8 + 4;
    bytes[PAYLOAD_START..PAYLOAD_START + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let n = bytes.len();
    let seal = eventor_events::fnv1a_64(&bytes[..n - 8]).to_le_bytes();
    bytes[n - 8..].copy_from_slice(&seal);
    std::fs::write(&path, &bytes).expect("forged container writes");

    let output = run(cli().args(["resume", "--in", path.to_str().unwrap()]));
    assert_eq!(exit_code(&output), 7);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("origin"),
        "stderr should name the forged field: {stderr}"
    );
}

#[test]
fn resume_digest_mismatch_exits_2_and_record_containers_exit_4() {
    let (path, _) = checkpoint_container("resume-mismatch");

    // A wrong --expect digest is a verification failure, same code as
    // `check`'s mismatch class.
    let output = run(cli().args(["resume", "--in", path.to_str().unwrap(), "--expect", "0x1"]));
    assert_eq!(exit_code(&output), 2);

    // A *record* container handed to `resume` is a container-domain error:
    // the reader redirects to replay, it never guesses.
    let dir = scratch("resume-mismatch-record");
    let record = dir.join("stream.evtr");
    let recorded = run(cli().args([
        "generate",
        "--scenario",
        "orbit_burst",
        "--out",
        record.to_str().unwrap(),
    ]));
    assert_eq!(exit_code(&recorded), 0);
    let output = run(cli().args(["resume", "--in", record.to_str().unwrap()]));
    assert_eq!(exit_code(&output), 4);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("replay"),
        "stderr should redirect record containers to replay: {stderr}"
    );
}
