//! **Batched, vectorized faces of the bit-true kernel** with runtime
//! dispatch — lane-parallel integer MACs over pixels and planes.
//!
//! The scalar functions in [`kernel`](super) process one pixel and one
//! plane at a time. The hot consumers (the software vote loop, the sharded
//! fused packet kernels) stream thousands of events through ~100 planes per
//! frame, which is a data-parallel shape: the same Q11.21×Q9.7 MAC applied
//! independently per lane. This module provides batched entry points over
//! slices, executed by one of three **dispatch tiers**:
//!
//! | tier       | name reported        | mechanism |
//! |------------|----------------------|-----------|
//! | `Simd`     | `avx2` / `neon`      | `core::arch` intrinsics, 4×/2× `i64` lanes, runtime-detected |
//! | `Swar`     | `swar`               | two products per 64×64→128 widening multiply (48-bit packed fields) |
//! | `Scalar`   | `scalar`             | the scalar kernel in a loop — the always-available reference |
//!
//! The tier is selected **once per session** ([`active`]): the
//! [`EVENTOR_KERNEL_DISPATCH`](DISPATCH_ENV) environment variable
//! (`scalar`/`swar`/`simd`, a typed [`DispatchError`] on anything else or
//! on an unsupported tier) wins, otherwise detection prefers `Simd` where
//! the CPU supports it and falls back architecture-aware: `Scalar` on
//! x86-64 without AVX2 (where the measured SWAR tier is *slower* than the
//! scalar loop, `docs/BENCHMARKS.md`), `Swar` elsewhere. Tests and benches may pin
//! a tier in-process with [`force`], or bypass the global entirely with the
//! `*_with` variants that take an explicit [`Dispatch`].
//!
//! ## Bit-identity guarantee
//!
//! Every tier produces **bytes identical to the scalar kernel** for every
//! input: the same ties-away-from-zero rounding ([`super::round_acc`]), the
//! same projection-missing judgement ([`super::normalize_q9p7`]), the same
//! in-sensor judgement and `u8` voxel narrowing. This is the PR 3
//! one-kernel-many-faces discipline extended to lanes: vectorization is a
//! scheduling choice, never an arithmetic one. The proptests at the bottom
//! of this file pin the property across arbitrary batch sizes (0, 1,
//! non-multiples of the lane width) for every tier the host supports.
//!
//! The ties-away rounding is carried branchlessly in the wide tiers as
//! `sign ⊕ ((|acc| + half) >> frac)`: plain add-half-and-shift would round
//! half-up and differ from the scalar kernel at exact negative ties.
//!
//! ## Example
//!
//! ```
//! use eventor_fixed::kernel::batch::{self, Dispatch};
//! use eventor_fixed::kernel::{self, PhiWords};
//! use eventor_fixed::PackedCoord;
//!
//! let phi = PhiWords::from_f64(0.75, 3.5, -1.25);
//! let canon = vec![PackedCoord::from_f64(10.0, 20.0); 7];
//! let mut idx = Vec::new();
//! batch::transfer_nearest_batch(&phi, &canon, 240, 180, &mut idx);
//! for (&i, &c) in idx.iter().zip(&canon) {
//!     let scalar = kernel::transfer_nearest(&phi, c, 240, 180);
//!     match scalar.address() {
//!         Some((x, y)) => assert_eq!(i, y as u32 * 240 + x as u32),
//!         None => assert_eq!(i, batch::MISS),
//!     }
//! }
//! # let _ = Dispatch::ALL;
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use super::{PhiWords, ACC_FRAC, ACC_HALF};
use crate::formats::{PackedCoord, PlaneCoord};

/// The sentinel slab index of a transfer dropped by the in-sensor
/// judgement — the batched spelling of [`PlaneCoord::Missing`].
pub const MISS: u32 = u32::MAX;

/// The environment variable that forces a dispatch tier for the whole
/// process: `scalar`, `swar` or `simd` (lower-case, exact).
pub const DISPATCH_ENV: &str = "EVENTOR_KERNEL_DISPATCH";

/// A kernel dispatch tier. Ordered fastest-first; [`active`] resolves the
/// session's tier once and every batched wrapper consults it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dispatch {
    /// The scalar kernel in a loop — always available, and the reference
    /// every other tier must match byte for byte.
    Scalar,
    /// 64-bit SWAR packing: both axis products of one event (or two packed
    /// operands) computed by a single 64×64→128 widening multiply with
    /// biased 48-bit fields. Always available.
    Swar,
    /// `core::arch` intrinsics: AVX2 on `x86_64` (4 × `i64` lanes), NEON on
    /// `aarch64` (2 × `i64` lanes). Supported only where runtime detection
    /// finds the feature.
    Simd,
}

impl Dispatch {
    /// Every tier, fastest-first — iterate and filter by
    /// [`is_supported`](Self::is_supported) to sweep all testable paths.
    pub const ALL: [Dispatch; 3] = [Dispatch::Simd, Dispatch::Swar, Dispatch::Scalar];

    /// Whether this tier can execute on the current host.
    pub fn is_supported(self) -> bool {
        match self {
            Dispatch::Scalar | Dispatch::Swar => true,
            Dispatch::Simd => simd_supported(),
        }
    }

    /// The tier name reported in diagnostics and `eventor-bench/1`
    /// artifacts: `"scalar"`, `"swar"`, or the concrete instruction set of
    /// the SIMD tier (`"avx2"` / `"neon"`).
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Swar => "swar",
            Dispatch::Simd => {
                #[cfg(target_arch = "x86_64")]
                {
                    "avx2"
                }
                #[cfg(target_arch = "aarch64")]
                {
                    "neon"
                }
                #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
                {
                    "simd"
                }
            }
        }
    }

    /// Parses an [`EVENTOR_KERNEL_DISPATCH`](DISPATCH_ENV) value. The
    /// accepted spellings are exactly `scalar`, `swar` and `simd`; anything
    /// else is a typed [`DispatchError::UnknownTier`].
    pub fn from_name(value: &str) -> Result<Dispatch, DispatchError> {
        match value {
            "scalar" => Ok(Dispatch::Scalar),
            "swar" => Ok(Dispatch::Swar),
            "simd" => Ok(Dispatch::Simd),
            other => Err(DispatchError::UnknownTier {
                value: other.to_string(),
            }),
        }
    }
}

/// A dispatch tier could not be selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The [`DISPATCH_ENV`] value is not one of `scalar`/`swar`/`simd`.
    UnknownTier {
        /// The rejected value, verbatim.
        value: String,
    },
    /// The requested tier is not supported on this host (e.g. `simd` forced
    /// on a CPU without AVX2/NEON). The kernel never silently degrades a
    /// forced tier — that would make CI lanes lie about what they tested.
    Unsupported {
        /// The unsupported tier.
        tier: Dispatch,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::UnknownTier { value } => write!(
                f,
                "unknown kernel dispatch tier {value:?} (expected one of: scalar, swar, simd)"
            ),
            DispatchError::Unsupported { tier } => write!(
                f,
                "kernel dispatch tier '{}' is not supported on this host",
                tier.name()
            ),
        }
    }
}

impl std::error::Error for DispatchError {}

/// Runtime detection of the SIMD tier's instruction set.
fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("neon")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

fn check_supported(tier: Dispatch) -> Result<Dispatch, DispatchError> {
    if tier.is_supported() {
        Ok(tier)
    } else {
        Err(DispatchError::Unsupported { tier })
    }
}

/// The tier detection falls back to when [`DISPATCH_ENV`] is unset: `Simd`
/// wherever the CPU supports it. Without SIMD the choice is
/// architecture-aware: on `x86_64` the scalar loop wins — the bias/unbias
/// algebra around SWAR's packed 48-bit fields costs more ALU work than the
/// fused multiply saves on a wide out-of-order core, measured ~2× slower
/// (`docs/BENCHMARKS.md`, "An honest note on SWAR") — while narrow
/// single-multiplier cores keep `Swar`.
fn detected() -> Dispatch {
    if simd_supported() {
        Dispatch::Simd
    } else if cfg!(target_arch = "x86_64") {
        Dispatch::Scalar
    } else {
        Dispatch::Swar
    }
}

/// Resolves the environment/detection tier once per process. The
/// environment override stays authoritative: [`detected`] is consulted only
/// when [`DISPATCH_ENV`] is unset.
fn resolve_env() -> Result<Dispatch, DispatchError> {
    match std::env::var(DISPATCH_ENV) {
        Ok(value) => check_supported(Dispatch::from_name(&value)?),
        Err(_) => Ok(detected()),
    }
}

fn resolved() -> Result<Dispatch, DispatchError> {
    static RESOLVED: OnceLock<Result<Dispatch, DispatchError>> = OnceLock::new();
    RESOLVED.get_or_init(resolve_env).clone()
}

/// In-process override (0 = none, else `Dispatch` discriminant + 1). Takes
/// precedence over the resolved environment tier.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Pins the dispatch tier for the whole process (`Some`) or restores the
/// environment/detection resolution (`None`).
///
/// Validates support before taking effect and returns
/// [`DispatchError::Unsupported`] otherwise — a forced tier never silently
/// degrades. Intended for tests, benches and diagnostics; production code
/// should rely on [`DISPATCH_ENV`] or detection.
pub fn force(tier: Option<Dispatch>) -> Result<(), DispatchError> {
    let code = match tier {
        None => 0,
        Some(t) => {
            check_supported(t)?;
            match t {
                Dispatch::Scalar => 1,
                Dispatch::Swar => 2,
                Dispatch::Simd => 3,
            }
        }
    };
    FORCED.store(code, Ordering::Release);
    Ok(())
}

/// The session's dispatch tier, or the typed error that prevented its
/// selection (an invalid or unsupported [`DISPATCH_ENV`] value).
pub fn try_active() -> Result<Dispatch, DispatchError> {
    match FORCED.load(Ordering::Acquire) {
        1 => Ok(Dispatch::Scalar),
        2 => Ok(Dispatch::Swar),
        3 => Ok(Dispatch::Simd),
        _ => resolved(),
    }
}

/// The session's dispatch tier: [`force`] override, then
/// [`DISPATCH_ENV`], then detection (`Simd` where supported; otherwise
/// `Scalar` on x86-64 — where SWAR measures slower than the scalar loop —
/// and `Swar` elsewhere).
///
/// # Panics
///
/// When [`DISPATCH_ENV`] names an unknown or unsupported tier — the
/// configuration error must surface, not degrade silently.
pub fn active() -> Dispatch {
    match try_active() {
        Ok(tier) => tier,
        Err(err) => panic!("{DISPATCH_ENV}: {err}"),
    }
}

fn assert_supported(tier: Dispatch) {
    assert!(
        tier.is_supported(),
        "kernel dispatch tier '{}' is not supported on this host",
        tier.name()
    );
}

// ---------------------------------------------------------------------------
// Batched faces
// ---------------------------------------------------------------------------

/// Batched [`mat_vec_mac`](super::mat_vec_mac): the `PE_Z0` wide
/// matrix-vector MAC over a slice of coordinates, one `[num_x, num_y, w]`
/// accumulator triple per input. `out` is cleared and refilled.
pub fn mat_vec_mac_batch(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<[i64; 3]>) {
    mat_vec_mac_batch_with(active(), h, coords, out);
}

/// [`mat_vec_mac_batch`] with an explicit tier (panics if unsupported).
pub fn mat_vec_mac_batch_with(
    tier: Dispatch,
    h: &[i32; 9],
    coords: &[PackedCoord],
    out: &mut Vec<[i64; 3]>,
) {
    assert_supported(tier);
    out.clear();
    out.reserve(coords.len());
    match tier {
        Dispatch::Scalar => out.extend(coords.iter().map(|&c| super::mat_vec_mac(h, c))),
        Dispatch::Swar => swar::mat_vec(h, coords, out),
        Dispatch::Simd => simd::mat_vec(h, coords, out),
    }
}

/// Batched [`project_z0`](super::project_z0): the complete `PE_Z0`
/// operation over a slice of events, **keeping only the survivors** of the
/// projection-missing judgement (in input order). `out` is cleared and
/// refilled; dropped events leave no placeholder — downstream per-plane
/// transfers iterate canonical coordinates densely.
///
/// The wide MACs run on the selected tier; the exact-rational
/// normalization divider is inherently scalar (integer division has no
/// lane form) and is shared verbatim by every tier.
pub fn project_z0_batch(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<PackedCoord>) {
    project_z0_batch_with(active(), h, coords, out);
}

/// [`project_z0_batch`] with an explicit tier (panics if unsupported).
pub fn project_z0_batch_with(
    tier: Dispatch,
    h: &[i32; 9],
    coords: &[PackedCoord],
    out: &mut Vec<PackedCoord>,
) {
    assert_supported(tier);
    out.clear();
    out.reserve(coords.len());
    match tier {
        Dispatch::Scalar => out.extend(coords.iter().filter_map(|&c| super::project_z0(h, c))),
        Dispatch::Swar => swar::project(h, coords, out),
        Dispatch::Simd => simd::project(h, coords, out),
    }
}

/// Batched [`plane_mac`](super::plane_mac): one `PE_Zi` axis over a slice
/// of raw Q9.7 coordinate words, producing the `i64` wide accumulators at
/// scale `2⁻²⁸`. `out` is cleared and refilled.
pub fn plane_mac_batch(scale: i32, offset: i32, cs: &[i16], out: &mut Vec<i64>) {
    plane_mac_batch_with(active(), scale, offset, cs, out);
}

/// [`plane_mac_batch`] with an explicit tier (panics if unsupported).
pub fn plane_mac_batch_with(
    tier: Dispatch,
    scale: i32,
    offset: i32,
    cs: &[i16],
    out: &mut Vec<i64>,
) {
    assert_supported(tier);
    out.clear();
    out.reserve(cs.len());
    match tier {
        Dispatch::Scalar => out.extend(cs.iter().map(|&c| super::plane_mac(scale, offset, c))),
        Dispatch::Swar => swar::plane_mac(scale, offset, cs, out),
        Dispatch::Simd => simd::plane_mac(scale, offset, cs, out),
    }
}

/// Batched [`nearest_voxel`](super::nearest_voxel): rounds paired wide
/// accumulators and applies the in-sensor judgement, one [`PlaneCoord`]
/// per input pair. `out` is cleared and refilled.
///
/// # Panics
///
/// When the accumulator slices differ in length.
pub fn nearest_voxel_batch(
    acc_x: &[i64],
    acc_y: &[i64],
    width: u32,
    height: u32,
    out: &mut Vec<PlaneCoord>,
) {
    nearest_voxel_batch_with(active(), acc_x, acc_y, width, height, out);
}

/// [`nearest_voxel_batch`] with an explicit tier (panics if unsupported).
pub fn nearest_voxel_batch_with(
    tier: Dispatch,
    acc_x: &[i64],
    acc_y: &[i64],
    width: u32,
    height: u32,
    out: &mut Vec<PlaneCoord>,
) {
    assert_supported(tier);
    assert_eq!(acc_x.len(), acc_y.len(), "accumulator slices must pair up");
    out.clear();
    out.reserve(acc_x.len());
    match tier {
        Dispatch::Scalar => out.extend(
            acc_x
                .iter()
                .zip(acc_y)
                .map(|(&ax, &ay)| super::nearest_voxel(ax, ay, width, height)),
        ),
        Dispatch::Swar => swar::nearest_voxel(acc_x, acc_y, width, height, out),
        Dispatch::Simd => simd::nearest_voxel(acc_x, acc_y, width, height, out),
    }
}

/// The fused batched `PE_Zi` operation: both axis MACs, the ties-away
/// rounding and the in-sensor judgement for one depth plane over a slice
/// of canonical coordinates, producing **plane-slab indices**
/// (`y · width + x`) with [`MISS`] marking dropped transfers. `out` is
/// resized to `canon.len()` and every element overwritten (stale
/// contents of a reused arena are never read).
///
/// Indices rather than `(x, y)` pairs because the consumer is the
/// cache-blocked DSI vote deposit, which adds a unit at `slab[idx]`; the
/// multiply by `width` vectorizes here, the deposit does not (no scatter
/// on AVX2 worth its latency for `u16` lanes).
///
/// `width · height` must not exceed `u32::MAX` (debug-asserted) so every
/// in-sensor index stays below the [`MISS`] sentinel; callers pass
/// sensor/DSI dimensions, far inside the bound.
pub fn transfer_nearest_batch(
    phi: &PhiWords,
    canon: &[PackedCoord],
    width: u32,
    height: u32,
    out: &mut Vec<u32>,
) {
    transfer_nearest_batch_with(active(), phi, canon, width, height, out);
}

/// [`transfer_nearest_batch`] with an explicit tier (panics if
/// unsupported).
pub fn transfer_nearest_batch_with(
    tier: Dispatch,
    phi: &PhiWords,
    canon: &[PackedCoord],
    width: u32,
    height: u32,
    out: &mut Vec<u32>,
) {
    assert_supported(tier);
    debug_assert!(
        width as u64 * height as u64 <= u32::MAX as u64,
        "slab index would collide with the MISS sentinel"
    );
    // Size once, write by index: every tier fills all `canon.len()` slots,
    // so a reused arena of the right length skips the refill entirely and
    // the hot per-plane loop never pays a `push` capacity check.
    if out.len() != canon.len() {
        out.clear();
        out.resize(canon.len(), MISS);
    }
    let dst = out.as_mut_slice();
    match tier {
        Dispatch::Scalar => {
            for (d, &c) in dst.iter_mut().zip(canon) {
                *d = scalar_transfer_index(phi, c, width, height);
            }
        }
        Dispatch::Swar => swar::transfer(phi, canon, width, height, dst),
        Dispatch::Simd => simd::transfer(phi, canon, width, height, dst),
    }
}

/// One scalar transfer producing a slab index — the definition the wide
/// tiers must match. Identical to
/// [`transfer_nearest`](super::transfer_nearest) + `address()` for the
/// in-contract `width, height ≤ 256` domain (the `u8` narrowing there is
/// lossless inside the judgement).
#[inline]
fn scalar_transfer_index(phi: &PhiWords, c: PackedCoord, width: u32, height: u32) -> u32 {
    let xi = super::round_acc(super::plane_mac(phi.scale, phi.offset_x, c.x.raw()));
    let yi = super::round_acc(super::plane_mac(phi.scale, phi.offset_y, c.y.raw()));
    if xi >= 0 && yi >= 0 && xi < width as i64 && yi < height as i64 {
        yi as u32 * width + xi as u32
    } else {
        MISS
    }
}

/// Branchless [`round_acc`](super::round_acc): `sign ⊕ ((|acc| + half) >>
/// frac)`. Exactly ties-away-from-zero — the naive `(acc + half) >> frac`
/// would round half-*up* and disagree with the scalar kernel at exact
/// negative ties. The wide tiers carry this form per lane.
#[inline]
fn round_acc_branchless(acc: i64) -> i64 {
    let sign = acc >> 63;
    let mag = (acc ^ sign) - sign;
    (((mag + ACC_HALF) >> ACC_FRAC) ^ sign) - sign
}

// ---------------------------------------------------------------------------
// SWAR tier
// ---------------------------------------------------------------------------

/// 64-bit SWAR packing: two independent products per widening multiply.
///
/// Both operands are biased to unsigned (`v + 2^15` for 16-bit values,
/// `v + 2^31` for 32-bit) so each product fits an unsigned 48-bit field of
/// the 128-bit result with no carry between fields:
/// `(a0 | a1 << 48) · m` yields `a0·m` in bits 0..48 and `a1·m` in bits
/// 48..96 whenever `aᵢ·m < 2^48`. The bias is removed algebraically:
/// `(v32 + 2^31)(v16 + 2^15) = v32·v16 + (v32 << 15) + (v16 << 31) + 2^46`.
mod swar {
    use super::*;

    const MASK48: u128 = (1 << 48) - 1;

    /// `(a0·m, a1·m)` in one widening multiply; requires `aᵢ·m < 2^48`
    /// and `aᵢ < 2^16` (both fields of the packed word fit 64 bits, so
    /// the product is a single 64×64→128 widening multiply — one `mulq`
    /// on x86_64, `umulh`+`mul` on aarch64).
    ///
    /// The `black_box` pins the packed word in a scalar register: with the
    /// value path fully visible, LLVM's loop vectorizer "vectorizes"
    /// callers by packing the cheap bias/round algebra into SIMD lanes
    /// while extracting every operand back to scalar registers for the
    /// 128-bit multiply — the lane↔GPR churn more than triples the
    /// per-event cost. The opaque pass-through keeps the whole caller loop
    /// scalar, which is the point of the SWAR tier, at the price of one
    /// register move.
    #[inline]
    fn dual_mul16(a0: u64, a1: u64, m: u64) -> (u64, u64) {
        debug_assert!(a0 < (1 << 16) && a1 < (1 << 16));
        debug_assert!((a0 as u128) * m as u128 <= MASK48 && (a1 as u128) * m as u128 <= MASK48);
        let prod = (std::hint::black_box(a0 | (a1 << 48)) as u128) * m as u128;
        ((prod & MASK48) as u64, (prod >> 48) as u64)
    }

    /// `(a0·m, a1·m)` in one widening multiply; requires `aᵢ·m < 2^48`.
    #[inline]
    fn dual_mul(a0: u64, a1: u64, m: u64) -> (u64, u64) {
        debug_assert!((a0 as u128) * m as u128 <= MASK48 && (a1 as u128) * m as u128 <= MASK48);
        // Pack in u128: a 32-bit biased operand shifted into the high
        // field needs 80 bits before the multiply.
        let prod = ((a0 as u128) | ((a1 as u128) << 48)) * m as u128;
        ((prod & MASK48) as u64, (prod >> 48) as u64)
    }

    /// Removes the packing bias: biased product back to `v32 · v16`.
    #[inline]
    fn unbias(p: u64, v32: i64, v16: i64) -> i64 {
        p as i64 - (v32 << 15) - (v16 << 31) - (1 << 46)
    }

    const BIAS16: i64 = 1 << 15;
    const BIAS32: i64 = 1 << 31;

    pub(super) fn transfer(
        phi: &PhiWords,
        canon: &[PackedCoord],
        width: u32,
        height: u32,
        out: &mut [u32],
    ) {
        let scale = phi.scale as i64;
        let bscale = (scale + BIAS32) as u64;
        // Per-plane constants of the unbias algebra, hoisted: the offset
        // term of the MAC minus the shared bias terms.
        let corr_x = ((phi.offset_x as i64) << 7) - (scale << 15) - (1 << 46);
        let corr_y = ((phi.offset_y as i64) << 7) - (scale << 15) - (1 << 46);
        let (w, h) = (width as u64, height as u64);
        for (d, &c) in out.iter_mut().zip(canon) {
            let cx = c.x.raw() as i64;
            let cy = c.y.raw() as i64;
            let (px, py) = dual_mul16((cx + BIAS16) as u64, (cy + BIAS16) as u64, bscale);
            let acc_x = px as i64 - (cx << 31) + corr_x;
            let acc_y = py as i64 - (cy << 31) + corr_y;
            let xi = round_acc_branchless(acc_x);
            let yi = round_acc_branchless(acc_y);
            // Unsigned compares fold the `< 0` and `>= dim` judgements;
            // `&` and the unconditionally computed index (wrapping garbage
            // in dropped lanes) keep the select branch-free — the
            // judgement outcome is data-dependent per event, so a branch
            // here mispredicts constantly.
            let inside = ((xi as u64) < w) & ((yi as u64) < h);
            let idx = (yi as u32).wrapping_mul(width).wrapping_add(xi as u32);
            *d = if inside { idx } else { MISS };
        }
    }

    pub(super) fn plane_mac(scale: i32, offset: i32, cs: &[i16], out: &mut Vec<i64>) {
        let s = scale as i64;
        let bscale = (s + BIAS32) as u64;
        let corr = ((offset as i64) << 7) - (s << 15) - (1 << 46);
        let mut chunks = cs.chunks_exact(2);
        for pair in &mut chunks {
            let c0 = pair[0] as i64;
            let c1 = pair[1] as i64;
            let (p0, p1) = dual_mul16((c0 + BIAS16) as u64, (c1 + BIAS16) as u64, bscale);
            out.push(p0 as i64 - (c0 << 31) + corr);
            out.push(p1 as i64 - (c1 << 31) + corr);
        }
        for &c in chunks.remainder() {
            out.push(super::super::plane_mac(scale, offset, c));
        }
    }

    /// The `PE_Z0` row MACs with packed 32-bit operands: rows 0 and 1
    /// share each coordinate multiplier, so their x-terms (and y-terms)
    /// pair up in one widening multiply each. Row 2 stays scalar — two
    /// plain `imul`s beat a third packing round-trip.
    #[inline]
    pub(super) fn mat_vec_one(h: &[i32; 9], c: PackedCoord) -> [i64; 3] {
        let x = c.x.raw() as i64;
        let y = c.y.raw() as i64;
        let bx = (x + BIAS16) as u64;
        let by = (y + BIAS16) as u64;
        let (p0x, p1x) = dual_mul(
            (h[0] as i64 + BIAS32) as u64,
            (h[3] as i64 + BIAS32) as u64,
            bx,
        );
        let (p0y, p1y) = dual_mul(
            (h[1] as i64 + BIAS32) as u64,
            (h[4] as i64 + BIAS32) as u64,
            by,
        );
        let n0 = unbias(p0x, h[0] as i64, x) + unbias(p0y, h[1] as i64, y) + ((h[2] as i64) << 7);
        let n1 = unbias(p1x, h[3] as i64, x) + unbias(p1y, h[4] as i64, y) + ((h[5] as i64) << 7);
        let n2 = h[6] as i64 * x + h[7] as i64 * y + ((h[8] as i64) << 7);
        [n0, n1, n2]
    }

    pub(super) fn mat_vec(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<[i64; 3]>) {
        out.extend(coords.iter().map(|&c| mat_vec_one(h, c)));
    }

    pub(super) fn project(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<PackedCoord>) {
        for &c in coords {
            let [num_x, num_y, w] = mat_vec_one(h, c);
            let (Some(px), Some(py)) = (
                super::super::normalize_q9p7(num_x, w),
                super::super::normalize_q9p7(num_y, w),
            ) else {
                continue;
            };
            out.push(PackedCoord {
                x: crate::formats::Q9p7::from_raw(px),
                y: crate::formats::Q9p7::from_raw(py),
            });
        }
    }

    pub(super) fn nearest_voxel(
        acc_x: &[i64],
        acc_y: &[i64],
        width: u32,
        height: u32,
        out: &mut Vec<PlaneCoord>,
    ) {
        let (w, h) = (width as u64, height as u64);
        for (&ax, &ay) in acc_x.iter().zip(acc_y) {
            let xi = round_acc_branchless(ax);
            let yi = round_acc_branchless(ay);
            out.push(if (xi as u64) < w && (yi as u64) < h {
                PlaneCoord::Inside {
                    x: xi as u8,
                    y: yi as u8,
                }
            } else {
                PlaneCoord::Missing
            });
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD tier — AVX2 (x86_64)
// ---------------------------------------------------------------------------

/// AVX2: four `i64` lanes per operation. Products come from
/// `_mm256_mul_epi32` (signed 32×32→64 on the low halves — exact, both
/// operands are sign-extended 32-bit values); the ties-away rounding is
/// the branchless sign/magnitude form per lane (`_mm256_srli_epi64` on the
/// non-negative magnitude equals the arithmetic shift); the in-sensor
/// judgement is two signed 64-bit compares per axis blended against the
/// [`MISS`] sentinel. Remainders shorter than four lanes run the scalar
/// definitions, which the proptests pin as bit-identical.
///
/// Safety: every `#[target_feature(enable = "avx2")]` function is reached
/// only through a wrapper that asserts `is_x86_feature_detected!("avx2")`
/// (dispatch refuses the tier otherwise, but the assertion keeps the
/// module locally sound).
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::*;
    use std::arch::x86_64::*;

    #[inline]
    fn assert_avx2() {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "SIMD dispatch tier reached without AVX2 support"
        );
    }

    /// Four sign-extended raw coordinate words as `i64` lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load4_i16(vals: [i16; 4]) -> __m256i {
        _mm256_cvtepi32_epi64(_mm_set_epi32(
            vals[3] as i32,
            vals[2] as i32,
            vals[1] as i32,
            vals[0] as i32,
        ))
    }

    /// Branchless ties-away-from-zero rounding, four lanes at once.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn round4(acc: __m256i, half: __m256i, zero: __m256i) -> __m256i {
        let sign = _mm256_cmpgt_epi64(zero, acc);
        let mag = _mm256_sub_epi64(_mm256_xor_si256(acc, sign), sign);
        let r = _mm256_srli_epi64::<{ ACC_FRAC as i32 }>(_mm256_add_epi64(mag, half));
        _mm256_sub_epi64(_mm256_xor_si256(r, sign), sign)
    }

    /// All-ones per 64-bit lane where `0 <= v < bound`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn in_range4(v: __m256i, bound: __m256i, minus_one: __m256i) -> __m256i {
        _mm256_and_si256(
            _mm256_cmpgt_epi64(bound, v),
            _mm256_cmpgt_epi64(v, minus_one),
        )
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store4(v: __m256i) -> [i64; 4] {
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        lanes
    }

    pub(super) fn transfer(
        phi: &PhiWords,
        canon: &[PackedCoord],
        width: u32,
        height: u32,
        out: &mut [u32],
    ) {
        assert_avx2();
        unsafe { transfer_avx2(phi, canon, width, height, out) }
    }

    /// Eight transfers per iteration. One unaligned 256-bit load covers
    /// eight `PackedCoord`s (`repr(C)` pairs of `i16`, x in the low half of
    /// each 32-bit lane on little-endian — the `to_word` layout);
    /// `_mm256_mul_epi32` reads the low 32 bits of each 64-bit lane, so the
    /// even-index coords multiply in place and the odd-index coords after a
    /// 32-bit lane shift, and the two result vectors re-interleave into
    /// input order with a single blend before one 256-bit store.
    #[target_feature(enable = "avx2")]
    unsafe fn transfer_avx2(
        phi: &PhiWords,
        canon: &[PackedCoord],
        width: u32,
        height: u32,
        out: &mut [u32],
    ) {
        debug_assert_eq!(canon.len(), out.len());
        let vscale = _mm256_set1_epi64x(phi.scale as i64);
        let voffx = _mm256_set1_epi64x((phi.offset_x as i64) << 7);
        let voffy = _mm256_set1_epi64x((phi.offset_y as i64) << 7);
        let vhalf = _mm256_set1_epi64x(ACC_HALF);
        let vzero = _mm256_setzero_si256();
        let vneg1 = _mm256_set1_epi64x(-1);
        let vw = _mm256_set1_epi64x(width as i64);
        let vh = _mm256_set1_epi64x(height as i64);
        let vmiss = _mm256_set1_epi64x(MISS as i64);
        let n = canon.len();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_si256(canon.as_ptr().add(i) as *const __m256i);
            let x32 = _mm256_srai_epi32::<16>(_mm256_slli_epi32::<16>(v));
            let y32 = _mm256_srai_epi32::<16>(v);
            let xe = _mm256_add_epi64(_mm256_mul_epi32(x32, vscale), voffx);
            let xo = _mm256_add_epi64(
                _mm256_mul_epi32(_mm256_srli_epi64::<32>(x32), vscale),
                voffx,
            );
            let ye = _mm256_add_epi64(_mm256_mul_epi32(y32, vscale), voffy);
            let yo = _mm256_add_epi64(
                _mm256_mul_epi32(_mm256_srli_epi64::<32>(y32), vscale),
                voffy,
            );
            let xie = round4(xe, vhalf, vzero);
            let xio = round4(xo, vhalf, vzero);
            let yie = round4(ye, vhalf, vzero);
            let yio = round4(yo, vhalf, vzero);
            let ine = _mm256_and_si256(in_range4(xie, vw, vneg1), in_range4(yie, vh, vneg1));
            let ino = _mm256_and_si256(in_range4(xio, vw, vneg1), in_range4(yio, vh, vneg1));
            // In valid lanes yi, width < 2^16, so the unsigned low-32
            // product is exact; garbage in masked lanes is blended away.
            let idxe = _mm256_add_epi64(_mm256_mul_epu32(yie, vw), xie);
            let idxo = _mm256_add_epi64(_mm256_mul_epu32(yio, vw), xio);
            let sele = _mm256_blendv_epi8(vmiss, idxe, ine);
            let selo = _mm256_blendv_epi8(vmiss, idxo, ino);
            // Every selected value fits `u32`; the odd results shift into
            // the high half of each 64-bit lane and the blend restores the
            // original coordinate order as eight packed `u32`s.
            let packed = _mm256_blend_epi32::<0b10101010>(sele, _mm256_slli_epi64::<32>(selo));
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, packed);
            i += 8;
        }
        for k in i..n {
            out[k] = scalar_transfer_index(phi, canon[k], width, height);
        }
    }

    pub(super) fn plane_mac(scale: i32, offset: i32, cs: &[i16], out: &mut Vec<i64>) {
        assert_avx2();
        unsafe { plane_mac_avx2(scale, offset, cs, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn plane_mac_avx2(scale: i32, offset: i32, cs: &[i16], out: &mut Vec<i64>) {
        let vscale = _mm256_set1_epi64x(scale as i64);
        let voff = _mm256_set1_epi64x((offset as i64) << 7);
        let mut iter = cs.chunks_exact(4);
        for four in &mut iter {
            let vc = load4_i16([four[0], four[1], four[2], four[3]]);
            let acc = _mm256_add_epi64(_mm256_mul_epi32(vc, vscale), voff);
            out.extend(store4(acc));
        }
        for &c in iter.remainder() {
            out.push(super::super::plane_mac(scale, offset, c));
        }
    }

    pub(super) fn mat_vec(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<[i64; 3]>) {
        assert_avx2();
        unsafe { mat_vec_avx2(h, coords, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mat_vec_avx2(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<[i64; 3]>) {
        let vh: [__m256i; 6] = [
            _mm256_set1_epi64x(h[0] as i64),
            _mm256_set1_epi64x(h[1] as i64),
            _mm256_set1_epi64x(h[3] as i64),
            _mm256_set1_epi64x(h[4] as i64),
            _mm256_set1_epi64x(h[6] as i64),
            _mm256_set1_epi64x(h[7] as i64),
        ];
        let vconst: [__m256i; 3] = [
            _mm256_set1_epi64x((h[2] as i64) << 7),
            _mm256_set1_epi64x((h[5] as i64) << 7),
            _mm256_set1_epi64x((h[8] as i64) << 7),
        ];
        let mut iter = coords.chunks_exact(4);
        for four in &mut iter {
            let vx = load4_i16([
                four[0].x.raw(),
                four[1].x.raw(),
                four[2].x.raw(),
                four[3].x.raw(),
            ]);
            let vy = load4_i16([
                four[0].y.raw(),
                four[1].y.raw(),
                four[2].y.raw(),
                four[3].y.raw(),
            ]);
            let mut rows = [[0i64; 4]; 3];
            for r in 0..3 {
                let acc = _mm256_add_epi64(
                    _mm256_add_epi64(
                        _mm256_mul_epi32(vx, vh[2 * r]),
                        _mm256_mul_epi32(vy, vh[2 * r + 1]),
                    ),
                    vconst[r],
                );
                rows[r] = store4(acc);
            }
            for ((&n0, &n1), &n2) in rows[0].iter().zip(&rows[1]).zip(&rows[2]) {
                out.push([n0, n1, n2]);
            }
        }
        for &c in iter.remainder() {
            out.push(super::super::mat_vec_mac(h, c));
        }
    }

    pub(super) fn project(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<PackedCoord>) {
        assert_avx2();
        unsafe { project_avx2(h, coords, out) }
    }

    /// Fused projection: the MAC lanes land in stack arrays and the exact
    /// normalization divider runs per lane — integer division has no
    /// vector form, and its cost amortizes over the ~100 per-plane
    /// transfers each surviving event feeds.
    #[target_feature(enable = "avx2")]
    unsafe fn project_avx2(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<PackedCoord>) {
        use crate::formats::Q9p7;
        let vh0 = _mm256_set1_epi64x(h[0] as i64);
        let vh1 = _mm256_set1_epi64x(h[1] as i64);
        let vh3 = _mm256_set1_epi64x(h[3] as i64);
        let vh4 = _mm256_set1_epi64x(h[4] as i64);
        let vh6 = _mm256_set1_epi64x(h[6] as i64);
        let vh7 = _mm256_set1_epi64x(h[7] as i64);
        let vc0 = _mm256_set1_epi64x((h[2] as i64) << 7);
        let vc1 = _mm256_set1_epi64x((h[5] as i64) << 7);
        let vc2 = _mm256_set1_epi64x((h[8] as i64) << 7);
        let mut iter = coords.chunks_exact(4);
        for four in &mut iter {
            let vx = load4_i16([
                four[0].x.raw(),
                four[1].x.raw(),
                four[2].x.raw(),
                four[3].x.raw(),
            ]);
            let vy = load4_i16([
                four[0].y.raw(),
                four[1].y.raw(),
                four[2].y.raw(),
                four[3].y.raw(),
            ]);
            let nx = store4(_mm256_add_epi64(
                _mm256_add_epi64(_mm256_mul_epi32(vx, vh0), _mm256_mul_epi32(vy, vh1)),
                vc0,
            ));
            let ny = store4(_mm256_add_epi64(
                _mm256_add_epi64(_mm256_mul_epi32(vx, vh3), _mm256_mul_epi32(vy, vh4)),
                vc1,
            ));
            let nw = store4(_mm256_add_epi64(
                _mm256_add_epi64(_mm256_mul_epi32(vx, vh6), _mm256_mul_epi32(vy, vh7)),
                vc2,
            ));
            for k in 0..4 {
                let (Some(px), Some(py)) = (
                    super::super::normalize_q9p7(nx[k], nw[k]),
                    super::super::normalize_q9p7(ny[k], nw[k]),
                ) else {
                    continue;
                };
                out.push(PackedCoord {
                    x: Q9p7::from_raw(px),
                    y: Q9p7::from_raw(py),
                });
            }
        }
        for &c in iter.remainder() {
            if let Some(p) = super::super::project_z0(h, c) {
                out.push(p);
            }
        }
    }

    pub(super) fn nearest_voxel(
        acc_x: &[i64],
        acc_y: &[i64],
        width: u32,
        height: u32,
        out: &mut Vec<PlaneCoord>,
    ) {
        assert_avx2();
        unsafe { nearest_voxel_avx2(acc_x, acc_y, width, height, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn nearest_voxel_avx2(
        acc_x: &[i64],
        acc_y: &[i64],
        width: u32,
        height: u32,
        out: &mut Vec<PlaneCoord>,
    ) {
        let vhalf = _mm256_set1_epi64x(ACC_HALF);
        let vzero = _mm256_setzero_si256();
        let vneg1 = _mm256_set1_epi64x(-1);
        let vw = _mm256_set1_epi64x(width as i64);
        let vh = _mm256_set1_epi64x(height as i64);
        let n = acc_x.len();
        let mut i = 0;
        while i + 4 <= n {
            let ax = _mm256_loadu_si256(acc_x[i..].as_ptr() as *const __m256i);
            let ay = _mm256_loadu_si256(acc_y[i..].as_ptr() as *const __m256i);
            let xi = store4(round4(ax, vhalf, vzero));
            let yi = store4(round4(ay, vhalf, vzero));
            let inside = store4(_mm256_and_si256(
                in_range4(round4(ax, vhalf, vzero), vw, vneg1),
                in_range4(round4(ay, vhalf, vzero), vh, vneg1),
            ));
            for k in 0..4 {
                out.push(if inside[k] != 0 {
                    PlaneCoord::Inside {
                        x: xi[k] as u8,
                        y: yi[k] as u8,
                    }
                } else {
                    PlaneCoord::Missing
                });
            }
            i += 4;
        }
        for k in i..n {
            out.push(super::super::nearest_voxel(
                acc_x[k], acc_y[k], width, height,
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD tier — NEON (aarch64)
// ---------------------------------------------------------------------------

/// NEON: two `i64` lanes per operation on the per-plane faces (the
/// widening `vmull_s32` is the exact 32×32→64 product; rounding and
/// judgement mirror the AVX2 lane algebra). The matrix MAC and the
/// standalone voxel finder share the SWAR implementations — at two lanes
/// the shuffle overhead of a NEON row MAC costs more than the packed
/// widening multiply it would replace.
///
/// Safety: wrappers assert `is_aarch64_feature_detected!("neon")` before
/// entering any `#[target_feature(enable = "neon")]` function.
#[cfg(target_arch = "aarch64")]
mod simd {
    use super::*;
    use std::arch::aarch64::*;

    #[inline]
    fn assert_neon() {
        assert!(
            std::arch::is_aarch64_feature_detected!("neon"),
            "SIMD dispatch tier reached without NEON support"
        );
    }

    /// Branchless ties-away-from-zero rounding, two lanes at once.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn round2(acc: int64x2_t, half: int64x2_t) -> int64x2_t {
        let sign = vshrq_n_s64::<63>(acc);
        let mag = vsubq_s64(veorq_s64(acc, sign), sign);
        let r = vshrq_n_s64::<{ ACC_FRAC as i32 }>(vaddq_s64(mag, half));
        vsubq_s64(veorq_s64(r, sign), sign)
    }

    pub(super) fn transfer(
        phi: &PhiWords,
        canon: &[PackedCoord],
        width: u32,
        height: u32,
        out: &mut [u32],
    ) {
        assert_neon();
        unsafe { transfer_neon(phi, canon, width, height, out) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn transfer_neon(
        phi: &PhiWords,
        canon: &[PackedCoord],
        width: u32,
        height: u32,
        out: &mut [u32],
    ) {
        debug_assert_eq!(canon.len(), out.len());
        let scale2 = vdup_n_s32(phi.scale);
        let voffx = vdupq_n_s64((phi.offset_x as i64) << 7);
        let voffy = vdupq_n_s64((phi.offset_y as i64) << 7);
        let vhalf = vdupq_n_s64(ACC_HALF);
        let (w, h) = (width as u64, height as u64);
        let n = canon.len();
        let mut i = 0;
        while i + 2 <= n {
            let two = &canon[i..i + 2];
            let xs = [two[0].x.raw() as i32, two[1].x.raw() as i32];
            let ys = [two[0].y.raw() as i32, two[1].y.raw() as i32];
            let accx = vaddq_s64(vmull_s32(vld1_s32(xs.as_ptr()), scale2), voffx);
            let accy = vaddq_s64(vmull_s32(vld1_s32(ys.as_ptr()), scale2), voffy);
            let xi = round2(accx, vhalf);
            let yi = round2(accy, vhalf);
            for k in 0..2 {
                let (x, y) = match k {
                    0 => (vgetq_lane_s64::<0>(xi), vgetq_lane_s64::<0>(yi)),
                    _ => (vgetq_lane_s64::<1>(xi), vgetq_lane_s64::<1>(yi)),
                };
                out[i + k] = if (x as u64) < w && (y as u64) < h {
                    y as u32 * width + x as u32
                } else {
                    MISS
                };
            }
            i += 2;
        }
        for k in i..n {
            out[k] = scalar_transfer_index(phi, canon[k], width, height);
        }
    }

    pub(super) fn plane_mac(scale: i32, offset: i32, cs: &[i16], out: &mut Vec<i64>) {
        assert_neon();
        unsafe { plane_mac_neon(scale, offset, cs, out) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn plane_mac_neon(scale: i32, offset: i32, cs: &[i16], out: &mut Vec<i64>) {
        let scale2 = vdup_n_s32(scale);
        let voff = vdupq_n_s64((offset as i64) << 7);
        let mut iter = cs.chunks_exact(2);
        for two in &mut iter {
            let c = [two[0] as i32, two[1] as i32];
            let acc = vaddq_s64(vmull_s32(vld1_s32(c.as_ptr()), scale2), voff);
            out.push(vgetq_lane_s64::<0>(acc));
            out.push(vgetq_lane_s64::<1>(acc));
        }
        for &c in iter.remainder() {
            out.push(super::super::plane_mac(scale, offset, c));
        }
    }

    pub(super) fn mat_vec(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<[i64; 3]>) {
        assert_neon();
        swar::mat_vec(h, coords, out);
    }

    pub(super) fn project(h: &[i32; 9], coords: &[PackedCoord], out: &mut Vec<PackedCoord>) {
        assert_neon();
        swar::project(h, coords, out);
    }

    pub(super) fn nearest_voxel(
        acc_x: &[i64],
        acc_y: &[i64],
        width: u32,
        height: u32,
        out: &mut Vec<PlaneCoord>,
    ) {
        assert_neon();
        swar::nearest_voxel(acc_x, acc_y, width, height, out);
    }
}

/// Unsupported architectures: dispatch never selects the SIMD tier here
/// ([`Dispatch::is_supported`] is `false`), so these bodies are
/// unreachable behind the `assert_supported` guard.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod simd {
    use super::*;

    pub(super) fn transfer(_: &PhiWords, _: &[PackedCoord], _: u32, _: u32, _: &mut [u32]) {
        unreachable!("SIMD tier is unsupported on this architecture");
    }

    pub(super) fn plane_mac(_: i32, _: i32, _: &[i16], _: &mut Vec<i64>) {
        unreachable!("SIMD tier is unsupported on this architecture");
    }

    pub(super) fn mat_vec(_: &[i32; 9], _: &[PackedCoord], _: &mut Vec<[i64; 3]>) {
        unreachable!("SIMD tier is unsupported on this architecture");
    }

    pub(super) fn project(_: &[i32; 9], _: &[PackedCoord], _: &mut Vec<PackedCoord>) {
        unreachable!("SIMD tier is unsupported on this architecture");
    }

    pub(super) fn nearest_voxel(_: &[i64], _: &[i64], _: u32, _: u32, _: &mut Vec<PlaneCoord>) {
        unreachable!("SIMD tier is unsupported on this architecture");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::Q9p7;

    fn supported_tiers() -> Vec<Dispatch> {
        Dispatch::ALL
            .into_iter()
            .filter(|t| t.is_supported())
            .collect()
    }

    fn coords(raws: &[(i16, i16)]) -> Vec<PackedCoord> {
        raws.iter()
            .map(|&(x, y)| PackedCoord {
                x: Q9p7::from_raw(x),
                y: Q9p7::from_raw(y),
            })
            .collect()
    }

    #[test]
    fn tier_names_and_parse_round_trip() {
        assert_eq!(Dispatch::from_name("scalar"), Ok(Dispatch::Scalar));
        assert_eq!(Dispatch::from_name("swar"), Ok(Dispatch::Swar));
        assert_eq!(Dispatch::from_name("simd"), Ok(Dispatch::Simd));
        assert_eq!(Dispatch::Scalar.name(), "scalar");
        assert_eq!(Dispatch::Swar.name(), "swar");
        assert!(matches!(
            Dispatch::from_name("avx512"),
            Err(DispatchError::UnknownTier { .. })
        ));
        let err = Dispatch::from_name("AVX2").unwrap_err();
        assert!(err.to_string().contains("AVX2"), "{err}");
    }

    #[test]
    fn detection_fallback_is_architecture_aware() {
        // Branches on the *runtime* host: with SIMD the fast tier wins; on
        // an x86-64 host without AVX2 the fallback must be the scalar loop
        // (SWAR measures ~2× slower there, docs/BENCHMARKS.md), and only
        // non-x86 hosts without SIMD keep SWAR.
        let tier = detected();
        if simd_supported() {
            assert_eq!(tier, Dispatch::Simd);
        } else if cfg!(target_arch = "x86_64") {
            assert_eq!(
                tier,
                Dispatch::Scalar,
                "x86-64 without AVX2 must not auto-select the slower SWAR tier"
            );
        } else {
            assert_eq!(tier, Dispatch::Swar);
        }
        assert!(tier.is_supported(), "detection picked an unsupported tier");
    }

    #[test]
    fn force_round_trips_and_rejects_unsupported() {
        // One test owns the process-global override: run the scenarios
        // serially and always restore the default.
        for tier in supported_tiers() {
            force(Some(tier)).expect("supported tier");
            assert_eq!(try_active(), Ok(tier));
            assert_eq!(active(), tier);
        }
        if !Dispatch::Simd.is_supported() {
            assert_eq!(
                force(Some(Dispatch::Simd)),
                Err(DispatchError::Unsupported {
                    tier: Dispatch::Simd
                })
            );
        }
        force(None).expect("restore default");
        assert!(try_active().is_ok());
    }

    #[test]
    fn every_tier_matches_scalar_on_directed_cases() {
        // Exact ties (±half), judgement edges, saturated words, remainders
        // of every length 0..=9 against 4-lane AVX2 / 2-lane SWAR packing.
        let phi_cases = [
            PhiWords::from_f64(1.0, 0.0, 0.0),
            PhiWords::from_f64(0.8371, -3.25, 17.0625),
            PhiWords::from_f64(-1.5, 239.5, -0.5),
            PhiWords {
                scale: i32::MIN,
                offset_x: i32::MAX,
                offset_y: i32::MIN,
            },
        ];
        let pool = coords(&[
            (0, 0),
            (64, -64),
            (i16::MAX, i16::MIN),
            (i16::MIN, i16::MAX),
            (-64, 64),
            (12345, -12345),
            (1, -1),
            (255, 128),
            (-32000, 31999),
        ]);
        let h = {
            let one = crate::formats::Q11p21::one().raw();
            [one, 0, 0, 0, one, 0, 0, 0, one]
        };
        for tier in supported_tiers() {
            for phi in &phi_cases {
                for n in 0..=pool.len() {
                    let batch = &pool[..n];
                    let mut idx = Vec::new();
                    transfer_nearest_batch_with(tier, phi, batch, 240, 180, &mut idx);
                    let expect: Vec<u32> = batch
                        .iter()
                        .map(|&c| scalar_transfer_index(phi, c, 240, 180))
                        .collect();
                    assert_eq!(idx, expect, "tier {} n {}", tier.name(), n);

                    let mut got = Vec::new();
                    project_z0_batch_with(tier, &h, batch, &mut got);
                    let expect: Vec<PackedCoord> = batch
                        .iter()
                        .filter_map(|&c| super::super::project_z0(&h, c))
                        .collect();
                    assert_eq!(got, expect, "tier {} n {}", tier.name(), n);
                }
            }
        }
    }

    #[test]
    fn branchless_rounding_hits_the_negative_tie() {
        // The one input family where add-half-and-shift would go wrong.
        for acc in [-ACC_HALF, ACC_HALF, ACC_HALF - 1, -(ACC_HALF - 1), 0, 1, -1] {
            assert_eq!(round_acc_branchless(acc), super::super::round_acc(acc));
        }
    }

    #[test]
    fn miss_sentinel_is_distinct_from_every_slab_index() {
        // width · height ≤ u32::MAX ⇒ max index width·height - 1 < MISS.
        let max_idx = u32::MAX as u64 - 1;
        assert!(max_idx < MISS as u64);
        // The bound is tight: one more row would collide with the sentinel.
        assert_eq!((1u64 << 16) * (1 << 16) - 1, MISS as u64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::formats::{Q11p21, Q9p7};
    use proptest::prelude::*;

    fn supported_tiers() -> Vec<Dispatch> {
        Dispatch::ALL
            .into_iter()
            .filter(|t| t.is_supported())
            .collect()
    }

    fn coords_from_raw(raws: &[(i32, i32)]) -> Vec<PackedCoord> {
        raws.iter()
            .map(|&(x, y)| PackedCoord {
                x: Q9p7::from_raw(x as i16),
                y: Q9p7::from_raw(y as i16),
            })
            .collect()
    }

    /// Full raw range of a Q9.7 word (the shim has no `any::<i16>()`).
    const RAW16: std::ops::Range<i32> = i16::MIN as i32..i16::MAX as i32 + 1;

    proptest! {
        /// Batched transfer is byte-identical to the scalar kernel on every
        /// supported tier, for arbitrary raw words, arbitrary batch sizes
        /// (0, 1, lane remainders) and arbitrary sensor judgement bounds.
        #[test]
        fn transfer_batch_is_bit_identical_on_every_tier(
            scale in i32::MIN..i32::MAX,
            offset_x in i32::MIN..i32::MAX,
            offset_y in i32::MIN..i32::MAX,
            raws in collection::vec((RAW16, RAW16), 0..19),
            width in 1u32..512,
            height in 1u32..512,
        ) {
            let phi = PhiWords { scale, offset_x, offset_y };
            let canon = coords_from_raw(&raws);
            let expect: Vec<u32> = canon
                .iter()
                .map(|&c| scalar_transfer_index(&phi, c, width, height))
                .collect();
            let mut idx = Vec::new();
            for tier in supported_tiers() {
                transfer_nearest_batch_with(tier, &phi, &canon, width, height, &mut idx);
                prop_assert_eq!(&idx, &expect, "tier {}", tier.name());
            }
        }

        /// Batched projection keeps exactly the scalar kernel's survivors,
        /// in order, with byte-identical Q9.7 words, on every tier.
        #[test]
        fn project_batch_is_bit_identical_on_every_tier(
            h_vec in collection::vec(i32::MIN..i32::MAX, 9..10),
            raws in collection::vec((RAW16, RAW16), 0..19),
        ) {
            let h: [i32; 9] = h_vec.try_into().expect("nine entries");
            let coords = coords_from_raw(&raws);
            let expect: Vec<PackedCoord> = coords
                .iter()
                .filter_map(|&c| super::super::project_z0(&h, c))
                .collect();
            let mut got = Vec::new();
            for tier in supported_tiers() {
                project_z0_batch_with(tier, &h, &coords, &mut got);
                prop_assert_eq!(&got, &expect, "tier {}", tier.name());
            }
        }

        /// Batched matrix MAC reproduces the scalar wide accumulators
        /// exactly — the SWAR bias algebra and the AVX2 lane products are
        /// the same integers.
        #[test]
        fn mat_vec_batch_is_bit_identical_on_every_tier(
            h_vec in collection::vec(i32::MIN..i32::MAX, 9..10),
            raws in collection::vec((RAW16, RAW16), 0..19),
        ) {
            let h: [i32; 9] = h_vec.try_into().expect("nine entries");
            let coords = coords_from_raw(&raws);
            let expect: Vec<[i64; 3]> = coords
                .iter()
                .map(|&c| super::super::mat_vec_mac(&h, c))
                .collect();
            let mut got = Vec::new();
            for tier in supported_tiers() {
                mat_vec_mac_batch_with(tier, &h, &coords, &mut got);
                prop_assert_eq!(&got, &expect, "tier {}", tier.name());
            }
        }

        /// Batched plane MAC over raw Q9.7 words is exact on every tier,
        /// including the odd-length SWAR remainder.
        #[test]
        fn plane_mac_batch_is_bit_identical_on_every_tier(
            scale in i32::MIN..i32::MAX,
            offset in i32::MIN..i32::MAX,
            cs_raw in collection::vec(RAW16, 0..19),
        ) {
            let cs: Vec<i16> = cs_raw.iter().map(|&c| c as i16).collect();
            let expect: Vec<i64> = cs
                .iter()
                .map(|&c| super::super::plane_mac(scale, offset, c))
                .collect();
            let mut got = Vec::new();
            for tier in supported_tiers() {
                plane_mac_batch_with(tier, scale, offset, &cs, &mut got);
                prop_assert_eq!(&got, &expect, "tier {}", tier.name());
            }
        }

        /// Batched voxel finding reproduces the scalar rounding and
        /// judgement — including exact half ties on both signs — on every
        /// tier.
        #[test]
        fn nearest_voxel_batch_is_bit_identical_on_every_tier(
            accs in collection::vec(
                (-(1i64 << 47)..(1i64 << 47), -(1i64 << 47)..(1i64 << 47)),
                0..19,
            ),
            tie_lane in 0usize..19,
            width in 1u32..257,
            height in 1u32..257,
        ) {
            let mut acc_x: Vec<i64> = accs.iter().map(|&(x, _)| x).collect();
            let acc_y: Vec<i64> = accs.iter().map(|&(_, y)| y).collect();
            // Plant an exact negative tie somewhere: the case where a
            // round-half-up implementation would diverge.
            if !acc_x.is_empty() {
                let k = tie_lane % acc_x.len();
                acc_x[k] = -ACC_HALF;
            }
            let expect: Vec<PlaneCoord> = acc_x
                .iter()
                .zip(&acc_y)
                .map(|(&ax, &ay)| super::super::nearest_voxel(ax, ay, width, height))
                .collect();
            let mut got = Vec::new();
            for tier in supported_tiers() {
                nearest_voxel_batch_with(tier, &acc_x, &acc_y, width, height, &mut got);
                prop_assert_eq!(&got, &expect, "tier {}", tier.name());
            }
        }

        /// The projection proptest domain of the scalar kernel, replayed
        /// against the batched path under the session's default tier: the
        /// public wrappers are covered too, not only the `_with` variants.
        #[test]
        fn default_dispatch_projection_agrees_with_scalar(
            h_vec in collection::vec(-(1i32 << 24)..(1i32 << 24), 9..10),
            raws in collection::vec((RAW16, RAW16), 0..9),
        ) {
            let h: [i32; 9] = h_vec.try_into().expect("nine entries");
            let coords = coords_from_raw(&raws);
            let expect: Vec<PackedCoord> = coords
                .iter()
                .filter_map(|&c| super::super::project_z0(&h, c))
                .collect();
            let mut got = Vec::new();
            project_z0_batch(&h, &coords, &mut got);
            prop_assert_eq!(got, expect);
            let _ = Q11p21::one();
        }
    }
}
