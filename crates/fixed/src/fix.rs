//! Generic signed fixed-point numbers with a const-generic fractional width.
//!
//! The Eventor datapath replaces the baseline's double-precision arithmetic
//! with short fixed-point formats (Table 1 of the paper). [`Fix`] is the
//! storage- and width-parameterised building block: `Fix<i16, 7>` is the
//! Q9.7 format used for event coordinates, `Fix<i32, 21>` the Q11.21 format
//! used for the homography and the proportional coefficients φ.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Backing integer storage for a fixed-point value.
///
/// Implemented for `i16`, `i32` and `i64`. The trait is sealed: the
/// quantization strategy of the accelerator only ever uses these widths.
pub trait FixedStorage:
    Copy + Clone + fmt::Debug + PartialEq + Eq + PartialOrd + Ord + private::Sealed
{
    /// Total bit width of the storage type.
    const BITS: u32;
    /// Converts to `i64` without loss.
    fn to_i64(self) -> i64;
    /// Saturating conversion from `i64`.
    fn from_i64_saturating(v: i64) -> Self;
    /// Minimum representable raw value.
    fn min_raw() -> i64;
    /// Maximum representable raw value.
    fn max_raw() -> i64;
}

mod private {
    pub trait Sealed {}
    impl Sealed for i16 {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
}

macro_rules! impl_storage {
    ($ty:ty) => {
        impl FixedStorage for $ty {
            const BITS: u32 = <$ty>::BITS;
            #[inline]
            fn to_i64(self) -> i64 {
                self as i64
            }
            #[inline]
            fn from_i64_saturating(v: i64) -> Self {
                if v > <$ty>::MAX as i64 {
                    <$ty>::MAX
                } else if v < <$ty>::MIN as i64 {
                    <$ty>::MIN
                } else {
                    v as $ty
                }
            }
            #[inline]
            fn min_raw() -> i64 {
                <$ty>::MIN as i64
            }
            #[inline]
            fn max_raw() -> i64 {
                <$ty>::MAX as i64
            }
        }
    };
}

impl_storage!(i16);
impl_storage!(i32);
impl_storage!(i64);

/// A signed fixed-point number with `FRAC` fractional bits stored in `S`.
///
/// Conversions from `f64` saturate at the representable range (the behaviour
/// of the RTL datapath, which clamps rather than wraps), and round to nearest.
///
/// # Examples
///
/// ```
/// use eventor_fixed::Fix;
/// // Q9.7: 16-bit storage, 7 fractional bits — the paper's event-coordinate format.
/// let x: Fix<i16, 7> = Fix::from_f64(123.4375);
/// assert_eq!(x.to_f64(), 123.4375);
/// assert_eq!(Fix::<i16, 7>::RESOLUTION, 1.0 / 128.0);
/// ```
/// `repr(transparent)` pins the layout to the raw storage word so
/// aggregates of fixed-point values (e.g. `PackedCoord`) have the exact
/// in-memory shape of their bus words — the batched SIMD kernel tier
/// relies on this for vector loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct Fix<S: FixedStorage, const FRAC: u32> {
    raw: S,
}

impl<S: FixedStorage, const FRAC: u32> Fix<S, FRAC> {
    /// Smallest representable increment (`2⁻ᶠʳᵃᶜ`).
    pub const RESOLUTION: f64 = 1.0 / (1u64 << FRAC) as f64;

    /// Zero.
    pub fn zero() -> Self {
        Self {
            raw: S::from_i64_saturating(0),
        }
    }

    /// One.
    pub fn one() -> Self {
        Self {
            raw: S::from_i64_saturating(1i64 << FRAC),
        }
    }

    /// Creates a value from its raw (already shifted) representation.
    pub fn from_raw(raw: S) -> Self {
        Self { raw }
    }

    /// The raw (shifted) representation.
    pub fn raw(self) -> S {
        self.raw
    }

    /// Number of fractional bits.
    pub const fn frac_bits() -> u32 {
        FRAC
    }

    /// Number of integer bits (including the sign bit).
    pub const fn int_bits() -> u32 {
        S::BITS - FRAC
    }

    /// Largest representable value.
    pub fn max_value() -> Self {
        Self {
            raw: S::from_i64_saturating(S::max_raw()),
        }
    }

    /// Smallest (most negative) representable value.
    pub fn min_value() -> Self {
        Self {
            raw: S::from_i64_saturating(S::min_raw()),
        }
    }

    /// Converts from `f64`, rounding to nearest and saturating at the range
    /// bounds. Non-finite inputs saturate (NaN maps to zero).
    pub fn from_f64(v: f64) -> Self {
        if v.is_nan() {
            return Self::zero();
        }
        let scaled = v * (1u64 << FRAC) as f64;
        let rounded = scaled.round();
        let clamped = if rounded >= S::max_raw() as f64 {
            S::max_raw()
        } else if rounded <= S::min_raw() as f64 {
            S::min_raw()
        } else {
            rounded as i64
        };
        Self {
            raw: S::from_i64_saturating(clamped),
        }
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.raw.to_i64() as f64 * Self::RESOLUTION
    }

    /// Quantization error committed when representing `v`.
    pub fn quantization_error(v: f64) -> f64 {
        (Self::from_f64(v).to_f64() - v).abs()
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self {
            raw: S::from_i64_saturating(self.raw.to_i64() + rhs.raw.to_i64()),
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self {
            raw: S::from_i64_saturating(self.raw.to_i64() - rhs.raw.to_i64()),
        }
    }

    /// Saturating multiplication (result renormalised to `FRAC` bits, rounded
    /// toward nearest by adding half an LSB before the shift).
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = self.raw.to_i64().wrapping_mul(rhs.raw.to_i64());
        let half = 1i64 << (FRAC - 1);
        let shifted = (wide + half) >> FRAC;
        Self {
            raw: S::from_i64_saturating(shifted),
        }
    }

    /// Rounds to the nearest integer, returning a plain `i64`.
    ///
    /// This mirrors the *Nearest Voxel Finder* hardware unit: nearest voting
    /// only needs `round(x)`, so `x(Zi)` coordinates can be stored as plain
    /// 8-bit integers (Table 1, row 3).
    pub fn round_to_int(self) -> i64 {
        let half = 1i64 << (FRAC - 1);
        (self.raw.to_i64() + half) >> FRAC
    }

    /// Whether this value sits at either saturation bound.
    pub fn is_saturated(self) -> bool {
        let r = self.raw.to_i64();
        r == S::max_raw() || r == S::min_raw()
    }
}

impl<S: FixedStorage, const FRAC: u32> Default for Fix<S, FRAC> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<S: FixedStorage, const FRAC: u32> Add for Fix<S, FRAC> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<S: FixedStorage, const FRAC: u32> AddAssign for Fix<S, FRAC> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<S: FixedStorage, const FRAC: u32> Sub for Fix<S, FRAC> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<S: FixedStorage, const FRAC: u32> SubAssign for Fix<S, FRAC> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<S: FixedStorage, const FRAC: u32> Mul for Fix<S, FRAC> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl<S: FixedStorage, const FRAC: u32> Neg for Fix<S, FRAC> {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            raw: S::from_i64_saturating(-self.raw.to_i64()),
        }
    }
}

impl<S: FixedStorage, const FRAC: u32> PartialOrd for Fix<S, FRAC> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S: FixedStorage, const FRAC: u32> Ord for Fix<S, FRAC> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.raw.to_i64().cmp(&other.raw.to_i64())
    }
}

impl<S: FixedStorage, const FRAC: u32> fmt::Display for Fix<S, FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.to_f64())
    }
}

impl<S: FixedStorage, const FRAC: u32> From<Fix<S, FRAC>> for f64 {
    fn from(v: Fix<S, FRAC>) -> f64 {
        v.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Q9_7 = Fix<i16, 7>;
    type Q11_21 = Fix<i32, 21>;

    #[test]
    fn resolution_and_bit_budget() {
        assert_eq!(Q9_7::RESOLUTION, 1.0 / 128.0);
        assert_eq!(Q9_7::frac_bits(), 7);
        assert_eq!(Q9_7::int_bits(), 9);
        assert_eq!(Q11_21::frac_bits(), 21);
        assert_eq!(Q11_21::int_bits(), 11);
    }

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0, 1.0, -1.0, 0.5, 100.25, -200.125, 255.9921875] {
            let q = Q9_7::from_f64(v);
            assert_eq!(q.to_f64(), v, "value {v}");
        }
    }

    #[test]
    fn rounding_to_nearest() {
        // 0.004 is closest to 0.0078125 (1/128) ? No: 0.004 < 0.00390625 is false,
        // 0.004*128 = 0.512 -> rounds to 1 -> 0.0078125.
        let q = Q9_7::from_f64(0.004);
        assert_eq!(q.to_f64(), 1.0 / 128.0);
        let q = Q9_7::from_f64(0.003);
        assert_eq!(q.to_f64(), 0.0);
    }

    #[test]
    fn saturation_at_bounds() {
        let max = Q9_7::from_f64(1e9);
        assert!(max.is_saturated());
        assert_eq!(max, Q9_7::max_value());
        let min = Q9_7::from_f64(-1e9);
        assert!(min.is_saturated());
        assert_eq!(min, Q9_7::min_value());
        // Q9.7 max is 255.9921875
        assert!((Q9_7::max_value().to_f64() - 255.9921875).abs() < 1e-12);
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(Q9_7::from_f64(f64::NAN), Q9_7::zero());
        assert_eq!(Q9_7::from_f64(f64::INFINITY), Q9_7::max_value());
        assert_eq!(Q9_7::from_f64(f64::NEG_INFINITY), Q9_7::min_value());
    }

    #[test]
    fn arithmetic_matches_float_within_resolution() {
        let a = Q11_21::from_f64(1.2345);
        let b = Q11_21::from_f64(-0.9876);
        assert!(((a + b).to_f64() - (1.2345 - 0.9876)).abs() < 2.0 * Q11_21::RESOLUTION);
        assert!(((a - b).to_f64() - (1.2345 + 0.9876)).abs() < 2.0 * Q11_21::RESOLUTION);
        assert!(((a * b).to_f64() - (1.2345 * -0.9876)).abs() < 4.0 * Q11_21::RESOLUTION);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let a = Q9_7::max_value();
        let b = Q9_7::one();
        assert_eq!(a + b, Q9_7::max_value());
        let c = Q9_7::min_value();
        assert_eq!(c - b, Q9_7::min_value());
    }

    #[test]
    fn round_to_int_behaviour() {
        assert_eq!(Q9_7::from_f64(3.49).round_to_int(), 3);
        assert_eq!(Q9_7::from_f64(3.51).round_to_int(), 4);
        assert_eq!(Q9_7::from_f64(-2.49).round_to_int(), -2);
        assert_eq!(Q9_7::from_f64(0.0).round_to_int(), 0);
    }

    #[test]
    fn ordering_matches_float_ordering() {
        let a = Q9_7::from_f64(1.5);
        let b = Q9_7::from_f64(2.25);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!((-a).cmp(&a), Ordering::Less);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        for i in 0..1000 {
            let v = (i as f64) * 0.123456 - 60.0;
            assert!(Q9_7::quantization_error(v) <= Q9_7::RESOLUTION / 2.0 + 1e-12);
            assert!(Q11_21::quantization_error(v) <= Q11_21::RESOLUTION / 2.0 + 1e-15);
        }
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Q9_7::from_f64(1.5)).is_empty());
    }
}
