//! # eventor-fixed
//!
//! Fixed-point arithmetic substrate implementing the **hybrid data
//! quantization** strategy of the Eventor accelerator (Table 1 of the paper):
//!
//! * event coordinates and canonical back-projections in **Q9.7** (16 bit),
//! * per-plane projections as **8-bit integers** (nearest voting only needs
//!   the rounded pixel),
//! * the homography `H_{Z0}` and the proportional coefficients `φ` in
//!   **Q11.21** (32 bit),
//! * DSI scores as **16-bit integers**.
//!
//! The quantized datapath in `eventor-core` is built exclusively on these
//! types, so the accuracy comparison of Fig. 4b / Fig. 7a exercises exactly
//! the arithmetic the RTL would perform.
//!
//! The [`kernel`] module is the **bit-true integer datapath kernel**: the
//! single implementation of the Table 1 arithmetic (wide-MAC canonical
//! projection, normalization with the projection-missing judgement,
//! per-plane scalar MAC, Nearest Voxel Finder) that both the software
//! golden model (`eventor-core::quantized`) and the functional device model
//! (`eventor-hwsim::datapath`) wrap — integer end to end, no `f64` between
//! quantization points.
//!
//! ## Example
//!
//! ```
//! use eventor_fixed::{PackedCoord, Q9p7, Q11p21};
//!
//! // An event coordinate quantized for the 32-bit AXI bus.
//! let coord = PackedCoord::from_f64(133.75, 71.5);
//! assert_eq!(PackedCoord::from_word(coord.to_word()), coord);
//!
//! // Homography entries keep ~6 decimal digits in Q11.21.
//! let h = Q11p21::from_f64(0.99973);
//! assert!((h.to_f64() - 0.99973).abs() < 1e-6);
//! # let _ = Q9p7::from_f64(1.0);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod fix;
mod formats;
pub mod kernel;
mod quantize;

pub use fix::{Fix, FixedStorage};
pub use formats::{
    frame_memory_footprint, DsiScore, PackedCoord, PlaneCoord, Q11p21, Q9p7, QuantizationSpec,
    TABLE1_STRATEGY,
};
pub use quantize::{analyze, round_trip, QuantizationReport};
