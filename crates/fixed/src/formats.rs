//! The concrete quantization formats of Table 1 and helpers to apply them to
//! the EMVS data types.
//!
//! | Quantized data                | Total bits | Integer | Decimal |
//! |-------------------------------|-----------|---------|---------|
//! | `(x_k, y_k)` raw event coords | 16        | 9       | 7       |
//! | `(x_k(Z0), y_k(Z0))`          | 16        | 9       | 7       |
//! | `(x_k(Zi), y_k(Zi))`          | 8         | 8       | 0       |
//! | Homography `H_{Z0}`           | 32        | 11      | 21      |
//! | Proportional coefficients φ   | 32        | 11      | 21      |
//! | DSI scores                    | 16        | 16      | 0       |

use crate::fix::Fix;
use std::fmt;

/// Q9.7 — 16-bit fixed point with 7 fractional bits.
///
/// Used for the raw event coordinates `(x_k, y_k)` and for the canonical
/// back-projections `(x_k(Z0), y_k(Z0))`.
pub type Q9p7 = Fix<i16, 7>;

impl Q9p7 {
    /// Largest representable Q9.7 magnitude (`i16::MAX / 128 =
    /// 255.9921875`) — the bound of the **projection-missing judgement**:
    /// canonical projections beyond it would saturate the transport format
    /// and corrupt every subsequent plane transfer, so the datapath drops
    /// the event instead (ARCHITECTURE.md contract 3.1).
    ///
    /// Note the asymmetry: the raw word `i16::MIN` (`-256.0`) is
    /// representable but never produced — the judgement brackets results at
    /// `±i16::MAX` so the bound is symmetric.
    pub const MAX_MAGNITUDE: f64 = i16::MAX as f64 * Self::RESOLUTION;
}

/// Q11.21 — 32-bit fixed point with 21 fractional bits.
///
/// Used for the homography `H_{Z0}` and the proportional back-projection
/// coefficients `φ`.
pub type Q11p21 = Fix<i32, 21>;

/// DSI score storage: 16-bit unsigned integer counts (nearest voting adds
/// integer votes, so no fractional part is needed).
pub type DsiScore = u16;

/// A pair of Q9.7 coordinates packed the way the DMA engine ships them: two
/// 16-bit values concatenated into one 32-bit word on the AXI bus.
///
/// # Examples
///
/// ```
/// use eventor_fixed::PackedCoord;
/// let p = PackedCoord::from_f64(123.5, 67.25);
/// let w = p.to_word();
/// let q = PackedCoord::from_word(w);
/// assert_eq!(q.x_f64(), 123.5);
/// assert_eq!(q.y_f64(), 67.25);
/// ```
/// The `repr(C)` layout is load-bearing: on little-endian targets a
/// `PackedCoord` in memory *is* its [`to_word`](Self::to_word) bus word
/// (x in the low half, y in the high half), which lets the batched SIMD
/// kernel tier load eight packed coordinates with a single vector load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(C)]
pub struct PackedCoord {
    /// Quantized x coordinate.
    pub x: Q9p7,
    /// Quantized y coordinate.
    pub y: Q9p7,
}

impl PackedCoord {
    /// Quantizes a floating-point pixel coordinate.
    pub fn from_f64(x: f64, y: f64) -> Self {
        Self {
            x: Q9p7::from_f64(x),
            y: Q9p7::from_f64(y),
        }
    }

    /// The x coordinate as `f64`.
    pub fn x_f64(&self) -> f64 {
        self.x.to_f64()
    }

    /// The y coordinate as `f64`.
    pub fn y_f64(&self) -> f64 {
        self.y.to_f64()
    }

    /// Packs into a 32-bit bus word (x in the low half, y in the high half).
    pub fn to_word(self) -> u32 {
        (self.x.raw() as u16 as u32) | ((self.y.raw() as u16 as u32) << 16)
    }

    /// Unpacks from a 32-bit bus word.
    pub fn from_word(w: u32) -> Self {
        Self {
            x: Q9p7::from_raw((w & 0xFFFF) as u16 as i16),
            y: Q9p7::from_raw((w >> 16) as u16 as i16),
        }
    }
}

impl fmt::Display for PackedCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// 8-bit integer pixel coordinate on a depth plane `(x_k(Zi), y_k(Zi))`.
///
/// Nearest voting only needs the rounded integer pixel, so the projections on
/// the non-canonical planes are stored as plain bytes. Values outside the
/// sensor (including the 240-wide x axis, which does not fit a `u8`) are
/// represented as [`PlaneCoord::Missing`] — the "projection missing
/// judgement" performed by the Nearest Voxel Finder.
///
/// The DAVIS x axis spans 0..239 which exceeds `u8::MAX`? No: 239 < 255, so an
/// unsigned byte suffices exactly as the paper states (8-bit integer part).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlaneCoord {
    /// The projection falls inside the sensor at this integer pixel.
    Inside {
        /// Column index.
        x: u8,
        /// Row index.
        y: u8,
    },
    /// The projection falls outside the sensor; no vote is generated.
    #[default]
    Missing,
}

impl PlaneCoord {
    /// Rounds a floating-point plane projection to the nearest voxel, mapping
    /// out-of-sensor projections to [`PlaneCoord::Missing`].
    #[inline]
    pub fn from_projection(x: f64, y: f64, width: u32, height: u32) -> Self {
        let xi = x.round();
        let yi = y.round();
        if xi < 0.0
            || yi < 0.0
            || xi >= width as f64
            || yi >= height as f64
            || !xi.is_finite()
            || !yi.is_finite()
        {
            Self::Missing
        } else {
            Self::Inside {
                x: xi as u8,
                y: yi as u8,
            }
        }
    }

    /// The vote address `(x, y)` when inside the sensor.
    #[inline]
    pub fn address(self) -> Option<(u16, u16)> {
        match self {
            Self::Inside { x, y } => Some((x as u16, y as u16)),
            Self::Missing => None,
        }
    }

    /// Whether the projection generates a vote.
    pub fn is_inside(self) -> bool {
        matches!(self, Self::Inside { .. })
    }
}

/// One row of Table 1: how a datum class is quantized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizationSpec {
    /// Human-readable name of the quantized data type.
    pub name: &'static str,
    /// Total storage bits.
    pub total_bits: u32,
    /// Integer bits (including sign where applicable).
    pub integer_bits: u32,
    /// Fractional bits.
    pub decimal_bits: u32,
}

/// The full Table 1 quantization strategy.
pub const TABLE1_STRATEGY: [QuantizationSpec; 6] = [
    QuantizationSpec {
        name: "(x_k, y_k)",
        total_bits: 16,
        integer_bits: 9,
        decimal_bits: 7,
    },
    QuantizationSpec {
        name: "(x_k(Z0), y_k(Z0))",
        total_bits: 16,
        integer_bits: 9,
        decimal_bits: 7,
    },
    QuantizationSpec {
        name: "(x_k(Zi), y_k(Zi))",
        total_bits: 8,
        integer_bits: 8,
        decimal_bits: 0,
    },
    QuantizationSpec {
        name: "H_Z0",
        total_bits: 32,
        integer_bits: 11,
        decimal_bits: 21,
    },
    QuantizationSpec {
        name: "phi",
        total_bits: 32,
        integer_bits: 11,
        decimal_bits: 21,
    },
    QuantizationSpec {
        name: "DSI scores",
        total_bits: 16,
        integer_bits: 16,
        decimal_bits: 0,
    },
];

/// Memory footprint comparison between the float baseline and the quantized
/// datapath, per event frame.
///
/// Returns `(float_bytes, quantized_bytes)` for `events_per_frame` events and
/// `n_planes` depth planes plus the DSI of `w*h*n_planes` voxels.
pub fn frame_memory_footprint(
    events_per_frame: usize,
    n_planes: usize,
    width: usize,
    height: usize,
) -> (usize, usize) {
    // Baseline: coordinates and parameters in f32 (the EMVS reference uses
    // single-precision on the CPU), DSI scores in f32.
    let float_events = events_per_frame * 2 * 4; // (x, y) f32
    let float_canonical = events_per_frame * 2 * 4;
    let float_params = (9 + 3 * n_planes) * 4; // H (3x3) + phi (3 per plane)
    let float_dsi = width * height * n_planes * 4;
    let float_total = float_events + float_canonical + float_params + float_dsi;

    let q_events = events_per_frame * 2 * 2; // Q9.7 pairs
    let q_canonical = events_per_frame * 2 * 2;
    let q_params = (9 + 3 * n_planes) * 4; // Q11.21 is still 32-bit
    let q_dsi = width * height * n_planes * 2; // u16 scores
    let q_total = q_events + q_canonical + q_params + q_dsi;

    (float_total, q_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_coord_round_trip_through_bus_word() {
        for &(x, y) in &[
            (0.0, 0.0),
            (239.5, 179.25),
            (120.0078125, 90.9921875),
            (1.0, 255.0),
        ] {
            let p = PackedCoord::from_f64(x, y);
            let q = PackedCoord::from_word(p.to_word());
            assert_eq!(p, q);
        }
    }

    #[test]
    fn packed_coord_negative_values_survive_packing() {
        // Undistortion can push coordinates slightly negative.
        let p = PackedCoord::from_f64(-1.5, -0.25);
        let q = PackedCoord::from_word(p.to_word());
        assert_eq!(q.x_f64(), -1.5);
        assert_eq!(q.y_f64(), -0.25);
    }

    #[test]
    fn davis_coordinates_fit_q9_7_exactly_at_half_pixel() {
        // 9 integer bits cover ±255; DAVIS is 240x180 so all pixels fit.
        let p = PackedCoord::from_f64(239.0, 179.0);
        assert_eq!(p.x_f64(), 239.0);
        assert_eq!(p.y_f64(), 179.0);
    }

    #[test]
    fn plane_coord_rounding_and_bounds() {
        assert_eq!(
            PlaneCoord::from_projection(10.4, 20.6, 240, 180),
            PlaneCoord::Inside { x: 10, y: 21 }
        );
        assert_eq!(
            PlaneCoord::from_projection(-0.6, 5.0, 240, 180),
            PlaneCoord::Missing
        );
        assert_eq!(
            PlaneCoord::from_projection(239.6, 5.0, 240, 180),
            PlaneCoord::Missing
        );
        assert_eq!(
            PlaneCoord::from_projection(5.0, 180.0, 240, 180),
            PlaneCoord::Missing
        );
        assert_eq!(
            PlaneCoord::from_projection(f64::NAN, 5.0, 240, 180),
            PlaneCoord::Missing
        );
        // Boundary: -0.4 rounds to 0 which is inside.
        assert_eq!(
            PlaneCoord::from_projection(-0.4, 0.0, 240, 180),
            PlaneCoord::Inside { x: 0, y: 0 }
        );
    }

    #[test]
    fn plane_coord_address() {
        assert_eq!(PlaneCoord::Inside { x: 3, y: 7 }.address(), Some((3, 7)));
        assert_eq!(PlaneCoord::Missing.address(), None);
        assert!(PlaneCoord::Inside { x: 0, y: 0 }.is_inside());
        assert!(!PlaneCoord::Missing.is_inside());
    }

    #[test]
    fn table1_matches_paper() {
        assert_eq!(TABLE1_STRATEGY.len(), 6);
        let h = TABLE1_STRATEGY.iter().find(|s| s.name == "H_Z0").unwrap();
        assert_eq!((h.total_bits, h.integer_bits, h.decimal_bits), (32, 11, 21));
        for s in &TABLE1_STRATEGY {
            assert_eq!(s.total_bits, s.integer_bits + s.decimal_bits, "{}", s.name);
        }
    }

    #[test]
    fn quantization_saves_close_to_half_the_memory() {
        let (float_bytes, q_bytes) = frame_memory_footprint(1024, 100, 240, 180);
        let ratio = q_bytes as f64 / float_bytes as f64;
        // The paper claims "up to 50%" savings; the DSI dominates so the ratio
        // is essentially 1/2.
        assert!(ratio < 0.55, "ratio {ratio}");
        assert!(ratio > 0.45, "ratio {ratio}");
    }

    #[test]
    fn q_formats_match_table1_widths() {
        assert_eq!(Q9p7::frac_bits() + Q9p7::int_bits(), 16);
        assert_eq!(Q11p21::frac_bits() + Q11p21::int_bits(), 32);
        assert_eq!(Q9p7::int_bits(), 9);
        assert_eq!(Q11p21::int_bits(), 11);
    }
}
