//! Quantization error analysis helpers used by the Table 1 / Fig. 4b
//! experiments.

use crate::fix::{Fix, FixedStorage};

/// Summary statistics of the error introduced by quantizing a set of values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantizationReport {
    /// Number of samples analysed.
    pub count: usize,
    /// Mean absolute error.
    pub mean_abs_error: f64,
    /// Maximum absolute error.
    pub max_abs_error: f64,
    /// Root-mean-square error.
    pub rms_error: f64,
    /// Fraction of samples that saturated.
    pub saturation_rate: f64,
}

/// Quantizes every value through format `Fix<S, FRAC>` and reports the error.
pub fn analyze<S: FixedStorage, const FRAC: u32>(values: &[f64]) -> QuantizationReport {
    if values.is_empty() {
        return QuantizationReport::default();
    }
    let mut sum_abs = 0.0;
    let mut max_abs: f64 = 0.0;
    let mut sum_sq = 0.0;
    let mut saturated = 0usize;
    for &v in values {
        let q = Fix::<S, FRAC>::from_f64(v);
        let err = (q.to_f64() - v).abs();
        sum_abs += err;
        sum_sq += err * err;
        max_abs = max_abs.max(err);
        if q.is_saturated() {
            saturated += 1;
        }
    }
    let n = values.len() as f64;
    QuantizationReport {
        count: values.len(),
        mean_abs_error: sum_abs / n,
        max_abs_error: max_abs,
        rms_error: (sum_sq / n).sqrt(),
        saturation_rate: saturated as f64 / n,
    }
}

/// Quantizes a value through format `Fix<S, FRAC>` and returns the
/// reconstructed `f64` — a "round trip through the hardware datapath".
pub fn round_trip<S: FixedStorage, const FRAC: u32>(v: f64) -> f64 {
    Fix::<S, FRAC>::from_f64(v).to_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_default_report() {
        let r = analyze::<i16, 7>(&[]);
        assert_eq!(r.count, 0);
        assert_eq!(r.mean_abs_error, 0.0);
    }

    #[test]
    fn error_bounded_by_half_lsb_when_in_range() {
        let values: Vec<f64> = (0..500).map(|i| i as f64 * 0.377 - 90.0).collect();
        let r = analyze::<i16, 7>(&values);
        assert_eq!(r.count, 500);
        assert!(r.max_abs_error <= 0.5 / 128.0 + 1e-12);
        assert!(r.mean_abs_error <= r.max_abs_error);
        assert!(r.rms_error <= r.max_abs_error);
        assert_eq!(r.saturation_rate, 0.0);
    }

    #[test]
    fn saturation_detected() {
        let values = [1000.0, -1000.0, 1.0];
        let r = analyze::<i16, 7>(&values);
        assert!((r.saturation_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.max_abs_error > 100.0);
    }

    #[test]
    fn high_precision_format_has_tiny_error() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.01).sin() * 2.0).collect();
        let r = analyze::<i32, 21>(&values);
        assert!(r.max_abs_error < 1e-6);
    }

    #[test]
    fn round_trip_is_idempotent() {
        let v = 12.3456789;
        let once = round_trip::<i32, 21>(v);
        let twice = round_trip::<i32, 21>(once);
        assert_eq!(once, twice);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn q9_7_error_bounded(v in -255.0..255.0f64) {
            let err = (round_trip::<i16, 7>(v) - v).abs();
            prop_assert!(err <= 0.5 / 128.0 + 1e-12);
        }

        #[test]
        fn q11_21_error_bounded(v in -1023.0..1023.0f64) {
            let err = (round_trip::<i32, 21>(v) - v).abs();
            prop_assert!(err <= 0.5 / (1u64 << 21) as f64 + 1e-12);
        }

        #[test]
        fn quantization_is_monotonic(a in -250.0..250.0f64, b in -250.0..250.0f64) {
            let qa = Fix::<i16, 7>::from_f64(a);
            let qb = Fix::<i16, 7>::from_f64(b);
            if a <= b {
                prop_assert!(qa <= qb);
            } else {
                prop_assert!(qa >= qb);
            }
        }

        #[test]
        fn fixed_add_is_commutative(a in -100.0..100.0f64, b in -100.0..100.0f64) {
            let qa = Fix::<i16, 7>::from_f64(a);
            let qb = Fix::<i16, 7>::from_f64(b);
            prop_assert_eq!(qa + qb, qb + qa);
        }

        #[test]
        fn fixed_mul_is_commutative(a in -10.0..10.0f64, b in -10.0..10.0f64) {
            let qa = Fix::<i32, 21>::from_f64(a);
            let qb = Fix::<i32, 21>::from_f64(b);
            prop_assert_eq!(qa * qb, qb * qa);
        }
    }
}
