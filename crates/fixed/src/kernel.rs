//! The **bit-true integer datapath kernel**: the one implementation of the
//! Table 1 arithmetic that every Eventor datapath wraps.
//!
//! The reproduction used to model the quantized arithmetic twice — once in
//! `eventor-core::quantized` (the golden model) and once in
//! `eventor-hwsim::datapath` (the device model) — and both copies carried the
//! intermediate MACs in `f64`, which merely *upper-bounded* the precision of
//! the RTL's wide accumulators. This module is the replacement: the
//! matrix-vector MAC of `PE_Z0`, the normalization divider, the Q9.7
//! saturation (projection-missing) judgement, the per-plane proportional
//! scalar MAC of the `PE_Zi` array and the Nearest Voxel Finder, all in
//! plain integer arithmetic on the raw fixed-point words. There is no `f64`
//! anywhere between quantization points; golden-model ↔ device agreement is
//! a property of construction, not of two implementations happening to
//! round alike.
//!
//! ## Bit widths
//!
//! A Q11.21 parameter word times a Q9.7 coordinate word is a product at
//! scale 2⁻²⁸ ([`ACC_FRAC`]) with at most 46 significant bits; three-term
//! rows therefore fit an `i64` wide accumulator with > 15 bits of headroom —
//! exactly the full-width partial products the RTL keeps. Normalization
//! divides two wide accumulators and rounds the exact rational to Q9.7, so
//! the kernel is at least as precise as the old `f64` datapath (whose
//! division rounded to 53 bits *before* the Q9.7 rounding).
//!
//! ## Rounding convention
//!
//! All roundings are **to nearest, ties away from zero** — the behaviour of
//! `f64::round()`, which both pre-kernel datapaths used — so voxel addresses
//! are unchanged from the previous implementation wherever the old `f64`
//! arithmetic was exact (the per-plane transfer always was).
//!
//! ## Example
//!
//! ```
//! use eventor_fixed::{kernel, PackedCoord, Q11p21};
//!
//! // Identity homography in raw Q11.21 words.
//! let one = Q11p21::one().raw();
//! let h = [one, 0, 0, 0, one, 0, 0, 0, one];
//! let coord = PackedCoord::from_f64(120.5, 89.25);
//! assert_eq!(kernel::project_z0(&h, coord), Some(coord));
//!
//! // Identity transfer: scale 1, zero offsets.
//! let phi = kernel::PhiWords::from_f64(1.0, 0.0, 0.0);
//! let voxel = kernel::transfer_nearest(&phi, coord, 240, 180);
//! assert_eq!(voxel.address(), Some((121, 89)));
//! ```

pub mod batch;

use crate::formats::{PackedCoord, PlaneCoord, Q11p21, Q9p7};

/// Fractional bits of the wide MAC accumulator: a Q11.21 parameter times a
/// Q9.7 coordinate yields scale `2⁻²⁸` (Q?.28 in an `i64`).
pub const ACC_FRAC: u32 = Q11p21::frac_bits() + Q9p7::frac_bits();

/// Half an accumulator LSB, the rounding increment of the Nearest Voxel
/// Finder.
const ACC_HALF: i64 = 1 << (ACC_FRAC - 1);

/// One `Buf_P` entry in raw Q11.21 bus words: the proportional
/// back-projection coefficients `φ` of a single depth plane.
///
/// This is the storage format of the parameter BRAM and the DMA payload; the
/// host quantizes `f64` coefficients once per frame
/// ([`PhiWords::from_f64`]) and the per-event hot loop consumes the raw
/// words directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PhiWords {
    /// Homothety ratio `r_i`, raw Q11.21.
    pub scale: i32,
    /// Epipole term for the x axis, `(1 - r_i)·e_x`, raw Q11.21.
    pub offset_x: i32,
    /// Epipole term for the y axis, `(1 - r_i)·e_y`, raw Q11.21.
    pub offset_y: i32,
}

impl PhiWords {
    /// Quantizes floating-point coefficients into raw Q11.21 words (the
    /// conversion the host driver performs before the DMA transfer).
    pub fn from_f64(scale: f64, offset_x: f64, offset_y: f64) -> Self {
        Self {
            scale: Q11p21::from_f64(scale).raw(),
            offset_x: Q11p21::from_f64(offset_x).raw(),
            offset_y: Q11p21::from_f64(offset_y).raw(),
        }
    }

    /// Builds an entry from three raw Q11.21 bus words
    /// `(scale, offset_x, offset_y)`.
    pub fn from_raw_words(words: [i32; 3]) -> Self {
        Self {
            scale: words[0],
            offset_x: words[1],
            offset_y: words[2],
        }
    }

    /// The raw Q11.21 bus words `(scale, offset_x, offset_y)`.
    pub fn raw_words(&self) -> [i32; 3] {
        [self.scale, self.offset_x, self.offset_y]
    }

    /// Decodes the entry to `f64` triples `(scale, offset_x, offset_y)` —
    /// an inspection/debug exit point, never used by the hot loop.
    pub fn to_f64(&self) -> (f64, f64, f64) {
        (
            Q11p21::from_raw(self.scale).to_f64(),
            Q11p21::from_raw(self.offset_x).to_f64(),
            Q11p21::from_raw(self.offset_y).to_f64(),
        )
    }
}

/// Quantizes a row-major `f64` homography into the nine raw Q11.21 words of
/// the `Buf_H` register bank.
pub fn quantize_homography(m: &[[f64; 3]; 3]) -> [i32; 9] {
    let mut words = [0i32; 9];
    for (k, w) in words.iter_mut().enumerate() {
        *w = Q11p21::from_f64(m[k / 3][k % 3]).raw();
    }
    words
}

/// The matrix-vector MAC of `PE_Z0`: `H · (x, y, 1)ᵀ` on raw words, with
/// explicit `i64` wide accumulators at scale `2⁻²⁸`.
///
/// `h` is the nine raw Q11.21 words of `H_{Z0}` in row-major order; the
/// constant column is re-scaled by `<< 7` so all three terms share
/// [`ACC_FRAC`]. Returns the three row accumulators `(num_x, num_y, w)`.
/// Magnitudes are bounded by `3·2⁴⁶ < 2⁴⁸`, so the accumulation is exact.
#[inline]
pub fn mat_vec_mac(h: &[i32; 9], coord: PackedCoord) -> [i64; 3] {
    let x = coord.x.raw() as i64;
    let y = coord.y.raw() as i64;
    let row = |r: usize| -> i64 {
        h[3 * r] as i64 * x + h[3 * r + 1] as i64 * y + ((h[3 * r + 2] as i64) << Q9p7::frac_bits())
    };
    [row(0), row(1), row(2)]
}

/// Division of two same-scale wide accumulators, rounded to nearest with
/// ties away from zero (the exact-rational analogue of `f64::round()`).
#[inline]
fn div_round_half_away(num: i64, den: i64) -> i64 {
    debug_assert!(den != 0);
    let quot = num / den;
    let rem = num % den;
    if 2 * rem.abs() >= den.abs() {
        quot + if (num < 0) == (den < 0) { 1 } else { -1 }
    } else {
        quot
    }
}

/// The normalization divider of `PE_Z0` with the Q9.7 saturation judgement:
/// `num / den` rounded to a raw Q9.7 word.
///
/// Returns `None` — the projection-missing judgement — when:
///
/// * `den == 0`: the point maps to infinity. At accumulator granularity the
///   smallest non-zero `|w|` is `2⁻²⁸ ≈ 3.7e-9`, so this is exactly the old
///   golden model's `|w| < 1e-9` test;
/// * the exact quotient exceeds [`Q9p7::MAX_MAGNITUDE`]
///   (`|num / den| > i16::MAX / 128`, tested on the exact rational *before*
///   rounding — the same pre-rounding bound the pre-kernel `f64` datapath
///   applied, ARCHITECTURE.md contract 3.1). Dropping rather than
///   saturating is normative: a saturated canonical coordinate would
///   corrupt every subsequent plane transfer.
///
/// Within the judgement the quotient is at most `i16::MAX / 128` in
/// magnitude, so the rounded result always fits `i16` and the unreachable
/// raw word `i16::MIN` (`-256.0`) is never produced.
///
/// The accumulator domain is `|num| < 2⁵⁶` and `|den| < 2⁶²`
/// (debug-asserted): enough headroom for `num << 7` and the rounding
/// arithmetic to stay exact in `i64`. [`mat_vec_mac`] accumulators are
/// bounded by `3·2⁴⁶`, far inside it.
#[inline]
pub fn normalize_q9p7(num: i64, den: i64) -> Option<i16> {
    debug_assert!(
        num.unsigned_abs() < 1 << 56 && den.unsigned_abs() < 1 << 62,
        "accumulator outside the kernel's exact domain"
    );
    if den == 0 {
        return None;
    }
    // Pre-rounding saturation judgement, exact in integers:
    // |num/den| > i16::MAX / 2^7  ⟺  |num| << 7 > i16::MAX · |den|.
    // (u128: the right-hand product exceeds u64 for large denominators.)
    if (num.unsigned_abs() as u128) << Q9p7::frac_bits()
        > i16::MAX as u128 * den.unsigned_abs() as u128
    {
        return None;
    }
    Some(div_round_half_away(num << Q9p7::frac_bits(), den) as i16)
}

/// The complete `PE_Z0` operation `𝒫{Z0}` on raw words: wide matrix-vector
/// MAC, normalization and re-quantization to the Q9.7 transport format.
///
/// Returns `None` when the projection-missing judgement drops the event
/// (see [`normalize_q9p7`]).
#[inline]
pub fn project_z0(h: &[i32; 9], coord: PackedCoord) -> Option<PackedCoord> {
    let [num_x, num_y, w] = mat_vec_mac(h, coord);
    let px = normalize_q9p7(num_x, w)?;
    let py = normalize_q9p7(num_y, w)?;
    Some(PackedCoord {
        x: Q9p7::from_raw(px),
        y: Q9p7::from_raw(py),
    })
}

/// The scalar MAC of one `PE_Zi` axis: `scale · c + offset` on raw words,
/// returning the `i64` wide accumulator at scale `2⁻²⁸`.
///
/// `scale` and `offset` are raw Q11.21, `c` a raw Q9.7 canonical
/// coordinate. The product has at most 46 significant bits and the re-scaled
/// offset at most 38, so the sum is exact in `i64`.
#[inline]
pub fn plane_mac(scale: i32, offset: i32, c: i16) -> i64 {
    scale as i64 * c as i64 + ((offset as i64) << Q9p7::frac_bits())
}

/// Rounds a wide accumulator to the nearest integer pixel (ties away from
/// zero) — the rounding of the Nearest Voxel Finder.
#[inline]
pub fn round_acc(acc: i64) -> i64 {
    if acc >= 0 {
        (acc + ACC_HALF) >> ACC_FRAC
    } else {
        -((-acc + ACC_HALF) >> ACC_FRAC)
    }
}

/// The Nearest Voxel Finder: rounds a pair of wide accumulators to the
/// nearest integer pixel and performs the in-sensor judgement, producing the
/// 8-bit plane coordinate of Table 1 row 3 (or [`PlaneCoord::Missing`]).
#[inline]
pub fn nearest_voxel(acc_x: i64, acc_y: i64, width: u32, height: u32) -> PlaneCoord {
    let xi = round_acc(acc_x);
    let yi = round_acc(acc_y);
    if xi < 0 || yi < 0 || xi >= width as i64 || yi >= height as i64 {
        PlaneCoord::Missing
    } else {
        PlaneCoord::Inside {
            x: xi as u8,
            y: yi as u8,
        }
    }
}

/// The complete `PE_Zi` operation for one depth plane: scalar MACs on both
/// axes followed by the Nearest Voxel Finder.
#[inline]
pub fn transfer_nearest(
    phi: &PhiWords,
    canonical: PackedCoord,
    width: u32,
    height: u32,
) -> PlaneCoord {
    nearest_voxel(
        plane_mac(phi.scale, phi.offset_x, canonical.x.raw()),
        plane_mac(phi.scale, phi.offset_y, canonical.y.raw()),
        width,
        height,
    )
}

/// Decodes a wide accumulator to `f64` — **exact** (accumulators carry at
/// most 48 significant bits, within `f64`'s 53), so this is a quantization
/// *exit point*, not an arithmetic step.
#[inline]
pub fn acc_to_f64(acc: i64) -> f64 {
    acc as f64 / (1i64 << ACC_FRAC) as f64
}

/// The `PE_Zi` transfer at sub-pixel precision: the integer scalar MACs
/// decoded exactly to `f64`.
///
/// Used only by the bilinear-voting ablation, whose fractional vote weights
/// leave the fixed-point domain by definition; the value is bit-identical
/// to the old `f64` datapath because that arithmetic was exact.
#[inline]
pub fn transfer_subpixel(phi: &PhiWords, canonical: PackedCoord) -> (f64, f64) {
    (
        acc_to_f64(plane_mac(phi.scale, phi.offset_x, canonical.x.raw())),
        acc_to_f64(plane_mac(phi.scale, phi.offset_y, canonical.y.raw())),
    )
}

/// The pre-kernel golden model, kept under `#[cfg(test)]` as the **single**
/// frozen `f64` reference both test modules compare against: the arithmetic
/// of the deleted `QuantizedHomography::project_hoisted`, verbatim. (The
/// `quantized_kernel` bench carries its own standalone transcription — it
/// is the measurement baseline and cannot see test-only items.)
#[cfg(test)]
mod f64_reference {
    use super::*;

    /// The old `f64` canonical projection. `apply_judgement` toggles the
    /// saturation drop: the unit tests compare full old-vs-new behaviour,
    /// the proptests want the unrounded quotients to reason about the
    /// boundary themselves.
    pub fn project(h: &[i32; 9], coord: PackedCoord, apply_judgement: bool) -> Option<(f64, f64)> {
        let e = |k: usize| Q11p21::from_raw(h[k]).to_f64();
        let x = coord.x_f64();
        let y = coord.y_f64();
        let w = e(6) * x + e(7) * y + e(8);
        if w.abs() < 1e-9 {
            return None;
        }
        let px = (e(0) * x + e(1) * y + e(2)) / w;
        let py = (e(3) * x + e(4) * y + e(5)) / w;
        if !px.is_finite() || !py.is_finite() {
            return None;
        }
        if apply_judgement && (px.abs() > Q9p7::MAX_MAGNITUDE || py.abs() > Q9p7::MAX_MAGNITUDE) {
            return None;
        }
        Some((px, py))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_words() -> [i32; 9] {
        let one = Q11p21::one().raw();
        [one, 0, 0, 0, one, 0, 0, 0, one]
    }

    #[test]
    fn identity_projection_is_lossless() {
        let h = identity_words();
        for &(x, y) in &[(0.0, 0.0), (120.5, 89.25), (-1.5, 255.9921875)] {
            let c = PackedCoord::from_f64(x, y);
            assert_eq!(project_z0(&h, c), Some(c), "({x}, {y})");
        }
    }

    #[test]
    fn zero_denominator_is_dropped() {
        // Third row annihilates every input: w accumulator is exactly 0.
        let one = Q11p21::one().raw();
        let h = [one, 0, 0, 0, one, 0, 0, 0, 0];
        assert_eq!(project_z0(&h, PackedCoord::from_f64(10.0, 10.0)), None);
    }

    #[test]
    fn near_zero_denominator_is_a_huge_quotient_not_a_crash() {
        // The smallest representable non-zero w (one accumulator LSB) makes
        // the quotient astronomically large; the saturation judgement drops
        // it instead of wrapping.
        let one = Q11p21::one().raw();
        // Row 2 = [0, 0, tiny]: w = tiny << 7 = 128 accumulator LSBs.
        let h = [one, 0, 0, 0, one, 0, 0, 0, 1];
        assert_eq!(project_z0(&h, PackedCoord::from_f64(100.0, 50.0)), None);
    }

    #[test]
    fn out_of_transport_range_is_dropped_not_saturated() {
        // Scaling by 8 pushes a 100-pixel coordinate beyond Q9.7.
        let s8 = Q11p21::from_f64(8.0).raw();
        let one = Q11p21::one().raw();
        let h = [s8, 0, 0, 0, s8, 0, 0, 0, one];
        assert_eq!(project_z0(&h, PackedCoord::from_f64(100.0, 10.0)), None);
        // The largest input whose scaled projection still fits survives:
        // 8 × 31.9921875 (raw 4095) = 255.9375 ≤ Q9p7::MAX_MAGNITUDE.
        let c = PackedCoord {
            x: Q9p7::from_raw(4095),
            y: Q9p7::from_f64(10.0),
        };
        let out = project_z0(&h, c).unwrap();
        assert_eq!(out.x_f64(), 255.9375);
        // One raw LSB further projects to exactly 256.0, which does not fit
        // the transport format and is dropped, not saturated.
        let c = PackedCoord {
            x: Q9p7::from_raw(4096),
            y: c.y,
        };
        assert_eq!(project_z0(&h, c), None);
    }

    #[test]
    fn negative_denominator_rounds_like_f64() {
        let neg = Q11p21::from_f64(-1.0).raw();
        let one = Q11p21::one().raw();
        let h = [one, 0, 0, 0, one, 0, 0, 0, neg];
        let c = PackedCoord::from_f64(33.375, 21.125);
        let out = project_z0(&h, c).unwrap();
        let (rx, ry) = f64_reference::project(&h, c, true).unwrap();
        assert_eq!(out.x_f64(), Q9p7::from_f64(rx).to_f64());
        assert_eq!(out.y_f64(), Q9p7::from_f64(ry).to_f64());
    }

    #[test]
    fn transfer_matches_old_f64_arithmetic_exactly() {
        // The old per-plane transfer was exact in f64; the integer MAC must
        // reproduce it bit for bit, including slightly negative results.
        let phi = PhiWords::from_f64(0.8371, -3.25, 17.0625);
        for &(x, y) in &[(0.0, 0.0), (120.5, 89.25), (-1.5, 3.875), (239.0, 0.5)] {
            let c = PackedCoord::from_f64(x, y);
            let (ix, iy) = transfer_subpixel(&phi, c);
            let (s, ox, oy) = phi.to_f64();
            assert_eq!(ix, s * c.x_f64() + ox);
            assert_eq!(iy, s * c.y_f64() + oy);
            assert_eq!(
                transfer_nearest(&phi, c, 240, 180),
                PlaneCoord::from_projection(ix, iy, 240, 180)
            );
        }
    }

    #[test]
    fn nearest_voxel_ties_round_away_from_zero() {
        // acc = -0.5 pixels exactly: rounds to -1, i.e. Missing — matching
        // f64::round(), not the add-half-and-shift idiom that would round
        // toward +∞ and call it pixel 0.
        assert_eq!(nearest_voxel(-ACC_HALF, 0, 240, 180), PlaneCoord::Missing);
        // acc = +0.5 rounds to 1.
        assert_eq!(
            nearest_voxel(ACC_HALF, ACC_HALF, 240, 180),
            PlaneCoord::Inside { x: 1, y: 1 }
        );
        // acc just below +0.5 rounds to 0.
        assert_eq!(
            nearest_voxel(ACC_HALF - 1, 0, 240, 180),
            PlaneCoord::Inside { x: 0, y: 0 }
        );
        // Bottom-right sensor bound is exclusive.
        let edge = (239i64) << ACC_FRAC;
        assert_eq!(
            nearest_voxel(edge, 0, 240, 180),
            PlaneCoord::Inside { x: 239, y: 0 }
        );
        assert_eq!(
            nearest_voxel(edge + ACC_HALF, 0, 240, 180),
            PlaneCoord::Missing
        );
    }

    #[test]
    fn phi_words_round_trip() {
        let phi = PhiWords::from_f64(0.75, 12.5, -3.25);
        assert_eq!(PhiWords::from_raw_words(phi.raw_words()), phi);
        assert_eq!(phi.to_f64(), (0.75, 12.5, -3.25));
    }

    #[test]
    fn quantize_homography_matches_per_entry_quantization() {
        let m = [[1.25, -0.5, 3.0], [0.0, 0.875, -2.5], [0.001, 0.002, 1.0]];
        let words = quantize_homography(&m);
        for (k, &w) in words.iter().enumerate() {
            assert_eq!(w, Q11p21::from_f64(m[k / 3][k % 3]).raw());
        }
    }

    #[test]
    fn acc_headroom_covers_the_extreme_words() {
        // Worst case magnitudes: all words at the raw extreme, coordinates
        // saturated. The accumulation must not overflow i64.
        let h = [i32::MIN; 9];
        let c = PackedCoord {
            x: Q9p7::from_raw(i16::MIN),
            y: Q9p7::from_raw(i16::MIN),
        };
        let [nx, ny, w] = mat_vec_mac(&h, c);
        for acc in [nx, ny, w] {
            assert!(acc.abs() < 1i64 << 48);
        }
        let acc = plane_mac(i32::MIN, i32::MIN, i16::MIN);
        assert!(acc.abs() < 1i64 << 48);
        // And the normalization shift stays in range too.
        let _ = normalize_q9p7(nx, w.max(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::f64_reference;
    use super::*;
    use proptest::prelude::*;

    /// Any raw Q9.7 word pair as a transport coordinate.
    fn coord_from_raw(x: i32, y: i32) -> PackedCoord {
        PackedCoord {
            x: Q9p7::from_raw(x as i16),
            y: Q9p7::from_raw(y as i16),
        }
    }

    /// Full raw range of a Q9.7 word (the shim has no `any::<i16>()`).
    const RAW16: std::ops::Range<i32> = i16::MIN as i32..i16::MAX as i32 + 1;

    proptest! {
        /// The integer kernel agrees with the `f64` reference within one
        /// Q9.7 ULP: the reference commits up to half an LSB of rounding
        /// plus its 53-bit division error, the kernel exactly half an LSB.
        #[test]
        fn projection_matches_f64_reference_within_one_ulp(
            h_vec in collection::vec(-(1i32 << 24)..(1i32 << 24), 9..10),
            cx in RAW16,
            cy in RAW16,
        ) {
            let h: [i32; 9] = h_vec.try_into().expect("nine entries");
            let coord = coord_from_raw(cx, cy);
            let kernel = project_z0(&h, coord);
            match f64_reference::project(&h, coord, false) {
                // The bounded entry range keeps the reference's w exact, so
                // its |w| < 1e-9 test fires iff the kernel's accumulator is
                // exactly zero (the smallest non-zero |w| is 2⁻²⁸).
                None => prop_assert!(kernel.is_none()),
                Some((rx, ry)) => match kernel {
                    Some(k) => {
                        // Both in range: raw results differ by at most 1 LSB
                        // (half an LSB of exact rounding each side, plus the
                        // reference's 53-bit division error).
                        let scale = (1u32 << Q9p7::frac_bits()) as f64;
                        prop_assert!((k.x.raw() as f64 - rx * scale).abs() <= 1.0 + 1e-6);
                        prop_assert!((k.y.raw() as f64 - ry * scale).abs() <= 1.0 + 1e-6);
                    }
                    None => {
                        // Dropped by the saturation judgement: the true
                        // quotient must hug the Q9.7 bound on some axis.
                        let bound = Q9p7::MAX_MAGNITUDE - Q9p7::RESOLUTION;
                        prop_assert!(
                            rx.abs() >= bound || ry.abs() >= bound,
                            "kernel dropped a comfortably in-range point ({rx}, {ry})"
                        );
                    }
                },
            }
        }

        /// The per-plane transfer is *exactly* the old `f64` arithmetic
        /// (which was exact), for any raw words including negative
        /// coordinates and saturated parameters.
        #[test]
        fn transfer_is_bit_identical_to_f64(
            scale in i32::MIN..i32::MAX,
            offset_x in i32::MIN..i32::MAX,
            offset_y in i32::MIN..i32::MAX,
            cx in RAW16,
            cy in RAW16,
        ) {
            let coord = coord_from_raw(cx, cy);
            let phi = PhiWords { scale, offset_x, offset_y };
            let (s, ox, oy) = phi.to_f64();
            let (ix, iy) = transfer_subpixel(&phi, coord);
            prop_assert_eq!(ix, s * coord.x_f64() + ox);
            prop_assert_eq!(iy, s * coord.y_f64() + oy);
            prop_assert_eq!(
                transfer_nearest(&phi, coord, 240, 180),
                PlaneCoord::from_projection(ix, iy, 240, 180)
            );
        }

        /// Normalization is an exactly-rounded rational: reconstructing the
        /// quotient from the result never errs by more than half an LSB.
        #[test]
        fn normalization_rounding_is_exact(
            num in -(1i64 << 47)..(1i64 << 47),
            den_mag in 1i64..(1i64 << 47),
            den_neg in 0u8..2,
        ) {
            let den = if den_neg == 1 { -den_mag } else { den_mag };
            if let Some(q) = normalize_q9p7(num, den) {
                let exact = num as f64 / den as f64;
                let scale = (1u32 << Q9p7::frac_bits()) as f64;
                prop_assert!((q as f64 - exact * scale).abs() <= 0.5 + 1e-6);
            }
        }

        /// The saturation judgement is symmetric and never produces a raw
        /// value outside ±i16::MAX (so -256.0, the unreachable Q9.7 word,
        /// never appears on the transport bus).
        #[test]
        fn saturation_judgement_brackets_the_bound(
            num in -(1i64 << 55)..(1i64 << 55),
            den_mag in 1i64..(1i64 << 40),
            den_neg in 0u8..2,
        ) {
            let den = if den_neg == 1 { -den_mag } else { den_mag };
            match normalize_q9p7(num, den) {
                // i16::MIN (-256.0) is unreachable by construction: the
                // judgement brackets results at ±i16::MAX.
                Some(q) => prop_assert!(q != i16::MIN),
                None => {
                    let exact = (num as f64 / den as f64).abs();
                    prop_assert!(
                        exact >= Q9p7::MAX_MAGNITUDE - Q9p7::RESOLUTION,
                        "dropped an in-range quotient {exact}"
                    );
                }
            }
        }

        /// Round-to-nearest on the accumulator matches `f64::round()` of the
        /// exactly decoded value (ties away from zero).
        #[test]
        fn round_acc_matches_f64_round(acc in -(1i64 << 47)..(1i64 << 47)) {
            prop_assert_eq!(round_acc(acc) as f64, acc_to_f64(acc).round());
        }
    }
}
