//! # eventor-serve
//!
//! The **multi-session serving engine**: one [`ServeEngine`] multiplexes any
//! number of independent streaming
//! [`EventorSession`](eventor_core::EventorSession)s — heavy traffic from
//! many concurrent producers — over a **bounded worker pool**, the host-side
//! analogue of the paper's time-multiplexed processing elements.
//!
//! The serving tier sits on top of `eventor-core`'s session API, so every
//! execution backend (software, sharded, co-simulated device, custom) works
//! per session, in any mix. What the engine adds:
//!
//! * **Fair round-robin scheduling** — each [`pump`](ServeEngine::pump)
//!   round grants every runnable session one bounded ingestion quantum
//!   ([`ServeConfig::quantum_events`]); sessions are assigned to workers
//!   round-robin (`id mod workers`), so a heavy stream can delay but never
//!   starve a light one.
//! * **Per-session bounded ingest queues** with the session layer's exact
//!   backpressure semantics ([`EmvsError::Backpressure`](eventor_emvs::EmvsError),
//!   `write(2)`-style short writes) — total in-flight memory is
//!   `O(sessions)`, never `O(traffic)`.
//! * **Lifecycle fan-out** — per-session
//!   [`SessionEvent`](eventor_emvs::SessionEvent) delivery via
//!   [`poll_session`](ServeEngine::poll_session), engine-level [`ServeEvent`]s
//!   (admitted / stalled / failed / finished) via
//!   [`poll_serve`](ServeEngine::poll_serve).
//! * **Serving metrics** — per-session and aggregate events/s, depth maps/s,
//!   queue depths and worker-pool utilisation ([`SessionMetrics`],
//!   [`ServeMetrics`]).
//! * **Graceful drain and shutdown** — [`drain`](ServeEngine::drain) pumps
//!   until quiescent and attributes any wedge to the session that caused it;
//!   [`shutdown`](ServeEngine::shutdown) returns every session's terminal
//!   result.
//!
//! ## Bit-identity under interleaving
//!
//! Sessions share compute but no state, and each session's input is
//! delivered in enqueue order, so the engine's output per session is
//! **bit-identical** to running that stream standalone — for every backend,
//! every worker count, and every interleaving of enqueues and pumps. This is
//! the `eventor-serve/1` contract (`docs/ARCHITECTURE.md` §7), proven by
//! `tests/serve_equivalence.rs` (including proptest-random interleaving
//! schedules).
//!
//! Operational guidance — worker-count sizing, queue/quantum tuning, backend
//! selection per session, the metrics field reference and drain semantics —
//! lives in `docs/SERVING.md`.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
pub mod loadgen;
mod metrics;
mod queue;

pub use engine::{
    PumpStats, ServeConfig, ServeEngine, ServeError, ServeEvent, SessionId, DEFAULT_QUANTUM_EVENTS,
    DEFAULT_QUEUE_CAPACITY,
};
pub use loadgen::{drive, LoadShape, LoadStream};
pub use metrics::{MetricsSnapshot, ServeMetrics, SessionMetrics, SessionStatus};
