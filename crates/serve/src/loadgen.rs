//! Hostile load-shape drivers: deterministic producer/consumer pacing
//! patterns for stress-feeding a [`ServeEngine`].
//!
//! The serving tier's contract is that **scheduling must never change
//! output bits** — a session's result is a pure function of its own input
//! stream, whatever the other sessions, the chunk sizes, or the pump cadence
//! do (`docs/ARCHITECTURE.md` §7). The corpus runner exercises one fixed
//! interleave; this module turns the pacing itself into an input axis so the
//! fuzzer can drive the engine through adversarial shapes — floods, idle
//! gaps, session churn, a consumer that almost never pumps — and the
//! metamorphic harness can assert the outputs stay identical across all of
//! them (invariant F.4 in `docs/SCENARIOS.md`).
//!
//! Every shape is deterministic: no clocks, no randomness — the same streams
//! and shape always replay the same engine schedule.

use crate::{ServeConfig, ServeEngine, ServeError, SessionId};
use eventor_core::{EventorSession, SessionOutput};
use eventor_emvs::EmvsError;
use eventor_events::Event;
use eventor_geom::Trajectory;

/// How the producer and consumer sides are paced while feeding the engine.
///
/// Shapes only change *when* events are offered and *how often* the engine
/// pumps — never what is fed — so any output difference between two shapes
/// is an isolation bug in the serving tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadShape {
    /// The well-behaved baseline: fixed-size chunks, one pump per enqueue.
    Steady {
        /// Events offered per enqueue step.
        chunk: usize,
    },
    /// A producer that floods then goes quiet: large bursts, each followed
    /// by a stretch of idle pump rounds with nothing new arriving.
    Bursty {
        /// Events offered per burst.
        burst: usize,
        /// Pump rounds run after each burst while the producer is idle.
        idle_pumps: usize,
    },
    /// Session churn: streams are admitted, served to completion and
    /// finished in waves of at most `wave` concurrent sessions on one
    /// engine, so session slots are continuously created and retired.
    Churn {
        /// Maximum number of concurrently live sessions per wave.
        wave: usize,
    },
    /// A consumer that rarely keeps up: chunked enqueues but only one pump
    /// round every `pump_every` enqueue steps, so queues run near capacity
    /// and backpressure does the pacing.
    SlowConsumer {
        /// Events offered per enqueue step.
        chunk: usize,
        /// Enqueue steps between consecutive pump rounds.
        pump_every: usize,
    },
}

impl LoadShape {
    /// Every shape at representative parameters, in documentation order —
    /// the sweep the metamorphic harness runs.
    pub const ALL: [LoadShape; 4] = [
        LoadShape::Steady { chunk: 1024 },
        LoadShape::Bursty {
            burst: 6144,
            idle_pumps: 5,
        },
        LoadShape::Churn { wave: 2 },
        LoadShape::SlowConsumer {
            chunk: 768,
            pump_every: 7,
        },
    ];

    /// Short name for reports and labels.
    pub fn name(self) -> &'static str {
        match self {
            Self::Steady { .. } => "steady",
            Self::Bursty { .. } => "bursty",
            Self::Churn { .. } => "churn",
            Self::SlowConsumer { .. } => "slow-consumer",
        }
    }
}

/// One stream to serve: a ready-built session plus its full input.
#[derive(Debug)]
pub struct LoadStream {
    /// The session to admit (any backend).
    pub session: EventorSession,
    /// The pose stream, enqueued up front.
    pub trajectory: Trajectory,
    /// The time-ordered event stream, fed according to the [`LoadShape`].
    pub events: Vec<Event>,
}

/// Serves every stream on one engine under the given load shape and returns
/// each stream's terminal output, in input order.
///
/// Backpressure is handled the way a correct producer must: a short write
/// advances the cursor by the accepted count, and a zero-accept
/// [`EmvsError::Backpressure`] triggers a pump round and a retry.
///
/// # Errors
///
/// Propagates engine errors other than retryable backpressure.
pub fn drive(
    config: ServeConfig,
    streams: Vec<LoadStream>,
    shape: LoadShape,
) -> Result<Vec<SessionOutput>, ServeError> {
    let (wave, chunk, pump_every, idle_pumps) = match shape {
        LoadShape::Steady { chunk } => (usize::MAX, chunk, 1, 1),
        LoadShape::Bursty { burst, idle_pumps } => (usize::MAX, burst, 1, idle_pumps.max(1)),
        LoadShape::Churn { wave } => (wave.max(1), 1024, 1, 1),
        LoadShape::SlowConsumer { chunk, pump_every } => (usize::MAX, chunk, pump_every.max(1), 1),
    };
    let chunk = chunk.max(1);

    let mut engine = ServeEngine::new(config);
    let mut outputs = Vec::new();
    let mut pending = streams.into_iter();
    loop {
        let batch: Vec<LoadStream> = pending.by_ref().take(wave).collect();
        if batch.is_empty() {
            break;
        }
        let mut jobs: Vec<(SessionId, Vec<Event>, usize)> = Vec::with_capacity(batch.len());
        for stream in batch {
            let id = engine.admit(stream.session);
            engine.enqueue_trajectory(id, &stream.trajectory)?;
            jobs.push((id, stream.events, 0));
        }
        feed(&mut engine, &mut jobs, chunk, pump_every, idle_pumps)?;
        for (id, _, _) in &jobs {
            engine.close(*id)?;
        }
        engine.drain()?;
        for (id, _, _) in &jobs {
            let output = engine
                .take_output(*id)
                .ok_or(ServeError::SessionClosed { session: *id })?;
            outputs.push(output);
        }
    }
    Ok(outputs)
}

/// Feeds every job to completion with the given pacing: round-robin over the
/// jobs, `chunk` events per offer, a pump burst of `idle_pumps` rounds every
/// `pump_every` enqueue steps.
fn feed(
    engine: &mut ServeEngine,
    jobs: &mut [(SessionId, Vec<Event>, usize)],
    chunk: usize,
    pump_every: usize,
    idle_pumps: usize,
) -> Result<(), ServeError> {
    let mut step = 0usize;
    loop {
        let mut all_done = true;
        for (id, events, cursor) in jobs.iter_mut() {
            if *cursor >= events.len() {
                continue;
            }
            all_done = false;
            let end = (*cursor + chunk).min(events.len());
            match engine.enqueue_events(*id, &events[*cursor..end]) {
                Ok(accepted) => *cursor += accepted,
                Err(ServeError::Session {
                    source: EmvsError::Backpressure { .. },
                    ..
                }) => {
                    engine.pump();
                }
                Err(e) => return Err(e),
            }
            step += 1;
            if step.is_multiple_of(pump_every) {
                for _ in 0..idle_pumps {
                    engine.pump();
                }
            }
        }
        if all_done {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_set_yields_no_outputs() {
        for shape in LoadShape::ALL {
            let out = drive(ServeConfig::new(), Vec::new(), shape).expect("no streams, no error");
            assert!(out.is_empty(), "{}", shape.name());
        }
    }

    #[test]
    fn shape_names_are_distinct() {
        let names: std::collections::HashSet<_> = LoadShape::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), LoadShape::ALL.len());
    }
}
