//! Serving metrics: per-session and engine-aggregate counters exposed by
//! [`ServeEngine`](crate::ServeEngine).
//!
//! Every field is documented in `docs/SERVING.md` (the operations guide's
//! metrics reference). Rates are derived from two clocks the engine keeps:
//!
//! * **busy time** — wall time a worker actually spent inside one session's
//!   pump quantum (pose/event ingestion, voting, polling); summed per
//!   session,
//! * **pump wall time** — wall time of whole [`pump`](crate::ServeEngine::pump)
//!   rounds, the engine-level denominator for aggregate throughput.

use crate::SessionId;

/// Lifecycle state of one admitted session, as reported by
/// [`ServeEngine::status`](crate::ServeEngine::status) and
/// [`SessionMetrics::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionStatus {
    /// Accepting input; pump rounds make progress whenever input is queued.
    Active,
    /// [`close`](crate::ServeEngine::close)d: no further events are
    /// accepted, the remaining queue is being drained toward the final
    /// flush.
    Draining,
    /// Finished: the terminal [`SessionOutput`](eventor_core::SessionOutput)
    /// is stashed (or was already taken) and the session consumed.
    Finished,
    /// The last pump round recorded an error for this session (see
    /// [`ServeEngine::last_error`](crate::ServeEngine::last_error)). The
    /// session itself is intact and recovers as soon as the cause is fixed —
    /// e.g. the missing poses arrive or the caller
    /// [`discard_pending`](crate::ServeEngine::discard_pending)s.
    Failed,
}

/// A point-in-time snapshot of one session's serving counters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SessionMetrics {
    /// The session this snapshot describes.
    pub session: SessionId,
    /// Short identifier of the session's execution backend (`"software"`,
    /// `"sharded"`, `"cosim"`, …).
    pub backend: &'static str,
    /// Lifecycle state at snapshot time.
    pub status: SessionStatus,
    /// Events currently waiting in the ingest queue.
    pub queue_depth: usize,
    /// Pose samples currently waiting in the ingest queue.
    pub queued_poses: usize,
    /// Capacity of the ingest queue's event lane.
    pub queue_capacity: usize,
    /// Events accepted into the ingest queue so far (including ones since
    /// ingested).
    pub events_enqueued: u64,
    /// Events moved from the ingest queue into the session so far.
    pub events_ingested: u64,
    /// Events the session's datapath has fully processed (voted) so far.
    pub events_processed: u64,
    /// Key frames retired so far. One semi-dense depth map is produced per
    /// key frame, so this doubles as the depth-map count.
    pub depth_maps: usize,
    /// Wall time workers spent executing this session's pump quanta, in
    /// seconds.
    pub busy_seconds: f64,
    /// `events_processed / busy_seconds` (0 while no time was spent).
    pub events_per_second: f64,
    /// `depth_maps / busy_seconds` (0 while no time was spent).
    pub depth_maps_per_second: f64,
    /// Whether the last pump round could not move a single queued event into
    /// the session (it is waiting on poses or on its own pending buffer).
    pub stalled: bool,
}

/// A point-in-time snapshot of the whole engine's serving counters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeMetrics {
    /// Sessions ever admitted.
    pub sessions: usize,
    /// Sessions currently [`SessionStatus::Active`].
    pub active: usize,
    /// Sessions currently [`SessionStatus::Draining`].
    pub draining: usize,
    /// Sessions that finished (terminal output produced).
    pub finished: usize,
    /// Sessions currently [`SessionStatus::Failed`].
    pub failed: usize,
    /// Size of the worker pool.
    pub workers: usize,
    /// Total events waiting across every ingest queue.
    pub queue_depth: usize,
    /// Total events accepted into ingest queues.
    pub events_enqueued: u64,
    /// Total events moved from ingest queues into sessions.
    pub events_ingested: u64,
    /// Total events fully processed across all sessions.
    pub events_processed: u64,
    /// Total key frames (= depth maps) retired across all sessions.
    pub depth_maps: usize,
    /// Completed [`pump`](crate::ServeEngine::pump) rounds.
    pub pump_rounds: u64,
    /// Sum of per-session busy time, in seconds.
    pub busy_seconds: f64,
    /// Wall time spent inside `pump` calls, in seconds.
    pub wall_seconds: f64,
    /// Aggregate throughput: `events_processed / wall_seconds` (0 while no
    /// pump ran).
    pub events_per_second: f64,
    /// Aggregate `depth_maps / wall_seconds` (0 while no pump ran).
    pub depth_maps_per_second: f64,
    /// Worker-pool utilisation: `busy_seconds / (wall_seconds × workers)`,
    /// in `[0, 1]`. Low values mean the pool is starved (too few runnable
    /// sessions per round) or dominated by coordination overhead.
    pub utilization: f64,
}

impl ServeMetrics {
    /// Sessions currently holding engine resources: active, draining, or
    /// failed-but-recoverable. This is the population an admission
    /// controller budgets against — finished sessions have released their
    /// queues and cost nothing.
    pub fn live_sessions(&self) -> usize {
        self.active + self.draining + self.failed
    }

    /// Aggregate ingest-queue fullness across live sessions, in `[0, 1]`:
    /// total queued events over total live queue capacity (`queue_capacity`
    /// per session). Returns `0.0` while no session is live — an empty
    /// engine is never "full".
    pub fn queue_fraction(&self, queue_capacity: usize) -> f64 {
        let denominator = (self.live_sessions() * queue_capacity) as f64;
        if denominator <= 0.0 {
            0.0
        } else {
            (self.queue_depth as f64 / denominator).clamp(0.0, 1.0)
        }
    }
}

/// A point-in-time snapshot of the whole serving tier: the aggregate
/// counters plus one [`SessionMetrics`] per admitted session, in admission
/// order.
///
/// This is the **one** metrics surface remote readers consume: local
/// `poll_serve` consumers and the `eventor-wire/1` metrics frame both render
/// it through [`MetricsSnapshot::to_json`], so the two views can never
/// drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Engine-aggregate counters.
    pub aggregate: ServeMetrics,
    /// Per-session counters, in admission order.
    pub sessions: Vec<SessionMetrics>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as the **`eventor-metrics/1`** JSON document.
    ///
    /// The rendering is byte-reproducible: the same snapshot always
    /// serializes to the same bytes on every host — keys in a fixed order,
    /// floats printed with a fixed `{:.6}` precision, no timestamps, no
    /// hostnames, no hash-map iteration order. The exact format is pinned by
    /// `pinned_metrics_json_format` below; changing it is a format bump.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let a = &self.aggregate;
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"format\": \"eventor-metrics/1\",");
        let _ = writeln!(s, "  \"aggregate\": {{");
        let _ = writeln!(s, "    \"sessions\": {},", a.sessions);
        let _ = writeln!(s, "    \"active\": {},", a.active);
        let _ = writeln!(s, "    \"draining\": {},", a.draining);
        let _ = writeln!(s, "    \"finished\": {},", a.finished);
        let _ = writeln!(s, "    \"failed\": {},", a.failed);
        let _ = writeln!(s, "    \"workers\": {},", a.workers);
        let _ = writeln!(s, "    \"queue_depth\": {},", a.queue_depth);
        let _ = writeln!(s, "    \"events_enqueued\": {},", a.events_enqueued);
        let _ = writeln!(s, "    \"events_ingested\": {},", a.events_ingested);
        let _ = writeln!(s, "    \"events_processed\": {},", a.events_processed);
        let _ = writeln!(s, "    \"depth_maps\": {},", a.depth_maps);
        let _ = writeln!(s, "    \"pump_rounds\": {},", a.pump_rounds);
        let _ = writeln!(s, "    \"busy_seconds\": {:.6},", a.busy_seconds);
        let _ = writeln!(s, "    \"wall_seconds\": {:.6},", a.wall_seconds);
        let _ = writeln!(s, "    \"events_per_second\": {:.6},", a.events_per_second);
        let _ = writeln!(
            s,
            "    \"depth_maps_per_second\": {:.6},",
            a.depth_maps_per_second
        );
        let _ = writeln!(s, "    \"utilization\": {:.6}", a.utilization);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"sessions\": [");
        for (i, m) in self.sessions.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"session\": {},", m.session.index());
            let _ = writeln!(s, "      \"backend\": \"{}\",", m.backend);
            let _ = writeln!(s, "      \"status\": \"{}\",", m.status.name());
            let _ = writeln!(s, "      \"queue_depth\": {},", m.queue_depth);
            let _ = writeln!(s, "      \"queued_poses\": {},", m.queued_poses);
            let _ = writeln!(s, "      \"queue_capacity\": {},", m.queue_capacity);
            let _ = writeln!(s, "      \"events_enqueued\": {},", m.events_enqueued);
            let _ = writeln!(s, "      \"events_ingested\": {},", m.events_ingested);
            let _ = writeln!(s, "      \"events_processed\": {},", m.events_processed);
            let _ = writeln!(s, "      \"depth_maps\": {},", m.depth_maps);
            let _ = writeln!(s, "      \"busy_seconds\": {:.6},", m.busy_seconds);
            let _ = writeln!(
                s,
                "      \"events_per_second\": {:.6},",
                m.events_per_second
            );
            let _ = writeln!(
                s,
                "      \"depth_maps_per_second\": {:.6},",
                m.depth_maps_per_second
            );
            let _ = writeln!(s, "      \"stalled\": {}", m.stalled);
            let comma = if i + 1 < self.sessions.len() { "," } else { "" };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        s.push_str("}\n");
        s
    }
}

impl SessionStatus {
    /// Stable lower-case name used by the `eventor-metrics/1` JSON document.
    pub fn name(self) -> &'static str {
        match self {
            Self::Active => "active",
            Self::Draining => "draining",
            Self::Finished => "finished",
            Self::Failed => "failed",
        }
    }
}

/// `numerator / seconds`, defined as 0 when no time has been observed.
pub(crate) fn per_second(numerator: f64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        numerator / seconds
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_handles_zero_time() {
        assert_eq!(per_second(100.0, 0.0), 0.0);
        assert_eq!(per_second(100.0, 2.0), 50.0);
    }

    /// Pins the exact bytes of the `eventor-metrics/1` JSON document. Any
    /// change to this output is a format bump for every remote reader — the
    /// wire metrics frame and `poll_serve` dashboards alike — so the test
    /// compares the full rendering, not just the fields.
    #[test]
    fn pinned_metrics_json_format() {
        let snapshot = MetricsSnapshot {
            aggregate: ServeMetrics {
                sessions: 2,
                active: 1,
                draining: 0,
                finished: 1,
                failed: 0,
                workers: 4,
                queue_depth: 17,
                events_enqueued: 5000,
                events_ingested: 4983,
                events_processed: 4900,
                depth_maps: 3,
                pump_rounds: 42,
                busy_seconds: 0.125,
                wall_seconds: 0.25,
                events_per_second: 19600.0,
                depth_maps_per_second: 12.0,
                utilization: 0.125,
            },
            sessions: vec![
                SessionMetrics {
                    session: SessionId(0),
                    backend: "software",
                    status: SessionStatus::Finished,
                    queue_depth: 0,
                    queued_poses: 0,
                    queue_capacity: 65536,
                    events_enqueued: 2500,
                    events_ingested: 2500,
                    events_processed: 2500,
                    depth_maps: 2,
                    busy_seconds: 0.0625,
                    events_per_second: 40000.0,
                    depth_maps_per_second: 32.0,
                    stalled: false,
                },
                SessionMetrics {
                    session: SessionId(1),
                    backend: "sharded",
                    status: SessionStatus::Active,
                    queue_depth: 17,
                    queued_poses: 2,
                    queue_capacity: 65536,
                    events_enqueued: 2500,
                    events_ingested: 2483,
                    events_processed: 2400,
                    depth_maps: 1,
                    busy_seconds: 0.0625,
                    events_per_second: 38400.0,
                    depth_maps_per_second: 16.0,
                    stalled: true,
                },
            ],
        };
        let expected = "{\n\
            \x20 \"format\": \"eventor-metrics/1\",\n\
            \x20 \"aggregate\": {\n\
            \x20   \"sessions\": 2,\n\
            \x20   \"active\": 1,\n\
            \x20   \"draining\": 0,\n\
            \x20   \"finished\": 1,\n\
            \x20   \"failed\": 0,\n\
            \x20   \"workers\": 4,\n\
            \x20   \"queue_depth\": 17,\n\
            \x20   \"events_enqueued\": 5000,\n\
            \x20   \"events_ingested\": 4983,\n\
            \x20   \"events_processed\": 4900,\n\
            \x20   \"depth_maps\": 3,\n\
            \x20   \"pump_rounds\": 42,\n\
            \x20   \"busy_seconds\": 0.125000,\n\
            \x20   \"wall_seconds\": 0.250000,\n\
            \x20   \"events_per_second\": 19600.000000,\n\
            \x20   \"depth_maps_per_second\": 12.000000,\n\
            \x20   \"utilization\": 0.125000\n\
            \x20 },\n\
            \x20 \"sessions\": [\n\
            \x20   {\n\
            \x20     \"session\": 0,\n\
            \x20     \"backend\": \"software\",\n\
            \x20     \"status\": \"finished\",\n\
            \x20     \"queue_depth\": 0,\n\
            \x20     \"queued_poses\": 0,\n\
            \x20     \"queue_capacity\": 65536,\n\
            \x20     \"events_enqueued\": 2500,\n\
            \x20     \"events_ingested\": 2500,\n\
            \x20     \"events_processed\": 2500,\n\
            \x20     \"depth_maps\": 2,\n\
            \x20     \"busy_seconds\": 0.062500,\n\
            \x20     \"events_per_second\": 40000.000000,\n\
            \x20     \"depth_maps_per_second\": 32.000000,\n\
            \x20     \"stalled\": false\n\
            \x20   },\n\
            \x20   {\n\
            \x20     \"session\": 1,\n\
            \x20     \"backend\": \"sharded\",\n\
            \x20     \"status\": \"active\",\n\
            \x20     \"queue_depth\": 17,\n\
            \x20     \"queued_poses\": 2,\n\
            \x20     \"queue_capacity\": 65536,\n\
            \x20     \"events_enqueued\": 2500,\n\
            \x20     \"events_ingested\": 2483,\n\
            \x20     \"events_processed\": 2400,\n\
            \x20     \"depth_maps\": 1,\n\
            \x20     \"busy_seconds\": 0.062500,\n\
            \x20     \"events_per_second\": 38400.000000,\n\
            \x20     \"depth_maps_per_second\": 16.000000,\n\
            \x20     \"stalled\": true\n\
            \x20   }\n\
            \x20 ]\n\
            }\n";
        assert_eq!(snapshot.to_json(), expected);
    }

    #[test]
    fn snapshot_json_is_reproducible_and_empty_sessions_render() {
        let snapshot = MetricsSnapshot {
            aggregate: ServeMetrics {
                sessions: 0,
                active: 0,
                draining: 0,
                finished: 0,
                failed: 0,
                workers: 1,
                queue_depth: 0,
                events_enqueued: 0,
                events_ingested: 0,
                events_processed: 0,
                depth_maps: 0,
                pump_rounds: 0,
                busy_seconds: 0.0,
                wall_seconds: 0.0,
                events_per_second: 0.0,
                depth_maps_per_second: 0.0,
                utilization: 0.0,
            },
            sessions: Vec::new(),
        };
        let a = snapshot.to_json();
        let b = snapshot.clone().to_json();
        assert_eq!(a, b, "same snapshot, same bytes");
        assert!(a.contains("\"sessions\": [\n  ]"), "empty array renders");
        assert!(a.ends_with("}\n"));
    }
}
