//! Serving metrics: per-session and engine-aggregate counters exposed by
//! [`ServeEngine`](crate::ServeEngine).
//!
//! Every field is documented in `docs/SERVING.md` (the operations guide's
//! metrics reference). Rates are derived from two clocks the engine keeps:
//!
//! * **busy time** — wall time a worker actually spent inside one session's
//!   pump quantum (pose/event ingestion, voting, polling); summed per
//!   session,
//! * **pump wall time** — wall time of whole [`pump`](crate::ServeEngine::pump)
//!   rounds, the engine-level denominator for aggregate throughput.

use crate::SessionId;

/// Lifecycle state of one admitted session, as reported by
/// [`ServeEngine::status`](crate::ServeEngine::status) and
/// [`SessionMetrics::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionStatus {
    /// Accepting input; pump rounds make progress whenever input is queued.
    Active,
    /// [`close`](crate::ServeEngine::close)d: no further events are
    /// accepted, the remaining queue is being drained toward the final
    /// flush.
    Draining,
    /// Finished: the terminal [`SessionOutput`](eventor_core::SessionOutput)
    /// is stashed (or was already taken) and the session consumed.
    Finished,
    /// The last pump round recorded an error for this session (see
    /// [`ServeEngine::last_error`](crate::ServeEngine::last_error)). The
    /// session itself is intact and recovers as soon as the cause is fixed —
    /// e.g. the missing poses arrive or the caller
    /// [`discard_pending`](crate::ServeEngine::discard_pending)s.
    Failed,
}

/// A point-in-time snapshot of one session's serving counters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SessionMetrics {
    /// The session this snapshot describes.
    pub session: SessionId,
    /// Short identifier of the session's execution backend (`"software"`,
    /// `"sharded"`, `"cosim"`, …).
    pub backend: &'static str,
    /// Lifecycle state at snapshot time.
    pub status: SessionStatus,
    /// Events currently waiting in the ingest queue.
    pub queue_depth: usize,
    /// Pose samples currently waiting in the ingest queue.
    pub queued_poses: usize,
    /// Capacity of the ingest queue's event lane.
    pub queue_capacity: usize,
    /// Events accepted into the ingest queue so far (including ones since
    /// ingested).
    pub events_enqueued: u64,
    /// Events moved from the ingest queue into the session so far.
    pub events_ingested: u64,
    /// Events the session's datapath has fully processed (voted) so far.
    pub events_processed: u64,
    /// Key frames retired so far. One semi-dense depth map is produced per
    /// key frame, so this doubles as the depth-map count.
    pub depth_maps: usize,
    /// Wall time workers spent executing this session's pump quanta, in
    /// seconds.
    pub busy_seconds: f64,
    /// `events_processed / busy_seconds` (0 while no time was spent).
    pub events_per_second: f64,
    /// `depth_maps / busy_seconds` (0 while no time was spent).
    pub depth_maps_per_second: f64,
    /// Whether the last pump round could not move a single queued event into
    /// the session (it is waiting on poses or on its own pending buffer).
    pub stalled: bool,
}

/// A point-in-time snapshot of the whole engine's serving counters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeMetrics {
    /// Sessions ever admitted.
    pub sessions: usize,
    /// Sessions currently [`SessionStatus::Active`].
    pub active: usize,
    /// Sessions currently [`SessionStatus::Draining`].
    pub draining: usize,
    /// Sessions that finished (terminal output produced).
    pub finished: usize,
    /// Sessions currently [`SessionStatus::Failed`].
    pub failed: usize,
    /// Size of the worker pool.
    pub workers: usize,
    /// Total events waiting across every ingest queue.
    pub queue_depth: usize,
    /// Total events accepted into ingest queues.
    pub events_enqueued: u64,
    /// Total events moved from ingest queues into sessions.
    pub events_ingested: u64,
    /// Total events fully processed across all sessions.
    pub events_processed: u64,
    /// Total key frames (= depth maps) retired across all sessions.
    pub depth_maps: usize,
    /// Completed [`pump`](crate::ServeEngine::pump) rounds.
    pub pump_rounds: u64,
    /// Sum of per-session busy time, in seconds.
    pub busy_seconds: f64,
    /// Wall time spent inside `pump` calls, in seconds.
    pub wall_seconds: f64,
    /// Aggregate throughput: `events_processed / wall_seconds` (0 while no
    /// pump ran).
    pub events_per_second: f64,
    /// Aggregate `depth_maps / wall_seconds` (0 while no pump ran).
    pub depth_maps_per_second: f64,
    /// Worker-pool utilisation: `busy_seconds / (wall_seconds × workers)`,
    /// in `[0, 1]`. Low values mean the pool is starved (too few runnable
    /// sessions per round) or dominated by coordination overhead.
    pub utilization: f64,
}

/// `numerator / seconds`, defined as 0 when no time has been observed.
pub(crate) fn per_second(numerator: f64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        numerator / seconds
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_handles_zero_time() {
        assert_eq!(per_second(100.0, 0.0), 0.0);
        assert_eq!(per_second(100.0, 2.0), 50.0);
    }
}
