//! The multi-session serving engine: [`ServeEngine`] and its configuration,
//! identifiers, lifecycle events and error type.

use crate::metrics::{per_second, ServeMetrics, SessionMetrics, SessionStatus};
use crate::queue::IngestQueue;
use eventor_core::SessionOutput;
use eventor_core::{EventorOptions, EventorSession, SessionCheckpoint};
use eventor_emvs::{run_sharded, EmvsError, ParallelConfig, SessionEvent};
use eventor_events::{Event, EventStream};
use eventor_geom::{Pose, Trajectory};
use std::fmt;
use std::time::{Duration, Instant};

/// Default per-session ingest-queue capacity, in events: one engine spill
/// window, so a session's total in-flight memory (queue + pending buffer +
/// backend spill buffer) stays within a few windows.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1 << 16;

/// Default pump quantum, in events: how many queued events one session may
/// move into its session per [`ServeEngine::pump`] round. Large enough to
/// amortise scheduling overhead over several aggregated frames, small enough
/// that 64 sessions sharing a pool stay interactive.
pub const DEFAULT_QUANTUM_EVENTS: usize = 8192;

/// Handle of one admitted session, returned by [`ServeEngine::admit`].
///
/// Identifiers are dense (admission order) and never reused within one
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) usize);

impl SessionId {
    /// The dense admission index of this session.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session #{}", self.0)
    }
}

/// Configuration of a [`ServeEngine`]: worker-pool size, per-session queue
/// bound and scheduling quantum. All setters clamp to usable values, so a
/// configuration is always valid (mirroring
/// [`ParallelConfig`]).
///
/// # Examples
///
/// ```
/// use eventor_serve::ServeConfig;
/// let config = ServeConfig::new()
///     .with_workers(8)
///     .with_queue_capacity(32 * 1024)
///     .with_quantum_events(4096);
/// assert_eq!(config.workers(), 8);
/// assert_eq!(config.queue_capacity(), 32 * 1024);
/// assert_eq!(config.quantum_events(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    workers: usize,
    queue_capacity: usize,
    quantum_events: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeConfig {
    /// One worker per available hardware thread,
    /// [`DEFAULT_QUEUE_CAPACITY`], [`DEFAULT_QUANTUM_EVENTS`].
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            workers,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            quantum_events: DEFAULT_QUANTUM_EVENTS,
        }
    }

    /// Sets the worker-pool size (clamped to at least 1). Like the sharded
    /// voting engine, the *partition* of sessions onto workers is a pure
    /// function of this count; how many OS threads execute it is capped at
    /// the machine's hardware threads by the runner.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-session ingest-queue capacity in events (clamped to at
    /// least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-session pump quantum in events (clamped to at least 1).
    pub fn with_quantum_events(mut self, quantum: usize) -> Self {
        self.quantum_events = quantum.max(1);
        self
    }

    /// Size of the worker pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Per-session ingest-queue capacity, in events.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Per-session, per-round scheduling quantum, in events.
    pub fn quantum_events(&self) -> usize {
        self.quantum_events
    }
}

/// Engine-level lifecycle notifications, drained by
/// [`ServeEngine::poll_serve`]. Per-session reconstruction lifecycle
/// ([`SessionEvent`]) is delivered separately by
/// [`ServeEngine::poll_session`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeEvent {
    /// A session was admitted into the engine.
    SessionAdmitted {
        /// The new session's handle.
        session: SessionId,
        /// Short identifier of its execution backend.
        backend: &'static str,
    },
    /// A pump round could not move a single queued event into this session:
    /// it is waiting on poses (or on its own bounded pending buffer).
    /// Emitted once per stall, not once per round; ingestion progress clears
    /// the stall.
    SessionStalled {
        /// The stalled session.
        session: SessionId,
        /// Events waiting in its ingest queue.
        queued: usize,
        /// Events buffered inside the session awaiting pose coverage.
        pending: usize,
    },
    /// A pump round recorded an error for this session (sticky until the
    /// cause is fixed; see [`ServeEngine::last_error`]). Emitted once per
    /// failure, not once per round.
    SessionFailed {
        /// The failed session.
        session: SessionId,
        /// The recorded error.
        error: EmvsError,
    },
    /// A closed session fully drained, flushed and finished; its
    /// [`SessionOutput`] is ready for [`ServeEngine::take_output`].
    SessionFinished {
        /// The finished session.
        session: SessionId,
        /// Key frames (= depth maps) it produced.
        keyframes: usize,
        /// Events its datapath processed.
        events_processed: u64,
    },
}

/// Errors returned by [`ServeEngine`] entry points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The [`SessionId`] does not name a session of this engine.
    UnknownSession {
        /// The offending handle.
        session: SessionId,
    },
    /// Input was enqueued into a session that was already
    /// [`close`](ServeEngine::close)d or finished.
    SessionClosed {
        /// The closed session.
        session: SessionId,
    },
    /// A session-layer error, attributed to the session it occurred in. The
    /// `source` keeps the exact `eventor-emvs` semantics — in particular
    /// [`EmvsError::Backpressure`] retains its meaning of "a bounded buffer
    /// is full; drain it or supply the poses it is waiting for".
    Session {
        /// The session the error belongs to.
        session: SessionId,
        /// The underlying session-layer error.
        source: EmvsError,
    },
    /// A [`SessionCheckpoint`] could not be resumed into this engine
    /// (unknown backend kind, incompatible vote state, inconsistent
    /// checkpoint). Unlike [`ServeError::Session`] there is no session to
    /// blame: admission never happened.
    Resume {
        /// The underlying checkpoint error.
        source: EmvsError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownSession { session } => write!(f, "{session} is not admitted here"),
            Self::SessionClosed { session } => {
                write!(f, "{session} is closed and accepts no more input")
            }
            Self::Session { session, source } => write!(f, "{session}: {source}"),
            Self::Resume { source } => write!(f, "cannot resume checkpoint: {source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Session { source, .. } => Some(source),
            Self::Resume { source } => Some(source),
            _ => None,
        }
    }
}

/// What one [`ServeEngine::pump`] round accomplished, for callers driving
/// their own scheduling loops ([`ServeEngine::drain`] is the built-in one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Events moved from ingest queues into sessions this round.
    pub events_ingested: u64,
    /// Pose samples moved from ingest queues into sessions this round.
    pub poses_ingested: u64,
    /// Sessions that reached their terminal output this round.
    pub sessions_finished: usize,
}

impl PumpStats {
    /// Whether the round moved any input or finished any session.
    pub fn made_progress(&self) -> bool {
        self.events_ingested > 0 || self.poses_ingested > 0 || self.sessions_finished > 0
    }
}

/// One admitted session and everything the engine tracks about it.
#[derive(Debug)]
struct Slot {
    id: usize,
    backend: &'static str,
    session: Option<EventorSession>,
    queue: IngestQueue,
    outbox: Vec<SessionEvent>,
    error: Option<EmvsError>,
    failure_reported: bool,
    stalled: bool,
    just_finished: bool,
    output: Option<SessionOutput>,
    output_taken: bool,
    events_enqueued: u64,
    events_ingested: u64,
    busy: Duration,
    round_events: usize,
    round_poses: usize,
    final_processed: u64,
    final_keyframes: usize,
}

impl Slot {
    fn new(id: usize, session: EventorSession, queue_capacity: usize) -> Self {
        Self {
            id,
            backend: session.backend_name(),
            session: Some(session),
            queue: IngestQueue::new(queue_capacity),
            outbox: Vec::new(),
            error: None,
            failure_reported: false,
            stalled: false,
            just_finished: false,
            output: None,
            output_taken: false,
            events_enqueued: 0,
            events_ingested: 0,
            busy: Duration::ZERO,
            round_events: 0,
            round_poses: 0,
            final_processed: 0,
            final_keyframes: 0,
        }
    }

    /// Whether a pump round has any work to attempt on this slot.
    fn runnable(&self) -> bool {
        self.session.is_some()
            && (self.queue.depth() > 0
                || !self.queue.poses.is_empty()
                || self.queue.is_closed()
                || self.error.is_some())
    }

    fn status(&self) -> SessionStatus {
        if self.output.is_some() || self.output_taken {
            SessionStatus::Finished
        } else if self.error.is_some() || self.session.is_none() {
            SessionStatus::Failed
        } else if self.queue.is_closed() {
            SessionStatus::Draining
        } else {
            SessionStatus::Active
        }
    }

    fn live_processed(&self) -> u64 {
        match &self.session {
            Some(session) => session.profile().events_processed,
            None => self.final_processed,
        }
    }

    fn live_keyframes(&self) -> usize {
        match &self.session {
            Some(session) => session.keyframes().len(),
            None => self.final_keyframes,
        }
    }

    fn metrics(&self) -> SessionMetrics {
        let busy = self.busy.as_secs_f64();
        let processed = self.live_processed();
        let keyframes = self.live_keyframes();
        SessionMetrics {
            session: SessionId(self.id),
            backend: self.backend,
            status: self.status(),
            queue_depth: self.queue.depth(),
            queued_poses: self.queue.poses.len(),
            queue_capacity: self.queue.capacity(),
            events_enqueued: self.events_enqueued,
            events_ingested: self.events_ingested,
            events_processed: processed,
            depth_maps: keyframes,
            busy_seconds: busy,
            events_per_second: per_second(processed as f64, busy),
            depth_maps_per_second: per_second(keyframes as f64, busy),
            stalled: self.stalled,
        }
    }
}

/// One scheduling quantum for one session, executed on a worker thread:
/// deliver queued poses, move up to `quantum` queued events into the session
/// (the session votes them as frames become ready), poll lifecycle events,
/// and — once the slot is closed and its queue empty — flush and finish.
///
/// Errors never propagate across sessions: they are recorded on the slot
/// (sticky until the cause is fixed) and surfaced through
/// [`ServeEvent::SessionFailed`] / [`ServeEngine::last_error`].
fn pump_slot(slot: &mut Slot, quantum: usize) {
    let t0 = Instant::now();
    slot.error = None;
    let Some(session) = slot.session.as_mut() else {
        return;
    };

    // ➊ Poses: always delivered in full — they are what unblock event
    //   ingestion. An invalid sample (non-monotonic timestamp) is dropped and
    //   recorded instead of wedging the queue forever.
    while let Some(&(timestamp, pose)) = slot.queue.poses.front() {
        match session.push_pose(timestamp, pose) {
            Ok(()) => {
                slot.queue.poses.pop_front();
                slot.round_poses += 1;
            }
            Err(e) => {
                slot.queue.poses.pop_front();
                slot.error = Some(e);
                break;
            }
        }
    }

    // ➋ Events, up to the fairness quantum. `push_events` both buffers and
    //   drains ready frames, so the voting work happens here, on this worker.
    let mut moved = 0usize;
    while moved < quantum && slot.queue.depth() > 0 && slot.error.is_none() {
        let (front, _) = slot.queue.events.as_slices();
        let take = front.len().min(quantum - moved);
        match session.push_events(&front[..take]) {
            Ok(accepted) => {
                slot.queue.events.drain(..accepted);
                moved += accepted;
                if accepted < take {
                    break; // Session pending buffer is full: waiting on poses.
                }
            }
            Err(EmvsError::Backpressure { .. }) => break,
            Err(e) => {
                slot.error = Some(e);
                break;
            }
        }
    }
    slot.round_events = moved;
    slot.events_ingested += moved as u64;

    // ➌ Lifecycle delivery. A poll error (e.g. a frame whose pose can never
    //   arrive) is sticky but recoverable: the events stay buffered inside
    //   the session, and the next round retries after the caller intervenes.
    match session.poll() {
        Ok(events) => slot.outbox.extend(events),
        Err(e) => slot.error = Some(e),
    }

    // ➍ Termination: closed + fully drained → flush (recoverable on error)
    //   and finish (stashes the terminal output).
    if slot.queue.is_closed()
        && slot.queue.depth() == 0
        && slot.queue.poses.is_empty()
        && slot.error.is_none()
    {
        match session.flush() {
            Ok(()) => {
                match session.poll() {
                    Ok(events) => slot.outbox.extend(events),
                    Err(e) => slot.error = Some(e),
                }
                if slot.error.is_none() {
                    let session = slot.session.take().expect("checked above");
                    slot.final_processed = session.profile().events_processed;
                    match session.finish() {
                        Ok(output) => {
                            slot.final_keyframes = output.output.keyframes.len();
                            slot.outbox.extend(output.events.iter().cloned());
                            slot.output = Some(output);
                            slot.just_finished = true;
                        }
                        // Terminal: `finish` consumed the session (only
                        // `NoEvents` reaches this arm — the flush above
                        // already succeeded).
                        Err(e) => slot.error = Some(e),
                    }
                }
            }
            Err(e) => slot.error = Some(e),
        }
    }
    slot.busy += t0.elapsed();
}

/// The multi-session serving engine: multiplexes any number of independent
/// [`EventorSession`] streams over a bounded worker pool with fair
/// round-robin scheduling, per-session bounded ingest queues, lifecycle
/// fan-out and serving metrics.
///
/// The engine is the `eventor-serve/1` contract (`docs/ARCHITECTURE.md`
/// §7): sessions share nothing but compute, so each session's
/// quantized-nearest output is **bit-identical** to the same stream run
/// standalone, for every backend and every interleaving of input and
/// [`pump`](Self::pump) calls (`tests/serve_equivalence.rs`).
///
/// # Examples
///
/// ```
/// use eventor_core::{config_for_sequence, EventorOptions, EventorSession};
/// use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence};
/// use eventor_serve::{ServeConfig, ServeEngine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())?;
/// let mut engine = ServeEngine::new(ServeConfig::new().with_workers(2));
///
/// // Admit independent sessions (any backend mix).
/// let a = engine.admit(
///     EventorSession::builder(seq.camera, config_for_sequence(&seq, 60))
///         .software(EventorOptions::accelerator())
///         .build()?,
/// );
///
/// // Feed input, pump the pool, poll lifecycle events.
/// engine.enqueue_trajectory(a, &seq.trajectory)?;
/// let mut offset = 0;
/// let events = seq.events.as_slice();
/// while offset < events.len() {
///     offset += engine.enqueue_events(a, &events[offset..])?;
///     engine.pump();
/// }
/// engine.close(a)?;
/// engine.drain()?;
/// let output = engine.take_output(a).expect("session finished");
/// assert!(!output.output.keyframes.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    slots: Vec<Slot>,
    serve_outbox: Vec<ServeEvent>,
    pump_rounds: u64,
    pump_wall: Duration,
}

impl ServeEngine {
    /// Creates an engine with the given configuration (always valid — the
    /// setters clamp).
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            slots: Vec::new(),
            serve_outbox: Vec::new(),
            pump_rounds: 0,
            pump_wall: Duration::ZERO,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of sessions ever admitted (finished ones included).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no session was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Handles of every admitted session, in admission order.
    pub fn session_ids(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.slots.iter().map(|s| SessionId(s.id))
    }

    /// Admits a session into the engine and emits
    /// [`ServeEvent::SessionAdmitted`]. The session keeps whatever backend
    /// and options it was built with — heterogeneous pools are the normal
    /// case.
    pub fn admit(&mut self, session: EventorSession) -> SessionId {
        let id = SessionId(self.slots.len());
        self.serve_outbox.push(ServeEvent::SessionAdmitted {
            session: id,
            backend: session.backend_name(),
        });
        self.slots
            .push(Slot::new(id.0, session, self.config.queue_capacity()));
        id
    }

    fn slot(&self, id: SessionId) -> Result<&Slot, ServeError> {
        self.slots
            .get(id.0)
            .ok_or(ServeError::UnknownSession { session: id })
    }

    fn slot_mut(&mut self, id: SessionId) -> Result<&mut Slot, ServeError> {
        self.slots
            .get_mut(id.0)
            .ok_or(ServeError::UnknownSession { session: id })
    }

    /// Enqueues one pose sample for a session. Poses are accepted until the
    /// session finishes — a [`close`](Self::close)d stream's trailing frames
    /// may still be waiting for the poses that cover them.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], or [`ServeError::SessionClosed`] once
    /// the session has finished.
    pub fn enqueue_pose(
        &mut self,
        id: SessionId,
        timestamp: f64,
        pose: Pose,
    ) -> Result<(), ServeError> {
        let slot = self.slot_mut(id)?;
        if slot.session.is_none() {
            return Err(ServeError::SessionClosed { session: id });
        }
        slot.queue.enqueue_pose(timestamp, pose);
        Ok(())
    }

    /// Enqueues every sample of a trajectory ([`Self::enqueue_pose`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::enqueue_pose`].
    pub fn enqueue_trajectory(
        &mut self,
        id: SessionId,
        trajectory: &Trajectory,
    ) -> Result<(), ServeError> {
        for sample in trajectory.iter() {
            self.enqueue_pose(id, sample.timestamp, sample.pose)?;
        }
        Ok(())
    }

    /// Enqueues a time-ordered event packet into a session's bounded ingest
    /// queue, returning the number of events accepted — `write(2)`-style
    /// short-write semantics, exactly like
    /// [`EventorSession::push_events`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownSession`] / [`ServeError::SessionClosed`],
    /// * [`ServeError::Session`] wrapping [`EmvsError::OutOfOrder`] (nothing
    ///   accepted) or [`EmvsError::Backpressure`] when the queue is full and
    ///   zero events could be accepted — [`pump`](Self::pump) (or supply the
    ///   poses the session is waiting for) and retry.
    pub fn enqueue_events(&mut self, id: SessionId, events: &[Event]) -> Result<usize, ServeError> {
        let slot = self.slot_mut(id)?;
        if slot.session.is_none() || slot.queue.is_closed() {
            return Err(ServeError::SessionClosed { session: id });
        }
        match slot.queue.enqueue_events(events) {
            Ok(accepted) => {
                slot.events_enqueued += accepted as u64;
                Ok(accepted)
            }
            Err(source) => Err(ServeError::Session {
                session: id,
                source,
            }),
        }
    }

    /// [`Self::enqueue_events`] on an [`EventStream`] packet.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::enqueue_events`].
    pub fn enqueue_packet(
        &mut self,
        id: SessionId,
        packet: &EventStream,
    ) -> Result<usize, ServeError> {
        self.enqueue_events(id, packet.as_slice())
    }

    /// Declares end-of-stream for a session: no further events are accepted,
    /// and once its queue drains the engine flushes and finishes it
    /// (emitting [`ServeEvent::SessionFinished`]). Idempotent.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn close(&mut self, id: SessionId) -> Result<(), ServeError> {
        self.slot_mut(id)?.queue.close();
        Ok(())
    }

    /// Drops every queued and session-buffered event of one session and
    /// clears its failure state — the escape hatch for input whose poses can
    /// never arrive. Returns how many events were discarded.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn discard_pending(&mut self, id: SessionId) -> Result<usize, ServeError> {
        let slot = self.slot_mut(id)?;
        let mut dropped = slot.queue.discard_events();
        if let Some(session) = slot.session.as_mut() {
            dropped += session.discard_pending();
        }
        slot.error = None;
        slot.failure_reported = false;
        Ok(dropped)
    }

    /// Aborts a session: every queued and session-buffered input is dropped,
    /// the live session is destroyed, and `reason` is recorded as the
    /// session's sticky failure — the serving-tier response to a client that
    /// vanished mid-stream. [`ServeEvent::SessionFailed`] is emitted
    /// immediately. Aborting a session that already finished is a no-op (its
    /// output stays available); aborting twice is idempotent.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn abort(&mut self, id: SessionId, reason: EmvsError) -> Result<(), ServeError> {
        let slot = self.slot_mut(id)?;
        if slot.output.is_some() || slot.output_taken {
            return Ok(());
        }
        slot.queue.discard_events();
        slot.queue.poses.clear();
        slot.queue.close();
        if let Some(session) = slot.session.take() {
            slot.final_processed = session.profile().events_processed;
            slot.final_keyframes = session.keyframes().len();
        }
        slot.stalled = false;
        let already_failed = slot.failure_reported && slot.error.is_some();
        slot.error = Some(reason.clone());
        slot.failure_reported = true;
        if !already_failed {
            self.serve_outbox.push(ServeEvent::SessionFailed {
                session: id,
                error: reason,
            });
        }
        Ok(())
    }

    /// Captures a live session as a durable [`SessionCheckpoint`] without
    /// disturbing it — the session keeps serving afterwards. `origin` is
    /// recorded verbatim for the resume side (e.g. the scenario and seed
    /// that generated the stream).
    ///
    /// The session's ingest queue must be fully drained
    /// ([`pump`](Self::pump) until idle): queued-but-uningested input is
    /// client state the checkpoint would silently lose.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`]; [`ServeError::SessionClosed`] when
    /// the session already finished; [`ServeError::Session`] wrapping
    /// [`EmvsError::Checkpoint`] when the queue still holds input, a sticky
    /// failure is recorded, or the session layer refuses the snapshot.
    pub fn checkpoint_session(
        &mut self,
        id: SessionId,
        origin: &str,
    ) -> Result<SessionCheckpoint, ServeError> {
        let slot = self.slot_mut(id)?;
        let Some(session) = slot.session.as_mut() else {
            return Err(ServeError::SessionClosed { session: id });
        };
        let refuse = |reason: String| ServeError::Session {
            session: id,
            source: EmvsError::Checkpoint { reason },
        };
        if let Some(error) = &slot.error {
            return Err(refuse(format!(
                "session has a recorded failure ({error}); resolve it before checkpointing"
            )));
        }
        if slot.queue.depth() > 0 || !slot.queue.poses.is_empty() {
            return Err(refuse(format!(
                "{} events and {} poses still queued: pump() until idle before checkpointing",
                slot.queue.depth(),
                slot.queue.poses.len()
            )));
        }
        session
            .snapshot(origin)
            .map_err(|source| ServeError::Session {
                session: id,
                source,
            })
    }

    /// Admits a session resumed from a [`SessionCheckpoint`], on the backend
    /// kind recorded in the checkpoint: `"software"`, `"sharded"` (one shard
    /// per checkpointed vote tile, preserving bit-exactness) or `"cosim"`.
    /// Emits [`ServeEvent::SessionAdmitted`] like any admission.
    ///
    /// # Errors
    ///
    /// [`ServeError::Resume`] wrapping [`EmvsError::Checkpoint`] for an
    /// unknown backend kind, an incompatible vote state or an internally
    /// inconsistent checkpoint.
    pub fn resume_session(
        &mut self,
        checkpoint: SessionCheckpoint,
    ) -> Result<SessionId, ServeError> {
        let builder = EventorSession::builder(*checkpoint.camera(), checkpoint.config().clone());
        let builder = match checkpoint.backend_kind() {
            "software" => builder.software(EventorOptions::accelerator()),
            "sharded" => builder.sharded(
                EventorOptions::accelerator(),
                ParallelConfig::with_shards(checkpoint.driver().vote_state.tile_count().max(1)),
            ),
            "cosim" => builder.cosim(eventor_hwsim::AcceleratorConfig::default()),
            other => {
                return Err(ServeError::Resume {
                    source: EmvsError::Checkpoint {
                        reason: format!("unknown backend kind '{other}'"),
                    },
                })
            }
        };
        let session = builder
            .restore(checkpoint)
            .map_err(|source| ServeError::Resume { source })?;
        Ok(self.admit(session))
    }

    /// Runs one fair scheduling round over the worker pool: every runnable
    /// session receives up to one quantum
    /// ([`ServeConfig::quantum_events`]) of ingestion plus the voting work
    /// it unlocks. Sessions are assigned to workers round-robin
    /// (`id mod workers`) and the pool executes on at most
    /// `min(workers, hardware threads)` OS threads; because sessions share
    /// no state, the assignment affects wall time only, never output.
    pub fn pump(&mut self) -> PumpStats {
        let t0 = Instant::now();
        let workers = self.config.workers();
        let quantum = self.config.quantum_events();
        for slot in &mut self.slots {
            slot.round_events = 0;
            slot.round_poses = 0;
        }
        let mut lanes: Vec<Vec<&mut Slot>> = Vec::new();
        lanes.resize_with(workers, Vec::new);
        for slot in self.slots.iter_mut().filter(|s| s.runnable()) {
            let lane = slot.id % workers;
            lanes[lane].push(slot);
        }
        run_sharded(&mut lanes, |_, lane| {
            for slot in lane.iter_mut() {
                pump_slot(slot, quantum);
            }
        });
        drop(lanes);

        let mut stats = PumpStats::default();
        for slot in &mut self.slots {
            stats.events_ingested += slot.round_events as u64;
            stats.poses_ingested += slot.round_poses as u64;
            let stalled_now =
                slot.session.is_some() && slot.queue.depth() > 0 && slot.round_events == 0;
            if stalled_now && !slot.stalled {
                self.serve_outbox.push(ServeEvent::SessionStalled {
                    session: SessionId(slot.id),
                    queued: slot.queue.depth(),
                    pending: slot
                        .session
                        .as_ref()
                        .map(|s| s.pending_events())
                        .unwrap_or(0),
                });
            }
            slot.stalled = stalled_now;
            match &slot.error {
                Some(error) if !slot.failure_reported => {
                    slot.failure_reported = true;
                    self.serve_outbox.push(ServeEvent::SessionFailed {
                        session: SessionId(slot.id),
                        error: error.clone(),
                    });
                }
                Some(_) => {}
                None => slot.failure_reported = false,
            }
            if slot.just_finished {
                slot.just_finished = false;
                stats.sessions_finished += 1;
                self.serve_outbox.push(ServeEvent::SessionFinished {
                    session: SessionId(slot.id),
                    keyframes: slot.final_keyframes,
                    events_processed: slot.final_processed,
                });
            }
        }
        self.pump_rounds += 1;
        self.pump_wall += t0.elapsed();
        stats
    }

    /// Whether every ingest queue is empty and every closed session has
    /// reached a terminal state — the condition [`Self::drain`] pumps
    /// toward.
    pub fn is_idle(&self) -> bool {
        self.slots.iter().all(|s| {
            s.queue.depth() == 0
                && s.queue.poses.is_empty()
                && (!s.queue.is_closed() || s.session.is_none())
        })
    }

    /// The graceful drain: pumps until every queue is empty and every closed
    /// session has finished.
    ///
    /// # Errors
    ///
    /// When a full round makes no progress while work remains, the first
    /// stuck session's error is returned: its sticky session error if one is
    /// recorded, otherwise a [`ServeError::Session`] wrapping
    /// [`EmvsError::Backpressure`] (its input is wedged behind poses that
    /// were never enqueued — supply them or
    /// [`discard_pending`](Self::discard_pending)). Other sessions keep
    /// draining; calling `drain` again after fixing the cause resumes.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        loop {
            let stats = self.pump();
            if self.is_idle() {
                return Ok(());
            }
            if !stats.made_progress() {
                return Err(self.stuck_error());
            }
        }
    }

    /// The error blamed for a no-progress round: the first non-idle slot's
    /// recorded error, or backpressure on its wedged input.
    fn stuck_error(&self) -> ServeError {
        for slot in &self.slots {
            let idle = slot.queue.depth() == 0
                && slot.queue.poses.is_empty()
                && (!slot.queue.is_closed() || slot.session.is_none());
            if idle {
                continue;
            }
            let session = SessionId(slot.id);
            return match &slot.error {
                Some(source) => ServeError::Session {
                    session,
                    source: source.clone(),
                },
                None => ServeError::Session {
                    session,
                    source: EmvsError::Backpressure {
                        pending: slot.queue.depth()
                            + slot
                                .session
                                .as_ref()
                                .map(|s| s.pending_events())
                                .unwrap_or(0),
                        capacity: slot.queue.capacity(),
                    },
                },
            };
        }
        // Unreachable: callers only ask after observing a non-idle engine.
        ServeError::UnknownSession {
            session: SessionId(usize::MAX),
        }
    }

    /// Takes the lifecycle events a session emitted since the last poll
    /// (`SegmentRetired` → `DepthMapReady` → `KeyframeReady` [→ `MapFused`]
    /// per key frame, in order). Delivery is per-session: no interleaving
    /// with other sessions' events.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn poll_session(&mut self, id: SessionId) -> Result<Vec<SessionEvent>, ServeError> {
        Ok(std::mem::take(&mut self.slot_mut(id)?.outbox))
    }

    /// Takes the engine-level events emitted since the last poll
    /// (admissions, stalls, failures, finishes).
    pub fn poll_serve(&mut self) -> Vec<ServeEvent> {
        std::mem::take(&mut self.serve_outbox)
    }

    /// The lifecycle state of one session.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn status(&self, id: SessionId) -> Result<SessionStatus, ServeError> {
        Ok(self.slot(id)?.status())
    }

    /// The sticky error recorded for a session by the last pump round, if
    /// any. Cleared automatically once a round succeeds (or explicitly by
    /// [`discard_pending`](Self::discard_pending)).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn last_error(&self, id: SessionId) -> Result<Option<EmvsError>, ServeError> {
        Ok(self.slot(id)?.error.clone())
    }

    /// Takes a finished session's terminal output, if it has finished and
    /// the output was not taken before.
    pub fn take_output(&mut self, id: SessionId) -> Option<SessionOutput> {
        let slot = self.slots.get_mut(id.0)?;
        let output = slot.output.take();
        if output.is_some() {
            slot.output_taken = true;
        }
        output
    }

    /// Closes one session and pumps the engine until it finishes, returning
    /// its terminal output — the synchronous convenience over
    /// [`close`](Self::close) + [`drain`](Self::drain) +
    /// [`take_output`](Self::take_output). Other sessions keep making
    /// progress during the wait (the pump rounds are engine-wide).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`]; [`ServeError::SessionClosed`] when
    /// the output was already taken; the session's own error when it cannot
    /// finish (missing poses, flush failure).
    pub fn finish_session(&mut self, id: SessionId) -> Result<SessionOutput, ServeError> {
        self.close(id)?;
        loop {
            let slot = self.slot_mut(id)?;
            if let Some(output) = slot.output.take() {
                slot.output_taken = true;
                return Ok(output);
            }
            if slot.session.is_none() {
                return match &slot.error {
                    Some(source) => Err(ServeError::Session {
                        session: id,
                        source: source.clone(),
                    }),
                    None => Err(ServeError::SessionClosed { session: id }),
                };
            }
            if !self.pump().made_progress() {
                let slot = self.slot(id)?;
                return match &slot.error {
                    Some(source) => Err(ServeError::Session {
                        session: id,
                        source: source.clone(),
                    }),
                    None => Err(self.stuck_error()),
                };
            }
        }
    }

    /// Graceful shutdown: closes every session, drains the pool, and returns
    /// each session's terminal result in admission order — the output for
    /// sessions that finished (now or earlier, unless already taken), the
    /// blocking error for sessions that could not.
    pub fn shutdown(mut self) -> Vec<(SessionId, Result<SessionOutput, ServeError>)> {
        for slot in &mut self.slots {
            slot.queue.close();
        }
        let _ = self.drain();
        self.slots
            .into_iter()
            .map(|slot| {
                let id = SessionId(slot.id);
                let result = if let Some(output) = slot.output {
                    Ok(output)
                } else if slot.output_taken {
                    Err(ServeError::SessionClosed { session: id })
                } else if let Some(source) = slot.error {
                    Err(ServeError::Session {
                        session: id,
                        source,
                    })
                } else if let Some(session) = slot.session {
                    session.finish().map_err(|source| ServeError::Session {
                        session: id,
                        source,
                    })
                } else {
                    Err(ServeError::SessionClosed { session: id })
                };
                (id, result)
            })
            .collect()
    }

    /// A metrics snapshot for one session (field reference in
    /// `docs/SERVING.md`).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn session_metrics(&self, id: SessionId) -> Result<SessionMetrics, ServeError> {
        Ok(self.slot(id)?.metrics())
    }

    /// A point-in-time snapshot of the whole serving tier: aggregate
    /// counters plus every session's [`SessionMetrics`], in admission order.
    /// This is the surface remote readers consume — render it with
    /// [`MetricsSnapshot::to_json`](crate::MetricsSnapshot::to_json) for the
    /// byte-reproducible `eventor-metrics/1` document.
    pub fn metrics_snapshot(&self) -> crate::MetricsSnapshot {
        crate::MetricsSnapshot {
            aggregate: self.metrics(),
            sessions: self.slots.iter().map(Slot::metrics).collect(),
        }
    }

    /// The key frames a session has retired so far: the live session's
    /// running reconstruction while it is being served, the terminal
    /// output's key frames once it finished, and the empty slice after the
    /// output was taken. Lets a bridge stream depth maps incrementally
    /// without consuming the terminal output.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`].
    pub fn keyframes(
        &self,
        id: SessionId,
    ) -> Result<&[eventor_emvs::KeyframeReconstruction], ServeError> {
        let slot = self.slot(id)?;
        if let Some(session) = &slot.session {
            return Ok(session.keyframes());
        }
        match &slot.output {
            Some(output) => Ok(&output.output.keyframes),
            None => Ok(&[]),
        }
    }

    /// An aggregate metrics snapshot for the whole engine (field reference
    /// in `docs/SERVING.md`).
    pub fn metrics(&self) -> ServeMetrics {
        let mut m = ServeMetrics {
            sessions: self.slots.len(),
            active: 0,
            draining: 0,
            finished: 0,
            failed: 0,
            workers: self.config.workers(),
            queue_depth: 0,
            events_enqueued: 0,
            events_ingested: 0,
            events_processed: 0,
            depth_maps: 0,
            pump_rounds: self.pump_rounds,
            busy_seconds: 0.0,
            wall_seconds: self.pump_wall.as_secs_f64(),
            events_per_second: 0.0,
            depth_maps_per_second: 0.0,
            utilization: 0.0,
        };
        for slot in &self.slots {
            match slot.status() {
                SessionStatus::Active => m.active += 1,
                SessionStatus::Draining => m.draining += 1,
                SessionStatus::Finished => m.finished += 1,
                SessionStatus::Failed => m.failed += 1,
            }
            m.queue_depth += slot.queue.depth();
            m.events_enqueued += slot.events_enqueued;
            m.events_ingested += slot.events_ingested;
            m.events_processed += slot.live_processed();
            m.depth_maps += slot.live_keyframes();
            m.busy_seconds += slot.busy.as_secs_f64();
        }
        m.events_per_second = per_second(m.events_processed as f64, m.wall_seconds);
        m.depth_maps_per_second = per_second(m.depth_maps as f64, m.wall_seconds);
        m.utilization = per_second(m.busy_seconds, m.wall_seconds * m.workers as f64);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_core::{config_for_sequence, EventorOptions, EventorSession};
    use eventor_events::{DatasetConfig, Polarity, SequenceKind, SyntheticSequence};

    fn sequence() -> SyntheticSequence {
        SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())
            .expect("fast_test sequences generate")
    }

    fn session_for(seq: &SyntheticSequence) -> EventorSession {
        EventorSession::builder(seq.camera, config_for_sequence(seq, 50))
            .software(EventorOptions::accelerator())
            .build()
            .expect("session builds")
    }

    #[test]
    fn engine_and_slots_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ServeEngine>();
        assert_send::<EventorSession>();
    }

    #[test]
    fn config_defaults_and_clamps() {
        let c = ServeConfig::default();
        assert!(c.workers() >= 1);
        assert_eq!(c.queue_capacity(), DEFAULT_QUEUE_CAPACITY);
        assert_eq!(c.quantum_events(), DEFAULT_QUANTUM_EVENTS);
        let c = c
            .with_workers(0)
            .with_queue_capacity(0)
            .with_quantum_events(0);
        assert_eq!(
            (c.workers(), c.queue_capacity(), c.quantum_events()),
            (1, 1, 1)
        );
    }

    #[test]
    fn unknown_session_ids_are_rejected_everywhere() {
        let mut engine = ServeEngine::new(ServeConfig::new());
        let ghost = SessionId(7);
        assert!(matches!(
            engine.enqueue_events(ghost, &[]),
            Err(ServeError::UnknownSession { .. })
        ));
        assert!(matches!(
            engine.enqueue_pose(ghost, 0.0, Pose::identity()),
            Err(ServeError::UnknownSession { .. })
        ));
        assert!(matches!(
            engine.close(ghost),
            Err(ServeError::UnknownSession { .. })
        ));
        assert!(matches!(
            engine.status(ghost),
            Err(ServeError::UnknownSession { .. })
        ));
        assert!(engine.take_output(ghost).is_none());
        assert!(engine.is_empty());
        assert!(engine.is_idle());
        let err = ServeError::UnknownSession { session: ghost };
        assert!(err.to_string().contains("#7"));
    }

    #[test]
    fn admitted_session_runs_to_completion() {
        let seq = sequence();
        let mut engine = ServeEngine::new(ServeConfig::new().with_workers(2));
        let id = engine.admit(session_for(&seq));
        assert_eq!(engine.len(), 1);
        assert_eq!(engine.status(id).unwrap(), SessionStatus::Active);
        assert!(matches!(
            engine.poll_serve().as_slice(),
            [ServeEvent::SessionAdmitted {
                backend: "software",
                ..
            }]
        ));

        engine.enqueue_trajectory(id, &seq.trajectory).unwrap();
        let events = seq.events.as_slice();
        let mut offset = 0usize;
        while offset < events.len() {
            match engine.enqueue_events(id, &events[offset..]) {
                Ok(n) => offset += n,
                Err(ServeError::Session {
                    source: EmvsError::Backpressure { .. },
                    ..
                }) => {}
                Err(e) => panic!("unexpected enqueue error: {e}"),
            }
            engine.pump();
        }
        engine.close(id).unwrap();
        assert_eq!(engine.status(id).unwrap(), SessionStatus::Draining);
        engine.drain().unwrap();
        assert_eq!(engine.status(id).unwrap(), SessionStatus::Finished);
        assert!(engine
            .poll_serve()
            .iter()
            .any(|e| matches!(e, ServeEvent::SessionFinished { .. })));

        let metrics = engine.session_metrics(id).unwrap();
        assert_eq!(metrics.events_enqueued, events.len() as u64);
        assert_eq!(metrics.events_ingested, events.len() as u64);
        assert_eq!(metrics.events_processed, events.len() as u64);
        assert!(metrics.depth_maps > 0);
        assert!(metrics.busy_seconds > 0.0);
        assert!(metrics.events_per_second > 0.0);

        let output = engine.take_output(id).expect("finished output");
        assert_eq!(output.output.keyframes.len(), metrics.depth_maps);
        assert!(engine.take_output(id).is_none(), "output is taken once");
    }

    #[test]
    fn enqueue_after_close_is_rejected() {
        let seq = sequence();
        let mut engine = ServeEngine::new(ServeConfig::new());
        let id = engine.admit(session_for(&seq));
        engine.close(id).unwrap();
        engine.close(id).unwrap(); // idempotent
        assert!(matches!(
            engine.enqueue_events(id, seq.events.as_slice()),
            Err(ServeError::SessionClosed { .. })
        ));
        // Poses are still welcome: the tail may need them.
        engine.enqueue_pose(id, 0.0, Pose::identity()).unwrap();
    }

    #[test]
    fn queue_backpressure_reuses_emvs_semantics() {
        let seq = sequence();
        let mut engine =
            ServeEngine::new(ServeConfig::new().with_workers(1).with_queue_capacity(1000));
        let id = engine.admit(
            EventorSession::builder(seq.camera, config_for_sequence(&seq, 50))
                .software(EventorOptions::accelerator())
                .max_pending_events(2048)
                .build()
                .expect("session builds"),
        );
        // No poses: nothing drains, so the queue and then the session's
        // bounded pending buffer fill up.
        let events = seq.events.as_slice();
        let first = engine.enqueue_events(id, events).unwrap();
        assert_eq!(first, 1000, "short write at queue capacity");
        engine.pump();
        let mut total = first;
        loop {
            match engine.enqueue_events(id, &events[total..]) {
                Ok(n) => {
                    assert!(n > 0);
                    total += n;
                }
                Err(ServeError::Session {
                    source: EmvsError::Backpressure { pending, capacity },
                    ..
                }) => {
                    assert_eq!((pending, capacity), (1000, 1000));
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            engine.pump();
        }
        assert!(total < events.len());
        // drain() reports the wedge as backpressure on this session.
        assert!(matches!(
            engine.drain(),
            Err(ServeError::Session {
                source: EmvsError::Backpressure { .. },
                ..
            })
        ));
        // Stall was observed and reported once.
        let stalls = engine
            .poll_serve()
            .iter()
            .filter(|e| matches!(e, ServeEvent::SessionStalled { .. }))
            .count();
        assert_eq!(stalls, 1);
        // Supplying the poses unwedges the same engine.
        engine.enqueue_trajectory(id, &seq.trajectory).unwrap();
        engine.drain().unwrap();
        let mut offset = total;
        while offset < events.len() {
            match engine.enqueue_events(id, &events[offset..]) {
                Ok(n) => offset += n,
                Err(e) => panic!("unexpected error after poses: {e}"),
            }
            engine.pump();
        }
        let output = engine.finish_session(id).unwrap();
        assert!(!output.output.keyframes.is_empty());
    }

    #[test]
    fn failed_sessions_are_isolated_and_recoverable() {
        let seq = sequence();
        let mut engine = ServeEngine::new(ServeConfig::new().with_workers(2));
        let healthy = engine.admit(session_for(&seq));
        let doomed = engine.admit(session_for(&seq));
        engine.enqueue_trajectory(healthy, &seq.trajectory).unwrap();
        let events = seq.events.as_slice();
        let mut offset = 0usize;
        while offset < events.len() {
            offset += engine.enqueue_events(healthy, &events[offset..]).unwrap();
            engine.pump();
        }
        // Events whose frame mid-points precede every pose: the pose lookup
        // fails at flush and no future pose can cover them.
        let early: Vec<Event> = (0..2048)
            .map(|i| Event::new(i as f64 * 1e-5, 0, 0, Polarity::Positive))
            .collect();
        engine.enqueue_events(doomed, &early).unwrap();
        engine
            .enqueue_pose(doomed, 100.0, Pose::identity())
            .unwrap();
        engine
            .enqueue_pose(doomed, 101.0, Pose::identity())
            .unwrap();
        engine.close(healthy).unwrap();
        engine.close(doomed).unwrap();
        let err = engine.drain().expect_err("doomed session wedges the drain");
        assert!(matches!(err, ServeError::Session { session, .. } if session == doomed));
        // The healthy session finished regardless.
        assert_eq!(engine.status(healthy).unwrap(), SessionStatus::Finished);
        assert_eq!(engine.status(doomed).unwrap(), SessionStatus::Failed);
        assert!(engine.last_error(doomed).unwrap().is_some());
        assert!(engine
            .poll_serve()
            .iter()
            .any(|e| matches!(e, ServeEvent::SessionFailed { session, .. } if *session == doomed)));
        // Discarding the unservable input recovers the doomed session: it
        // now drains to an (empty) but well-formed terminal output.
        assert!(engine.discard_pending(doomed).unwrap() > 0);
        assert!(engine.last_error(doomed).unwrap().is_none());
        let recovered = engine.finish_session(doomed).unwrap();
        assert!(recovered.output.keyframes.is_empty());
        let output = engine.take_output(healthy).expect("healthy output");
        assert!(!output.output.keyframes.is_empty());
    }

    #[test]
    fn a_dead_session_stays_failed_after_discard() {
        // `finish` can consume a session and still fail (NoEvents): the slot
        // must stay terminal even after `discard_pending` clears the sticky
        // error — it can never be misread as Draining/Active again.
        let seq = sequence();
        let mut engine = ServeEngine::new(ServeConfig::new());
        let id = engine.admit(session_for(&seq));
        engine.close(id).unwrap();
        engine.pump();
        assert_eq!(engine.status(id).unwrap(), SessionStatus::Failed);
        assert!(matches!(
            engine.last_error(id).unwrap(),
            Some(EmvsError::NoEvents)
        ));
        engine.discard_pending(id).unwrap();
        assert!(engine.last_error(id).unwrap().is_none());
        assert_eq!(engine.status(id).unwrap(), SessionStatus::Failed);
        // The engine stays quiescent and consistent around the dead slot.
        engine.drain().unwrap();
        assert!(matches!(
            engine.finish_session(id),
            Err(ServeError::SessionClosed { .. })
        ));
        assert!(engine.take_output(id).is_none());
    }

    #[test]
    fn abort_kills_a_live_session_and_spares_finished_ones() {
        let seq = sequence();
        let mut engine = ServeEngine::new(ServeConfig::new().with_workers(2));
        let doomed = engine.admit(session_for(&seq));
        let healthy = engine.admit(session_for(&seq));
        let events = seq.events.as_slice();
        for &id in &[doomed, healthy] {
            engine.enqueue_trajectory(id, &seq.trajectory).unwrap();
            let mut offset = 0usize;
            while offset < events.len() {
                offset += engine.enqueue_events(id, &events[offset..]).unwrap();
                engine.pump();
            }
        }
        let reason = EmvsError::InvalidConfig {
            reason: "client went away".into(),
        };
        engine.abort(doomed, reason.clone()).unwrap();
        engine.abort(doomed, reason.clone()).unwrap(); // idempotent
        assert_eq!(engine.status(doomed).unwrap(), SessionStatus::Failed);
        let failures = engine
            .poll_serve()
            .iter()
            .filter(
                |e| matches!(e, ServeEvent::SessionFailed { session, .. } if *session == doomed),
            )
            .count();
        assert_eq!(failures, 1, "abort reports the failure exactly once");
        // The aborted slot never wedges the engine; the healthy session
        // still drains to its full, untruncated output.
        engine.close(healthy).unwrap();
        engine.drain().unwrap();
        let output = engine.take_output(healthy).expect("healthy output");
        assert_eq!(output.output.profile.events_processed, events.len() as u64);
        assert!(engine.take_output(doomed).is_none());
        // Aborting a finished session is a no-op: status and output survive.
        let finished = engine.admit(session_for(&seq));
        engine
            .enqueue_trajectory(finished, &seq.trajectory)
            .unwrap();
        let mut offset = 0usize;
        while offset < events.len() {
            offset += engine.enqueue_events(finished, &events[offset..]).unwrap();
            engine.pump();
        }
        let out = engine.finish_session(finished).unwrap();
        assert!(!out.output.keyframes.is_empty());
        engine.abort(finished, reason).unwrap();
        assert_eq!(engine.status(finished).unwrap(), SessionStatus::Finished);
    }

    #[test]
    fn shutdown_returns_every_terminal_result() {
        let seq = sequence();
        let mut engine = ServeEngine::new(ServeConfig::new().with_workers(3));
        let ids: Vec<SessionId> = (0..3).map(|_| engine.admit(session_for(&seq))).collect();
        let events = seq.events.as_slice();
        for &id in &ids {
            engine.enqueue_trajectory(id, &seq.trajectory).unwrap();
            let mut offset = 0usize;
            while offset < events.len() {
                offset += engine.enqueue_events(id, &events[offset..]).unwrap();
                engine.pump();
            }
        }
        let results = engine.shutdown();
        assert_eq!(results.len(), 3);
        for ((id, result), expected) in results.into_iter().zip(&ids) {
            assert_eq!(id, *expected);
            let output = result.expect("all sessions finish");
            assert!(!output.output.keyframes.is_empty());
            // The *whole* stream was served, not a truncated prefix.
            assert_eq!(output.output.profile.events_processed, events.len() as u64);
        }
    }

    #[test]
    fn checkpointed_session_resumes_to_the_identical_output() {
        let seq = sequence();
        let events = seq.events.as_slice();
        let mut engine = ServeEngine::new(ServeConfig::new().with_workers(2));
        let id = engine.admit(session_for(&seq));
        engine.enqueue_trajectory(id, &seq.trajectory).unwrap();

        // A checkpoint with queued input is refused: it would lose client
        // state.
        engine.enqueue_events(id, &events[..100]).unwrap();
        let err = engine.checkpoint_session(id, "origin").unwrap_err();
        assert!(matches!(
            err,
            ServeError::Session {
                source: EmvsError::Checkpoint { .. },
                ..
            }
        ));

        // Serve half the stream, drain the queue, checkpoint mid-flight.
        let cut = events.len() / 2;
        let mut offset = 100usize;
        while offset < cut {
            offset += engine.enqueue_events(id, &events[offset..cut]).unwrap();
            engine.pump();
        }
        while engine.session_metrics(id).unwrap().queue_depth > 0 {
            engine.pump();
        }
        let checkpoint = engine.checkpoint_session(id, "serve-test").unwrap();
        assert_eq!(checkpoint.origin(), "serve-test");
        assert_eq!(checkpoint.backend_kind(), "software");

        // Kill the original (client vanished), resume from the checkpoint,
        // serve the remainder: the terminal output must equal the
        // uninterrupted run bit for bit.
        engine
            .abort(
                id,
                EmvsError::InvalidConfig {
                    reason: "client went away".into(),
                },
            )
            .unwrap();
        let resumed = engine.resume_session(checkpoint).unwrap();
        let mut offset = cut;
        while offset < events.len() {
            offset += engine.enqueue_events(resumed, &events[offset..]).unwrap();
            engine.pump();
        }
        let output = engine.finish_session(resumed).unwrap();

        let mut reference = session_for(&seq);
        reference.push_trajectory(&seq.trajectory).unwrap();
        reference.push_events(events).unwrap();
        let expected = reference.finish().unwrap();
        assert_eq!(
            output.output.keyframes.len(),
            expected.output.keyframes.len()
        );
        for (got, want) in output
            .output
            .keyframes
            .iter()
            .zip(&expected.output.keyframes)
        {
            assert_eq!(got.depth_map.depth_data(), want.depth_map.depth_data());
            assert_eq!(got.votes_cast, want.votes_cast);
        }

        // Resuming an unknown backend kind is a typed resume error.
        let mut bad = session_for(&seq);
        bad.push_trajectory(&seq.trajectory).unwrap();
        bad.push_events(&events[..cut]).unwrap();
        bad.poll().unwrap();
        let ckpt = bad.snapshot("origin").unwrap();
        let bytes = ckpt.encode();
        // Patch the backend-kind string in the payload ("software" follows
        // the origin string).
        let mut patched = bytes.clone();
        let kind_at = 4 + "origin".len() + 4;
        patched[kind_at.."software".len() + kind_at].copy_from_slice(b"softwarX");
        let forged = SessionCheckpoint::decode(&patched).unwrap();
        assert!(matches!(
            engine.resume_session(forged),
            Err(ServeError::Resume {
                source: EmvsError::Checkpoint { .. }
            })
        ));
    }

    #[test]
    fn aggregate_metrics_sum_the_sessions() {
        let seq = sequence();
        let mut engine = ServeEngine::new(ServeConfig::new().with_workers(2));
        let a = engine.admit(session_for(&seq));
        let b = engine.admit(session_for(&seq));
        let events = seq.events.as_slice();
        for &id in &[a, b] {
            engine.enqueue_trajectory(id, &seq.trajectory).unwrap();
            let mut offset = 0usize;
            while offset < events.len() {
                offset += engine.enqueue_events(id, &events[offset..]).unwrap();
                engine.pump();
            }
            engine.close(id).unwrap();
        }
        engine.drain().unwrap();
        let m = engine.metrics();
        assert_eq!(m.sessions, 2);
        assert_eq!(m.finished, 2);
        assert_eq!((m.active, m.draining, m.failed), (0, 0, 0));
        assert_eq!(m.queue_depth, 0);
        assert_eq!(m.events_processed, 2 * seq.events.len() as u64);
        assert_eq!(
            m.events_processed,
            engine.session_metrics(a).unwrap().events_processed
                + engine.session_metrics(b).unwrap().events_processed
        );
        assert!(m.depth_maps > 0);
        assert!(m.pump_rounds > 0);
        assert!(m.wall_seconds > 0.0);
        assert!(m.events_per_second > 0.0);
        assert!(m.utilization > 0.0);
    }
}
