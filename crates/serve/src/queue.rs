//! The per-session bounded ingest queue: the buffer between a producer
//! (sensor feed, network decoder, replay file) and the session it feeds.
//!
//! The queue reuses the session layer's backpressure semantics
//! ([`EmvsError::Backpressure`], `write(2)`-style short writes) so a
//! producer written against `EventorSession::push_events` drives
//! `ServeEngine::enqueue_events` unchanged. Events are validated for time
//! order *at enqueue time* — a reordered packet is rejected before it can
//! poison the pump — and poses ride a separate unbounded lane (they are tiny
//! and always make progress).

use eventor_emvs::EmvsError;
use eventor_events::Event;
use eventor_geom::Pose;
use std::collections::VecDeque;

/// Bounded FIFO of not-yet-ingested input for one admitted session.
#[derive(Debug)]
pub(crate) struct IngestQueue {
    /// Pose samples waiting to be pushed into the session (unbounded: a pose
    /// is two orders of magnitude rarer and smaller than the events it
    /// covers).
    pub(crate) poses: VecDeque<(f64, Pose)>,
    /// Events waiting to be ingested, time-ordered across all enqueues.
    pub(crate) events: VecDeque<Event>,
    /// Capacity of the event lane, in events.
    capacity: usize,
    /// Timestamp of the newest enqueued event, for order validation.
    last_event_t: Option<f64>,
    /// Whether the producer declared end-of-stream ([`close`](Self::close)).
    closed: bool,
}

impl IngestQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            poses: VecDeque::new(),
            events: VecDeque::new(),
            capacity: capacity.max(1),
            last_event_t: None,
            closed: false,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn depth(&self) -> usize {
        self.events.len()
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed
    }

    /// Marks end-of-stream: no further events are accepted. Poses may still
    /// be enqueued — the trailing frames of a closed stream can legitimately
    /// wait on poses covering their mid-points.
    pub(crate) fn close(&mut self) {
        self.closed = true;
    }

    pub(crate) fn enqueue_pose(&mut self, timestamp: f64, pose: Pose) {
        self.poses.push_back((timestamp, pose));
    }

    /// Enqueues a time-ordered packet with short-write semantics: the
    /// accepted prefix is buffered and its length returned.
    ///
    /// # Errors
    ///
    /// * [`EmvsError::OutOfOrder`] when the packet is not time-ordered
    ///   against everything already enqueued (nothing is accepted),
    /// * [`EmvsError::Backpressure`] when the queue is full and **zero**
    ///   events could be accepted.
    pub(crate) fn enqueue_events(&mut self, events: &[Event]) -> Result<usize, EmvsError> {
        if events.is_empty() {
            return Ok(0);
        }
        // The session layer's exact whole-packet ordering rule, via the one
        // shared helper (`eventor_events::first_out_of_order`), so the two
        // ingestion layers cannot drift apart.
        if let Some(timestamp) = eventor_events::first_out_of_order(events, self.last_event_t) {
            return Err(EmvsError::OutOfOrder { timestamp });
        }
        let free = self.capacity - self.events.len().min(self.capacity);
        if free == 0 {
            return Err(EmvsError::Backpressure {
                pending: self.events.len(),
                capacity: self.capacity,
            });
        }
        let take = free.min(events.len());
        self.events.extend(events[..take].iter().copied());
        self.last_event_t = Some(events[take - 1].t);
        Ok(take)
    }

    /// Drops every queued event (not poses) and returns how many were
    /// discarded. The order watermark is kept, so later enqueues must still
    /// follow the discarded events in time.
    pub(crate) fn discard_events(&mut self) -> usize {
        let dropped = self.events.len();
        self.events.clear();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_events::Polarity;

    fn ev(t: f64) -> Event {
        Event::new(t, 1, 1, Polarity::Positive)
    }

    #[test]
    fn short_write_and_backpressure() {
        let mut q = IngestQueue::new(4);
        assert_eq!(q.enqueue_events(&[ev(0.0), ev(1.0)]).unwrap(), 2);
        // Only two of three fit: short write.
        assert_eq!(q.enqueue_events(&[ev(2.0), ev(3.0), ev(4.0)]).unwrap(), 2);
        assert_eq!(q.depth(), 4);
        // Full: zero acceptance is an error, not a silent drop.
        assert!(matches!(
            q.enqueue_events(&[ev(5.0)]),
            Err(EmvsError::Backpressure {
                pending: 4,
                capacity: 4
            })
        ));
    }

    #[test]
    fn out_of_order_is_rejected_whole() {
        let mut q = IngestQueue::new(8);
        q.enqueue_events(&[ev(1.0)]).unwrap();
        assert!(matches!(
            q.enqueue_events(&[ev(2.0), ev(0.5)]),
            Err(EmvsError::OutOfOrder { .. })
        ));
        assert_eq!(q.depth(), 1, "a rejected packet enqueues nothing");
        // Equal timestamps are allowed (sensor bursts).
        q.enqueue_events(&[ev(1.0)]).unwrap();
    }

    #[test]
    fn discard_keeps_the_order_watermark() {
        let mut q = IngestQueue::new(8);
        q.enqueue_events(&[ev(1.0), ev(2.0)]).unwrap();
        assert_eq!(q.discard_events(), 2);
        assert_eq!(q.depth(), 0);
        assert!(matches!(
            q.enqueue_events(&[ev(0.5)]),
            Err(EmvsError::OutOfOrder { .. })
        ));
        q.enqueue_events(&[ev(3.0)]).unwrap();
    }

    #[test]
    fn capacity_is_clamped_and_empty_pushes_are_free() {
        let mut q = IngestQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.enqueue_events(&[]).unwrap(), 0);
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
    }
}
