//! Event streams: time-ordered containers of events with slicing and
//! statistics.

use crate::event::Event;
use crate::EventError;

/// A time-ordered sequence of events.
///
/// The container enforces non-decreasing timestamps (events may share a
/// timestamp, as real sensors emit bursts with identical microsecond stamps).
///
/// # Examples
///
/// ```
/// use eventor_events::{Event, EventStream, Polarity};
/// let mut s = EventStream::new();
/// s.push(Event::new(0.0, 1, 2, Polarity::Positive))?;
/// s.push(Event::new(0.5, 3, 4, Polarity::Negative))?;
/// assert_eq!(s.len(), 2);
/// assert!((s.duration() - 0.5).abs() < 1e-12);
/// # Ok::<(), eventor_events::EventError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventStream {
    events: Vec<Event>,
}

impl EventStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty stream with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Builds a stream from a vector, validating the time ordering.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnsortedEvents`] if timestamps decrease anywhere.
    pub fn from_events(events: Vec<Event>) -> Result<Self, EventError> {
        for w in events.windows(2) {
            if w[1].t < w[0].t {
                return Err(EventError::UnsortedEvents { timestamp: w[1].t });
            }
        }
        Ok(Self { events })
    }

    /// Builds a stream from a vector, sorting it by timestamp first.
    pub fn from_unsorted(mut events: Vec<Event>) -> Self {
        events.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("event timestamps are not NaN"));
        Self { events }
    }

    /// Appends an event.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::UnsortedEvents`] if its timestamp precedes the
    /// last stored event.
    pub fn push(&mut self, event: Event) -> Result<(), EventError> {
        if let Some(last) = self.events.last() {
            if event.t < last.t {
                return Err(EventError::UnsortedEvents { timestamp: event.t });
            }
        }
        self.events.push(event);
        Ok(())
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events as a slice.
    pub fn as_slice(&self) -> &[Event] {
        &self.events
    }

    /// Iterator over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Timestamp of the first event.
    pub fn start_time(&self) -> Option<f64> {
        self.events.first().map(|e| e.t)
    }

    /// Timestamp of the last event.
    pub fn end_time(&self) -> Option<f64> {
        self.events.last().map(|e| e.t)
    }

    /// Time between first and last event, in seconds.
    pub fn duration(&self) -> f64 {
        match (self.start_time(), self.end_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Mean event rate in events per second (zero for degenerate spans).
    pub fn event_rate(&self) -> f64 {
        let d = self.duration();
        if d <= 0.0 {
            0.0
        } else {
            self.len() as f64 / d
        }
    }

    /// Iterator over contiguous packets of at most `packet_events` events —
    /// the natural feed unit for the streaming session API
    /// (`push_events(packet)` per yielded slice reproduces the batch result
    /// exactly, for any packet size).
    ///
    /// # Panics
    ///
    /// Panics if `packet_events` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use eventor_events::{Event, EventStream, Polarity};
    /// let s: EventStream = (0..10)
    ///     .map(|i| Event::new(i as f64, 0, 0, Polarity::Positive))
    ///     .collect();
    /// let packets: Vec<_> = s.packets(4).collect();
    /// assert_eq!(packets.len(), 3);
    /// assert_eq!(packets[2].len(), 2);
    /// ```
    pub fn packets(&self, packet_events: usize) -> std::slice::Chunks<'_, Event> {
        assert!(packet_events > 0, "packet_events must be positive");
        self.events.chunks(packet_events)
    }

    /// Events with `t_begin <= t < t_end` as a sub-slice (binary search on the
    /// sorted timestamps).
    pub fn slice_time(&self, t_begin: f64, t_end: f64) -> &[Event] {
        let lo = self.events.partition_point(|e| e.t < t_begin);
        let hi = self.events.partition_point(|e| e.t < t_end);
        &self.events[lo..hi]
    }

    /// Fraction of events with positive polarity.
    pub fn positive_fraction(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let pos = self
            .events
            .iter()
            .filter(|e| e.polarity == crate::Polarity::Positive)
            .count();
        pos as f64 / self.events.len() as f64
    }

    /// Consumes the stream and returns the underlying vector.
    pub fn into_inner(self) -> Vec<Event> {
        self.events
    }
}

impl<'a> IntoIterator for &'a EventStream {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for EventStream {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl Extend<Event> for EventStream {
    /// Extends the stream; the caller is responsible for keeping the global
    /// ordering (use [`EventStream::from_unsorted`] when unsure).
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl FromIterator<Event> for EventStream {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polarity;

    fn ev(t: f64) -> Event {
        Event::new(t, 0, 0, Polarity::Positive)
    }

    #[test]
    fn ordering_enforced_on_push_and_from_events() {
        let mut s = EventStream::new();
        s.push(ev(1.0)).unwrap();
        assert!(s.push(ev(0.5)).is_err());
        assert!(s.push(ev(1.0)).is_ok(), "equal timestamps are allowed");

        assert!(EventStream::from_events(vec![ev(1.0), ev(0.0)]).is_err());
        assert!(EventStream::from_events(vec![ev(0.0), ev(1.0)]).is_ok());
    }

    #[test]
    fn from_unsorted_sorts() {
        let s = EventStream::from_unsorted(vec![ev(2.0), ev(0.0), ev(1.0)]);
        let ts: Vec<f64> = s.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn duration_and_rate() {
        let s = EventStream::from_events((0..101).map(|i| ev(i as f64 * 0.01)).collect()).unwrap();
        assert!((s.duration() - 1.0).abs() < 1e-12);
        assert!((s.event_rate() - 101.0).abs() < 1e-9);
        assert_eq!(EventStream::new().event_rate(), 0.0);
    }

    #[test]
    fn slice_time_half_open() {
        let s = EventStream::from_events((0..10).map(|i| ev(i as f64)).collect()).unwrap();
        let sl = s.slice_time(2.0, 5.0);
        assert_eq!(sl.len(), 3);
        assert_eq!(sl[0].t, 2.0);
        assert_eq!(sl[2].t, 4.0);
        assert!(s.slice_time(100.0, 200.0).is_empty());
    }

    #[test]
    fn packets_tile_the_stream_exactly() {
        let s = EventStream::from_events((0..10).map(|i| ev(i as f64)).collect()).unwrap();
        let total: usize = s.packets(3).map(<[Event]>::len).sum();
        assert_eq!(total, 10);
        assert_eq!(s.packets(3).count(), 4);
        assert_eq!(s.packets(100).count(), 1);
        assert_eq!(EventStream::new().packets(4).count(), 0);
    }

    #[test]
    fn polarity_fraction() {
        let mut v = vec![Event::new(0.0, 0, 0, Polarity::Positive); 3];
        v.push(Event::new(0.0, 0, 0, Polarity::Negative));
        let s = EventStream::from_events(v).unwrap();
        assert!((s.positive_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(EventStream::new().positive_fraction(), 0.0);
    }

    #[test]
    fn collect_from_iterator() {
        let s: EventStream = vec![ev(3.0), ev(1.0)].into_iter().collect();
        assert_eq!(s.start_time(), Some(1.0));
        assert_eq!(s.into_inner().len(), 2);
    }
}
