//! Sensor-noise injection for robustness studies.
//!
//! Real DVS/DAVIS sensors corrupt the ideal event stream in several ways the
//! contrast-threshold simulator does not capture on its own: uniform
//! background-activity noise, permanently firing *hot pixels*, per-event
//! timestamp jitter from the arbiter, and event loss under bus saturation.
//! [`NoiseInjector`] applies these effects to an existing stream so the EMVS
//! pipelines can be evaluated under controlled degradation (the
//! `noise_robustness` example sweeps them).

use crate::event::{Event, Polarity};
use crate::stream::EventStream;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the noise injector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Background-activity rate per pixel, events per second. Noise events
    /// are spread uniformly over the sensor and the stream's time span.
    pub background_activity_rate: f64,
    /// Fraction of pixels that behave as hot pixels (fire continuously).
    pub hot_pixel_fraction: f64,
    /// Firing rate of each hot pixel, events per second.
    pub hot_pixel_rate: f64,
    /// Standard deviation of zero-mean Gaussian timestamp jitter, seconds.
    pub timestamp_jitter_std: f64,
    /// Probability that any individual signal event is dropped.
    pub drop_probability: f64,
    /// RNG seed so degradations are reproducible.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            background_activity_rate: 0.1,
            hot_pixel_fraction: 0.0,
            hot_pixel_rate: 0.0,
            timestamp_jitter_std: 0.0,
            drop_probability: 0.0,
            seed: 0x5EED,
        }
    }
}

impl NoiseConfig {
    /// No degradation at all (useful as a sweep baseline).
    pub fn clean() -> Self {
        Self {
            background_activity_rate: 0.0,
            hot_pixel_fraction: 0.0,
            hot_pixel_rate: 0.0,
            timestamp_jitter_std: 0.0,
            drop_probability: 0.0,
            seed: 0x5EED,
        }
    }

    /// A moderate degradation typical of indoor DAVIS recordings.
    pub fn moderate() -> Self {
        Self {
            background_activity_rate: 0.5,
            hot_pixel_fraction: 0.0005,
            hot_pixel_rate: 200.0,
            timestamp_jitter_std: 50e-6,
            drop_probability: 0.01,
            seed: 0x5EED,
        }
    }

    /// A severe degradation (hot sensor, saturated bus).
    pub fn severe() -> Self {
        Self {
            background_activity_rate: 2.0,
            hot_pixel_fraction: 0.002,
            hot_pixel_rate: 1000.0,
            timestamp_jitter_std: 200e-6,
            drop_probability: 0.05,
            seed: 0x5EED,
        }
    }
}

/// What the injector did to a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoiseReport {
    /// Signal events kept.
    pub signal_events: usize,
    /// Signal events dropped.
    pub dropped_events: usize,
    /// Background-activity events added.
    pub background_events: usize,
    /// Hot-pixel events added.
    pub hot_pixel_events: usize,
    /// Number of pixels designated as hot.
    pub hot_pixels: usize,
}

impl NoiseReport {
    /// Total events in the corrupted stream.
    pub fn total_events(&self) -> usize {
        self.signal_events + self.background_events + self.hot_pixel_events
    }
}

/// Applies sensor degradations to an event stream.
///
/// # Examples
///
/// ```
/// use eventor_events::{Event, EventStream, NoiseConfig, NoiseInjector, Polarity};
/// let clean: EventStream = (0..1000)
///     .map(|i| Event::new(i as f64 * 1e-4, (i % 240) as u16, (i % 180) as u16, Polarity::Positive))
///     .collect();
/// let injector = NoiseInjector::new(240, 180, NoiseConfig::moderate());
/// let (noisy, report) = injector.corrupt(&clean);
/// assert!(noisy.len() >= report.signal_events);
/// assert_eq!(report.signal_events + report.dropped_events, 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseInjector {
    width: u16,
    height: u16,
    config: NoiseConfig,
}

impl NoiseInjector {
    /// Creates an injector for a sensor of the given resolution.
    ///
    /// # Panics
    ///
    /// Panics if the sensor resolution is zero in either dimension.
    pub fn new(width: u16, height: u16, config: NoiseConfig) -> Self {
        assert!(
            width > 0 && height > 0,
            "sensor resolution must be non-zero"
        );
        Self {
            width,
            height,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Produces a degraded copy of `stream` together with a report of the
    /// degradations applied.
    ///
    /// The output stream is re-sorted by timestamp (jitter and injected noise
    /// interleave with the signal), so it remains a valid [`EventStream`].
    pub fn corrupt(&self, stream: &EventStream) -> (EventStream, NoiseReport) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut report = NoiseReport::default();
        let (t0, t1) = match (stream.start_time(), stream.end_time()) {
            (Some(a), Some(b)) if b > a => (a, b),
            _ => (0.0, stream.duration().max(1e-3)),
        };
        let span = (t1 - t0).max(1e-9);
        let mut events: Vec<Event> = Vec::with_capacity(stream.len());

        // Signal path: drops and timestamp jitter.
        for &e in stream.iter() {
            if self.config.drop_probability > 0.0 && rng.gen::<f64>() < self.config.drop_probability
            {
                report.dropped_events += 1;
                continue;
            }
            let mut out = e;
            if self.config.timestamp_jitter_std > 0.0 {
                out.t = (e.t + self.gaussian(&mut rng) * self.config.timestamp_jitter_std)
                    .clamp(t0, t1);
            }
            report.signal_events += 1;
            events.push(out);
        }

        // Background activity: uniform in space and time.
        if self.config.background_activity_rate > 0.0 {
            let pixels = self.width as f64 * self.height as f64;
            let expected = self.config.background_activity_rate * pixels * span;
            let count = Self::sample_count(expected, &mut rng);
            for _ in 0..count {
                events.push(Event::new(
                    t0 + rng.gen::<f64>() * span,
                    rng.gen_range(0..self.width),
                    rng.gen_range(0..self.height),
                    if rng.gen::<bool>() {
                        Polarity::Positive
                    } else {
                        Polarity::Negative
                    },
                ));
            }
            report.background_events = count;
        }

        // Hot pixels: a fixed random subset firing at a high, regular rate.
        if self.config.hot_pixel_fraction > 0.0 && self.config.hot_pixel_rate > 0.0 {
            let pixels = self.width as u32 * self.height as u32;
            let hot = ((pixels as f64 * self.config.hot_pixel_fraction).round() as usize).max(1);
            report.hot_pixels = hot;
            for _ in 0..hot {
                let x = rng.gen_range(0..self.width);
                let y = rng.gen_range(0..self.height);
                let period = 1.0 / self.config.hot_pixel_rate;
                let mut t = t0 + rng.gen::<f64>() * period;
                while t < t1 {
                    events.push(Event::new(t, x, y, Polarity::Positive));
                    report.hot_pixel_events += 1;
                    t += period;
                }
            }
        }

        (EventStream::from_unsorted(events), report)
    }

    /// Poisson-ish count: for the large expectations used here a rounded
    /// Gaussian approximation is adequate and avoids an extra dependency.
    fn sample_count(expected: f64, rng: &mut StdRng) -> usize {
        if expected <= 0.0 {
            return 0;
        }
        let std = expected.sqrt();
        let x = expected + std * Self::gaussian_static(rng);
        x.round().max(0.0) as usize
    }

    fn gaussian(&self, rng: &mut StdRng) -> f64 {
        Self::gaussian_static(rng)
    }

    /// Box–Muller transform.
    fn gaussian_static(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> EventStream {
        (0..n)
            .map(|i| {
                Event::new(
                    i as f64 * 1e-4,
                    (i % 240) as u16,
                    (i % 180) as u16,
                    Polarity::Positive,
                )
            })
            .collect()
    }

    #[test]
    fn clean_config_is_a_no_op() {
        let stream = signal(500);
        let injector = NoiseInjector::new(240, 180, NoiseConfig::clean());
        let (out, report) = injector.corrupt(&stream);
        assert_eq!(out.len(), 500);
        assert_eq!(report.signal_events, 500);
        assert_eq!(report.total_events(), 500);
        assert_eq!(report.dropped_events, 0);
        assert_eq!(out.as_slice(), stream.as_slice());
    }

    #[test]
    fn background_activity_adds_events_in_span() {
        let stream = signal(1000);
        let config = NoiseConfig {
            background_activity_rate: 1.0,
            ..NoiseConfig::clean()
        };
        let injector = NoiseInjector::new(240, 180, config);
        let (out, report) = injector.corrupt(&stream);
        assert!(report.background_events > 0);
        assert_eq!(out.len(), report.total_events());
        // Expected count: rate * pixels * span = 1.0 * 43200 * ~0.1 s ≈ 4300.
        assert!(report.background_events > 2000 && report.background_events < 7000);
        let t0 = stream.start_time().unwrap();
        let t1 = stream.end_time().unwrap();
        assert!(out.iter().all(|e| e.t >= t0 - 1e-9 && e.t <= t1 + 1e-9));
    }

    #[test]
    fn hot_pixels_fire_regularly() {
        let stream = signal(1000);
        let config = NoiseConfig {
            hot_pixel_fraction: 0.001,
            hot_pixel_rate: 1000.0,
            ..NoiseConfig::clean()
        };
        let injector = NoiseInjector::new(240, 180, config);
        let (_, report) = injector.corrupt(&stream);
        assert_eq!(report.hot_pixels, 43);
        // Each hot pixel fires ~1000 Hz over a ~0.1 s span.
        let per_pixel = report.hot_pixel_events as f64 / report.hot_pixels as f64;
        assert!(
            per_pixel > 50.0 && per_pixel < 150.0,
            "per-pixel {per_pixel}"
        );
    }

    #[test]
    fn drops_remove_a_matching_fraction() {
        let stream = signal(10_000);
        let config = NoiseConfig {
            drop_probability: 0.2,
            ..NoiseConfig::clean()
        };
        let injector = NoiseInjector::new(240, 180, config);
        let (_, report) = injector.corrupt(&stream);
        let fraction = report.dropped_events as f64 / 10_000.0;
        assert!((fraction - 0.2).abs() < 0.03, "dropped fraction {fraction}");
    }

    #[test]
    fn jitter_keeps_the_stream_sorted_and_in_span() {
        let stream = signal(2000);
        let config = NoiseConfig {
            timestamp_jitter_std: 1e-3,
            ..NoiseConfig::clean()
        };
        let injector = NoiseInjector::new(240, 180, config);
        let (out, _) = injector.corrupt(&stream);
        let slice = out.as_slice();
        assert!(slice.windows(2).all(|w| w[0].t <= w[1].t));
        let t0 = stream.start_time().unwrap();
        let t1 = stream.end_time().unwrap();
        assert!(slice.iter().all(|e| e.t >= t0 && e.t <= t1));
    }

    #[test]
    fn corruption_is_reproducible_for_a_fixed_seed() {
        let stream = signal(3000);
        let injector = NoiseInjector::new(240, 180, NoiseConfig::moderate());
        let (a, ra) = injector.corrupt(&stream);
        let (b, rb) = injector.corrupt(&stream);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(ra, rb);
        assert_eq!(injector.config(), &NoiseConfig::moderate());
    }

    #[test]
    fn preset_severities_are_ordered() {
        let stream = signal(5000);
        let results: Vec<usize> = [
            NoiseConfig::clean(),
            NoiseConfig::moderate(),
            NoiseConfig::severe(),
        ]
        .into_iter()
        .map(|c| {
            NoiseInjector::new(240, 180, c)
                .corrupt(&stream)
                .1
                .total_events()
        })
        .collect();
        assert!(results[0] <= results[1]);
        assert!(results[1] < results[2]);
    }

    #[test]
    fn empty_stream_only_gains_noise() {
        let injector = NoiseInjector::new(240, 180, NoiseConfig::moderate());
        let (out, report) = injector.corrupt(&EventStream::new());
        assert_eq!(report.signal_events, 0);
        assert_eq!(out.len(), report.total_events());
    }

    #[test]
    #[should_panic]
    fn zero_resolution_panics() {
        let _ = NoiseInjector::new(0, 180, NoiseConfig::clean());
    }
}
