//! Plain-text I/O for event streams and camera trajectories, compatible with
//! the format used by the event-camera dataset the paper evaluates on
//! (Mueggler et al., IJRR 2017):
//!
//! * `events.txt` — one event per line: `timestamp x y polarity`,
//! * `groundtruth.txt` / `poses.txt` — one pose per line:
//!   `timestamp tx ty tz qx qy qz qw`.
//!
//! With these readers the pipeline can consume *real* recordings in addition
//! to the built-in synthetic sequences; the writers make the synthetic
//! sequences exportable for use by other EMVS implementations.

use crate::event::{Event, Polarity};
use crate::stream::EventStream;
use crate::EventError;
use eventor_geom::{Pose, Trajectory, UnitQuaternion, Vec3};
use std::io::{BufRead, BufReader, Read, Write};

/// Writes an event stream in the dataset text format (`t x y p`, one event
/// per line, polarity encoded as 0/1).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_events<W: Write>(stream: &EventStream, mut writer: W) -> std::io::Result<()> {
    for e in stream {
        let p = match e.polarity {
            Polarity::Positive => 1,
            Polarity::Negative => 0,
        };
        writeln!(writer, "{:.9} {} {} {}", e.t, e.x, e.y, p)?;
    }
    Ok(())
}

/// Reads an event stream from the dataset text format.
///
/// Blank lines and lines starting with `#` are ignored. Events are sorted by
/// timestamp if the file is (slightly) out of order, matching the tolerance
/// of the dataset tools.
///
/// # Errors
///
/// Returns [`EventError::InvalidSimulation`] describing the offending line on
/// parse failures, and propagates I/O errors as
/// [`EventError::InvalidSimulation`] as well (the reader is line-oriented).
pub fn read_events<R: Read>(reader: R) -> Result<EventStream, EventError> {
    let mut events = Vec::new();
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| EventError::InvalidSimulation {
            reason: format!("i/o error reading events at line {}: {e}", line_no + 1),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = |what: &str| EventError::InvalidSimulation {
            reason: format!(
                "line {}: missing or invalid {what}: `{trimmed}`",
                line_no + 1
            ),
        };
        let t: f64 = parts
            .next()
            .ok_or_else(|| parse_err("timestamp"))?
            .parse()
            .map_err(|_| parse_err("timestamp"))?;
        let x: u16 = parts
            .next()
            .ok_or_else(|| parse_err("x"))?
            .parse()
            .map_err(|_| parse_err("x"))?;
        let y: u16 = parts
            .next()
            .ok_or_else(|| parse_err("y"))?
            .parse()
            .map_err(|_| parse_err("y"))?;
        let p: i32 = parts
            .next()
            .ok_or_else(|| parse_err("polarity"))?
            .parse()
            .map_err(|_| parse_err("polarity"))?;
        let polarity = if p > 0 {
            Polarity::Positive
        } else {
            Polarity::Negative
        };
        events.push(Event::new(t, x, y, polarity));
    }
    Ok(EventStream::from_unsorted(events))
}

/// Writes a trajectory in the dataset text format
/// (`t tx ty tz qx qy qz qw`, one pose per line).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trajectory<W: Write>(trajectory: &Trajectory, mut writer: W) -> std::io::Result<()> {
    for sample in trajectory {
        let t = sample.pose.translation;
        let q = sample.pose.rotation;
        writeln!(
            writer,
            "{:.9} {:.9} {:.9} {:.9} {:.9} {:.9} {:.9} {:.9}",
            sample.timestamp, t.x, t.y, t.z, q.x, q.y, q.z, q.w
        )?;
    }
    Ok(())
}

/// Reads a trajectory from the dataset text format.
///
/// # Errors
///
/// Returns [`EventError::InvalidSimulation`] describing the offending line on
/// parse failures or when the resulting timestamps are not strictly
/// increasing.
pub fn read_trajectory<R: Read>(reader: R) -> Result<Trajectory, EventError> {
    let mut samples = Vec::new();
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| EventError::InvalidSimulation {
            reason: format!("i/o error reading trajectory at line {}: {e}", line_no + 1),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let values: Result<Vec<f64>, _> = trimmed.split_whitespace().map(str::parse).collect();
        let values = values.map_err(|_| EventError::InvalidSimulation {
            reason: format!("line {}: invalid number in `{trimmed}`", line_no + 1),
        })?;
        if values.len() != 8 {
            return Err(EventError::InvalidSimulation {
                reason: format!(
                    "line {}: expected 8 values (t tx ty tz qx qy qz qw), found {}",
                    line_no + 1,
                    values.len()
                ),
            });
        }
        let translation = Vec3::new(values[1], values[2], values[3]);
        let rotation = UnitQuaternion::new(values[7], values[4], values[5], values[6]);
        samples.push((values[0], Pose::new(rotation, translation)));
    }
    Trajectory::from_samples(samples).map_err(|e| EventError::InvalidSimulation {
        reason: format!("trajectory file is not strictly time-ordered: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trip_through_text() {
        let stream: EventStream = vec![
            Event::new(0.001, 10, 20, Polarity::Positive),
            Event::new(0.002, 239, 179, Polarity::Negative),
            Event::new(0.0025, 0, 0, Polarity::Positive),
        ]
        .into_iter()
        .collect();
        let mut buf = Vec::new();
        write_events(&stream, &mut buf).unwrap();
        let back = read_events(buf.as_slice()).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn event_reader_skips_comments_and_blank_lines() {
        let text = "# a comment\n\n0.5 1 2 1\n0.6 3 4 0\n";
        let stream = read_events(text.as_bytes()).unwrap();
        assert_eq!(stream.len(), 2);
        assert_eq!(stream.as_slice()[1].polarity, Polarity::Negative);
    }

    #[test]
    fn event_reader_reports_malformed_lines() {
        assert!(read_events("0.5 1 2".as_bytes()).is_err());
        assert!(read_events("abc 1 2 1".as_bytes()).is_err());
        assert!(read_events("0.5 -1 2 1".as_bytes()).is_err());
    }

    #[test]
    fn event_reader_sorts_slightly_unordered_input() {
        let text = "0.2 0 0 1\n0.1 0 0 1\n";
        let stream = read_events(text.as_bytes()).unwrap();
        assert_eq!(stream.start_time(), Some(0.1));
    }

    #[test]
    fn trajectory_round_trip_through_text() {
        let traj = Trajectory::linear(
            Pose::identity(),
            Pose::new(
                UnitQuaternion::from_euler(0.1, 0.2, 0.3),
                Vec3::new(0.5, -0.2, 0.1),
            ),
            0.0,
            2.0,
            9,
        );
        let mut buf = Vec::new();
        write_trajectory(&traj, &mut buf).unwrap();
        let back = read_trajectory(buf.as_slice()).unwrap();
        assert_eq!(back.len(), traj.len());
        for (a, b) in traj.iter().zip(back.iter()) {
            assert!((a.timestamp - b.timestamp).abs() < 1e-9);
            assert!(a.pose.translation_distance(&b.pose) < 1e-8);
            assert!(a.pose.rotation_distance(&b.pose) < 1e-7);
        }
    }

    #[test]
    fn trajectory_reader_validates_format() {
        assert!(read_trajectory("0.0 1 2 3 0 0 0".as_bytes()).is_err());
        assert!(read_trajectory("0.0 1 2 3 0 0 0 x".as_bytes()).is_err());
        // Duplicate timestamps are rejected.
        let text = "0.0 0 0 0 0 0 0 1\n0.0 1 0 0 0 0 0 1\n";
        assert!(read_trajectory(text.as_bytes()).is_err());
    }
}
