//! Event aggregation (`𝒜` in the paper): splitting the event stream into
//! fixed-size *event frames* that are processed together.
//!
//! The paper uses frames of 1024 events, "determined according to the
//! sensor's event rate and storage" — that constant is
//! [`DEFAULT_EVENTS_PER_FRAME`].

use crate::event::Event;
use crate::stream::EventStream;

/// Number of events per frame used throughout the paper's evaluation.
pub const DEFAULT_EVENTS_PER_FRAME: usize = 1024;

/// Default number of events per *vote packet*, the unit of work the parallel
/// voting engine distributes across worker shards. Small enough to balance
/// load across shards within a single 1024-event frame, large enough to
/// amortize per-packet dispatch.
pub const DEFAULT_PACKET_EVENTS: usize = 256;

/// A contiguous sub-range of one event frame, addressed in *stream-global*
/// event indices — the unit of work the parallel voting engine assigns to a
/// worker shard.
///
/// Packets never straddle frame boundaries, because all events of a frame
/// share one back-projection geometry (`H_{Z0}`, `φ`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VotePacket {
    /// Index of the frame (within the enclosing work set) this packet belongs
    /// to.
    pub frame: usize,
    /// Global event-index range `[start, end)` into the corrected/transported
    /// event arrays.
    pub range: std::ops::Range<usize>,
}

impl VotePacket {
    /// Number of events in the packet.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// Splits the event range of one frame into packets of at most
/// `packet_events` events, appending them to `out`.
///
/// The packets tile `range` exactly, in order, so processing the packets of a
/// frame back-to-back visits the same events in the same order as processing
/// the frame whole — the property the parallel engine's bit-identity argument
/// rests on.
///
/// # Panics
///
/// Panics if `packet_events` is zero.
///
/// # Examples
///
/// ```
/// use eventor_events::{packetize_frame, VotePacket};
/// let mut packets = Vec::new();
/// packetize_frame(3, 1000..1600, 256, &mut packets);
/// assert_eq!(packets.len(), 3);
/// assert_eq!(packets[0], VotePacket { frame: 3, range: 1000..1256 });
/// assert_eq!(packets[2], VotePacket { frame: 3, range: 1512..1600 });
/// ```
pub fn packetize_frame(
    frame: usize,
    range: std::ops::Range<usize>,
    packet_events: usize,
    out: &mut Vec<VotePacket>,
) {
    assert!(packet_events > 0, "packet_events must be positive");
    let mut start = range.start;
    while start < range.end {
        let end = (start + packet_events).min(range.end);
        out.push(VotePacket {
            frame,
            range: start..end,
        });
        start = end;
    }
}

/// A packet of events processed as one unit by the back-projection stages.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventFrame {
    /// The events of the frame, in time order.
    pub events: Vec<Event>,
    /// Sequential frame index within the stream.
    pub index: usize,
}

impl EventFrame {
    /// Number of events in the frame.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the frame has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the first event.
    pub fn start_time(&self) -> Option<f64> {
        self.events.first().map(|e| e.t)
    }

    /// Timestamp of the last event.
    pub fn end_time(&self) -> Option<f64> {
        self.events.last().map(|e| e.t)
    }

    /// Representative timestamp of the frame (mid-point between first and last
    /// event) used to look up the camera pose for the whole frame.
    ///
    /// Using one pose per frame is the approximation the accelerator relies on
    /// (the homography and φ are computed once per frame).
    pub fn timestamp(&self) -> Option<f64> {
        match (self.start_time(), self.end_time()) {
            (Some(a), Some(b)) => Some(0.5 * (a + b)),
            _ => None,
        }
    }
}

/// Splits an event stream into frames of a fixed number of events.
///
/// The trailing partial frame (fewer than `events_per_frame` events) is kept:
/// discarding it would bias the accuracy evaluation on short sequences.
///
/// # Panics
///
/// Panics if `events_per_frame` is zero.
///
/// # Examples
///
/// ```
/// use eventor_events::{aggregate, Event, EventStream, Polarity};
/// let stream: EventStream = (0..2500)
///     .map(|i| Event::new(i as f64 * 1e-4, 0, 0, Polarity::Positive))
///     .collect();
/// let frames = aggregate(&stream, 1024);
/// assert_eq!(frames.len(), 3);
/// assert_eq!(frames[0].len(), 1024);
/// assert_eq!(frames[2].len(), 2500 - 2048);
/// ```
pub fn aggregate(stream: &EventStream, events_per_frame: usize) -> Vec<EventFrame> {
    assert!(events_per_frame > 0, "events_per_frame must be positive");
    stream
        .as_slice()
        .chunks(events_per_frame)
        .enumerate()
        .map(|(index, chunk)| EventFrame {
            events: chunk.to_vec(),
            index,
        })
        .collect()
}

/// An iterator adapter that yields event frames lazily from a stream slice.
///
/// Useful for the streaming accelerator model, which consumes frames one at a
/// time through the DMA model rather than materialising all of them.
#[derive(Debug, Clone)]
pub struct FrameIter<'a> {
    remaining: &'a [Event],
    events_per_frame: usize,
    next_index: usize,
}

impl<'a> FrameIter<'a> {
    /// Creates a new frame iterator over `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `events_per_frame` is zero.
    pub fn new(stream: &'a EventStream, events_per_frame: usize) -> Self {
        assert!(events_per_frame > 0, "events_per_frame must be positive");
        Self {
            remaining: stream.as_slice(),
            events_per_frame,
            next_index: 0,
        }
    }
}

impl Iterator for FrameIter<'_> {
    type Item = EventFrame;

    fn next(&mut self) -> Option<EventFrame> {
        if self.remaining.is_empty() {
            return None;
        }
        let n = self.events_per_frame.min(self.remaining.len());
        let (head, tail) = self.remaining.split_at(n);
        self.remaining = tail;
        let frame = EventFrame {
            events: head.to_vec(),
            index: self.next_index,
        };
        self.next_index += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.len().div_ceil(self.events_per_frame);
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polarity;

    fn stream(n: usize) -> EventStream {
        (0..n)
            .map(|i| {
                Event::new(
                    i as f64 * 1e-3,
                    (i % 240) as u16,
                    (i % 180) as u16,
                    Polarity::Positive,
                )
            })
            .collect()
    }

    #[test]
    fn aggregation_preserves_all_events_in_order() {
        let s = stream(3000);
        let frames = aggregate(&s, DEFAULT_EVENTS_PER_FRAME);
        assert_eq!(frames.len(), 3);
        let total: usize = frames.iter().map(|f| f.len()).sum();
        assert_eq!(total, 3000);
        assert_eq!(frames[0].index, 0);
        assert_eq!(frames[2].index, 2);
        assert_eq!(frames[2].len(), 3000 - 2048);
        // Frame boundaries keep global time order.
        assert!(frames[0].end_time().unwrap() <= frames[1].start_time().unwrap());
    }

    #[test]
    fn empty_stream_gives_no_frames() {
        let frames = aggregate(&EventStream::new(), 1024);
        assert!(frames.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_frame_size_panics() {
        let _ = aggregate(&EventStream::new(), 0);
    }

    #[test]
    fn frame_timestamp_is_midpoint() {
        let s = stream(11);
        let frames = aggregate(&s, 11);
        let f = &frames[0];
        let mid = 0.5 * (f.start_time().unwrap() + f.end_time().unwrap());
        assert!((f.timestamp().unwrap() - mid).abs() < 1e-15);
        assert!(EventFrame::default().timestamp().is_none());
    }

    #[test]
    fn packets_tile_the_frame_exactly() {
        let mut packets = Vec::new();
        packetize_frame(0, 0..1024, 256, &mut packets);
        packetize_frame(1, 1024..1100, 256, &mut packets);
        assert_eq!(packets.len(), 5);
        // Contiguous, in order, no gaps or overlaps.
        let mut cursor = 0;
        for p in &packets {
            assert_eq!(p.range.start, cursor);
            assert!(p.len() <= 256);
            assert!(!p.is_empty());
            cursor = p.range.end;
        }
        assert_eq!(cursor, 1100);
        assert_eq!(packets[4].frame, 1);
    }

    #[test]
    fn empty_range_produces_no_packets() {
        let mut packets = Vec::new();
        packetize_frame(0, 5..5, 128, &mut packets);
        assert!(packets.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_packet_size_panics() {
        let mut packets = Vec::new();
        packetize_frame(0, 0..10, 0, &mut packets);
    }

    #[test]
    fn frame_iter_matches_aggregate() {
        let s = stream(2500);
        let eager = aggregate(&s, 1000);
        let lazy: Vec<EventFrame> = FrameIter::new(&s, 1000).collect();
        assert_eq!(eager, lazy);
        assert_eq!(FrameIter::new(&s, 1000).size_hint(), (3, Some(3)));
    }
}
