//! Synthetic 3-D scenes: textured planar patches that stand in for the
//! environments of the DAVIS dataset sequences (planes, walls, slider
//! targets).

use eventor_geom::Vec3;

/// A procedural texture mapped onto a planar patch.
///
/// The simulator needs textures with spatial intensity gradients at several
/// scales: event cameras only fire where the projected intensity changes as
/// the camera moves, so a flat texture would generate no events.
#[derive(Debug, Clone, PartialEq)]
pub enum Texture {
    /// Constant intensity (useful in tests; generates no events).
    Uniform {
        /// The constant intensity value in `[0, 1]`.
        value: f64,
    },
    /// A black/white checkerboard with the given period in metres.
    Checkerboard {
        /// Edge length of one square, in metres.
        period: f64,
    },
    /// A smooth multi-scale pattern: a sum of sinusoids at several spatial
    /// frequencies. Deterministic and differentiable, so interpolated event
    /// timestamps are well behaved.
    MultiScaleSine {
        /// Base spatial frequency in cycles per metre.
        base_frequency: f64,
        /// Number of octaves (each doubles the frequency and halves the
        /// amplitude).
        octaves: u32,
        /// Phase offset to decorrelate patches that share a frequency.
        phase: f64,
    },
    /// Random blobs laid on a jittered grid (value-noise like), seeded and
    /// deterministic.
    Blobs {
        /// Average blob spacing in metres.
        spacing: f64,
        /// Blob radius as a fraction of the spacing.
        radius_fraction: f64,
        /// Seed for the deterministic hash.
        seed: u64,
    },
}

/// Deterministic 2-D integer hash to `[0, 1)` (splitmix-style), used by the
/// procedural textures.
fn hash2(ix: i64, iy: i64, seed: u64) -> f64 {
    let mut z = (ix as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((iy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl Texture {
    /// Samples the texture intensity at in-plane coordinates `(u, v)` metres.
    ///
    /// The result is clamped to `[0, 1]`.
    pub fn sample(&self, u: f64, v: f64) -> f64 {
        match self {
            Self::Uniform { value } => value.clamp(0.0, 1.0),
            Self::Checkerboard { period } => {
                let p = period.max(1e-6);
                let cu = (u / p).floor() as i64;
                let cv = (v / p).floor() as i64;
                if (cu + cv).rem_euclid(2) == 0 {
                    0.85
                } else {
                    0.15
                }
            }
            Self::MultiScaleSine {
                base_frequency,
                octaves,
                phase,
            } => {
                let mut value = 0.0;
                let mut amplitude = 1.0;
                let mut freq = *base_frequency;
                let mut total = 0.0;
                for o in 0..(*octaves).max(1) {
                    let ang = std::f64::consts::TAU * freq;
                    value += amplitude
                        * (0.5
                            + 0.25 * (ang * u + phase + o as f64).sin()
                            + 0.25 * (ang * v * 1.37 - phase + 0.7 * o as f64).cos());
                    total += amplitude;
                    amplitude *= 0.5;
                    freq *= 2.0;
                }
                (value / total).clamp(0.0, 1.0)
            }
            Self::Blobs {
                spacing,
                radius_fraction,
                seed,
            } => {
                let s = spacing.max(1e-6);
                let gx = (u / s).floor() as i64;
                let gy = (v / s).floor() as i64;
                let mut value: f64 = 0.12;
                // Check the 3x3 neighbourhood of grid cells for blob centres.
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let cx = gx + dx;
                        let cy = gy + dy;
                        let jx = hash2(cx, cy, *seed) - 0.5;
                        let jy = hash2(cx, cy, seed.wrapping_add(1)) - 0.5;
                        let centre_u = (cx as f64 + 0.5 + 0.6 * jx) * s;
                        let centre_v = (cy as f64 + 0.5 + 0.6 * jy) * s;
                        let r = radius_fraction * s;
                        let d2 = (u - centre_u).powi(2) + (v - centre_v).powi(2);
                        let bright = 0.3 + 0.7 * hash2(cx, cy, seed.wrapping_add(2));
                        if d2 < r * r {
                            // Smooth falloff towards the blob edge.
                            let w = 1.0 - (d2 / (r * r));
                            value = value.max(0.12 + bright * w);
                        }
                    }
                }
                value.clamp(0.0, 1.0)
            }
        }
    }
}

/// A finite textured rectangle in 3-D space.
///
/// Defined by a centre, two orthonormal in-plane axes, half-extents along the
/// axes, and a texture. The patch normal is `u_axis × v_axis`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanarPatch {
    /// Centre of the rectangle in world coordinates.
    pub center: Vec3,
    /// Unit vector along the patch's local `u` direction.
    pub u_axis: Vec3,
    /// Unit vector along the patch's local `v` direction.
    pub v_axis: Vec3,
    /// Half extent along `u`, in metres.
    pub half_u: f64,
    /// Half extent along `v`, in metres.
    pub half_v: f64,
    /// Texture painted on the patch.
    pub texture: Texture,
}

/// Result of intersecting a ray with a scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayHit {
    /// Distance along the ray direction to the hit point.
    pub t: f64,
    /// Texture intensity at the hit point, in `[0, 1]`.
    pub intensity: f64,
    /// Index of the patch that was hit.
    pub patch_index: usize,
}

impl PlanarPatch {
    /// Creates an axis-aligned patch facing the `-Z` world direction (towards
    /// a camera looking along `+Z`), centred at `center`, with the given full
    /// width/height.
    pub fn frontoparallel(center: Vec3, width: f64, height: f64, texture: Texture) -> Self {
        Self {
            center,
            u_axis: Vec3::X,
            v_axis: Vec3::Y,
            half_u: width * 0.5,
            half_v: height * 0.5,
            texture,
        }
    }

    /// Creates a patch from a centre, two (not necessarily unit) axes and
    /// half extents. The axes are normalized.
    ///
    /// # Panics
    ///
    /// Panics if either axis has zero length.
    pub fn oriented(
        center: Vec3,
        u_axis: Vec3,
        v_axis: Vec3,
        half_u: f64,
        half_v: f64,
        texture: Texture,
    ) -> Self {
        Self {
            center,
            u_axis: u_axis.normalized().expect("u_axis must be non-zero"),
            v_axis: v_axis.normalized().expect("v_axis must be non-zero"),
            half_u,
            half_v,
            texture,
        }
    }

    /// Patch normal (`u × v`), unit length for orthonormal axes.
    pub fn normal(&self) -> Vec3 {
        self.u_axis.cross(self.v_axis)
    }

    /// Intersects a ray with the patch.
    ///
    /// Returns the ray parameter `t > t_min` and the in-plane `(u, v)`
    /// coordinates of the hit, or `None` when the ray misses the rectangle.
    pub fn intersect(&self, origin: Vec3, direction: Vec3, t_min: f64) -> Option<(f64, f64, f64)> {
        let n = self.normal();
        let denom = n.dot(direction);
        if denom.abs() < 1e-12 {
            return None;
        }
        let t = n.dot(self.center - origin) / denom;
        if t <= t_min {
            return None;
        }
        let hit = origin + direction * t;
        let rel = hit - self.center;
        let u = rel.dot(self.u_axis);
        let v = rel.dot(self.v_axis);
        if u.abs() > self.half_u || v.abs() > self.half_v {
            return None;
        }
        Some((t, u, v))
    }
}

/// A scene: an ordered collection of textured planar patches plus a uniform
/// background intensity for rays that hit nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    patches: Vec<PlanarPatch>,
    /// Intensity returned for rays that miss every patch.
    pub background_intensity: f64,
}

impl Default for Scene {
    fn default() -> Self {
        Self::new()
    }
}

impl Scene {
    /// Creates an empty scene with a mid-grey background.
    pub fn new() -> Self {
        Self {
            patches: Vec::new(),
            background_intensity: 0.5,
        }
    }

    /// Adds a patch and returns its index.
    pub fn add_patch(&mut self, patch: PlanarPatch) -> usize {
        self.patches.push(patch);
        self.patches.len() - 1
    }

    /// The patches of the scene.
    pub fn patches(&self) -> &[PlanarPatch] {
        &self.patches
    }

    /// Number of patches.
    pub fn len(&self) -> usize {
        self.patches.len()
    }

    /// Whether the scene has no patches.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }

    /// Casts a ray and returns the closest hit, if any.
    pub fn cast_ray(&self, origin: Vec3, direction: Vec3) -> Option<RayHit> {
        let mut best: Option<(f64, f64, f64, usize)> = None;
        for (i, patch) in self.patches.iter().enumerate() {
            if let Some((t, u, v)) = patch.intersect(origin, direction, 1e-6) {
                if best.is_none_or(|(bt, _, _, _)| t < bt) {
                    best = Some((t, u, v, i));
                }
            }
        }
        best.map(|(t, u, v, patch_index)| RayHit {
            t,
            intensity: self.patches[patch_index].texture.sample(u, v),
            patch_index,
        })
    }

    /// Scene radiance along a ray: texture intensity of the closest hit or
    /// the background intensity.
    pub fn radiance(&self, origin: Vec3, direction: Vec3) -> f64 {
        self.cast_ray(origin, direction)
            .map(|h| h.intensity)
            .unwrap_or(self.background_intensity)
    }

    /// Depth (distance along the ray, *not* the Z-coordinate) of the closest
    /// hit, or `f64::INFINITY`.
    pub fn ray_depth(&self, origin: Vec3, direction: Vec3) -> f64 {
        self.cast_ray(origin, direction)
            .map(|h| h.t)
            .unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textures_stay_in_unit_range() {
        let textures = [
            Texture::Uniform { value: 2.0 },
            Texture::Checkerboard { period: 0.1 },
            Texture::MultiScaleSine {
                base_frequency: 3.0,
                octaves: 4,
                phase: 0.3,
            },
            Texture::Blobs {
                spacing: 0.2,
                radius_fraction: 0.35,
                seed: 42,
            },
        ];
        for tex in &textures {
            for i in 0..50 {
                for j in 0..50 {
                    let v = tex.sample(i as f64 * 0.037 - 1.0, j as f64 * 0.021 - 0.5);
                    assert!((0.0..=1.0).contains(&v), "{tex:?} out of range: {v}");
                }
            }
        }
    }

    #[test]
    fn checkerboard_alternates() {
        let t = Texture::Checkerboard { period: 1.0 };
        assert_ne!(t.sample(0.5, 0.5), t.sample(1.5, 0.5));
        assert_eq!(t.sample(0.5, 0.5), t.sample(1.5, 1.5));
    }

    #[test]
    fn textures_have_spatial_variation() {
        // A texture without variation produces no events; guard against that.
        for tex in [
            Texture::Checkerboard { period: 0.05 },
            Texture::MultiScaleSine {
                base_frequency: 4.0,
                octaves: 3,
                phase: 0.0,
            },
            Texture::Blobs {
                spacing: 0.15,
                radius_fraction: 0.4,
                seed: 7,
            },
        ] {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for i in 0..200 {
                let v = tex.sample(i as f64 * 0.013, i as f64 * 0.007);
                min = min.min(v);
                max = max.max(v);
            }
            assert!(max - min > 0.1, "texture {tex:?} too flat: {min}..{max}");
        }
    }

    #[test]
    fn blob_texture_is_deterministic() {
        let a = Texture::Blobs {
            spacing: 0.2,
            radius_fraction: 0.3,
            seed: 5,
        };
        let b = Texture::Blobs {
            spacing: 0.2,
            radius_fraction: 0.3,
            seed: 5,
        };
        for i in 0..100 {
            let (u, v) = (i as f64 * 0.017, i as f64 * 0.029);
            assert_eq!(a.sample(u, v), b.sample(u, v));
        }
    }

    #[test]
    fn patch_intersection_basic() {
        let patch = PlanarPatch::frontoparallel(
            Vec3::new(0.0, 0.0, 2.0),
            1.0,
            1.0,
            Texture::Uniform { value: 0.5 },
        );
        // Ray straight down the optical axis hits the centre.
        let hit = patch.intersect(Vec3::ZERO, Vec3::Z, 1e-6).unwrap();
        assert!((hit.0 - 2.0).abs() < 1e-12);
        assert!(hit.1.abs() < 1e-12 && hit.2.abs() < 1e-12);
        // Ray pointing away misses.
        assert!(patch.intersect(Vec3::ZERO, -Vec3::Z, 1e-6).is_none());
        // Ray that passes outside the extent misses.
        assert!(patch
            .intersect(Vec3::new(5.0, 0.0, 0.0), Vec3::Z, 1e-6)
            .is_none());
        // Parallel ray misses.
        assert!(patch.intersect(Vec3::ZERO, Vec3::X, 1e-6).is_none());
    }

    #[test]
    fn scene_returns_closest_hit() {
        let mut scene = Scene::new();
        scene.add_patch(PlanarPatch::frontoparallel(
            Vec3::new(0.0, 0.0, 3.0),
            4.0,
            4.0,
            Texture::Uniform { value: 0.9 },
        ));
        let near = scene.add_patch(PlanarPatch::frontoparallel(
            Vec3::new(0.0, 0.0, 1.5),
            4.0,
            4.0,
            Texture::Uniform { value: 0.1 },
        ));
        let hit = scene.cast_ray(Vec3::ZERO, Vec3::Z).unwrap();
        assert_eq!(hit.patch_index, near);
        assert!((hit.t - 1.5).abs() < 1e-12);
        assert!((scene.ray_depth(Vec3::ZERO, Vec3::Z) - 1.5).abs() < 1e-12);
        assert_eq!(scene.radiance(Vec3::ZERO, Vec3::Z), 0.1);
    }

    #[test]
    fn missing_ray_uses_background() {
        let scene = Scene::new();
        assert_eq!(
            scene.radiance(Vec3::ZERO, Vec3::Z),
            scene.background_intensity
        );
        assert_eq!(scene.ray_depth(Vec3::ZERO, Vec3::Z), f64::INFINITY);
        assert!(scene.is_empty());
    }

    #[test]
    fn oriented_patch_normal_is_unit() {
        let p = PlanarPatch::oriented(
            Vec3::ZERO,
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
            1.0,
            1.0,
            Texture::Uniform { value: 0.5 },
        );
        assert!((p.normal().norm() - 1.0).abs() < 1e-12);
    }
}
