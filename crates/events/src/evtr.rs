//! `eventor-evtr/1` — the compact binary record/replay container for event
//! streams and their camera trajectories.
//!
//! The format exists so a scenario run can be **recorded once and replayed
//! bit-identically**: a replayed file feeds the exact same events and poses
//! into the pipeline that the generator produced, so the reconstruction
//! digest of a replay must equal the digest of the original run
//! (`docs/SCENARIOS.md`).
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic        [u8; 4]  = b"EVTR"
//! version      u32      = 1
//! section_count u32
//! reserved     u32      = 0  (writers write zero; readers reject nonzero)
//! section * section_count:
//!     tag          [u8; 4]   (b"TRAJ", b"EVTS" or b"CKPT"; unknown tags rejected)
//!     payload_len  u64       (bytes)
//!     payload      [u8; payload_len]
//! checksum     u64      FNV-1a 64 over every preceding byte of the file
//! ```
//!
//! Section payloads:
//!
//! * `TRAJ` — `count: u64`, then `count` samples of
//!   `t tx ty tz qx qy qz qw`, eight `f64` bit patterns (64 bytes each).
//! * `EVTS` — `count: u64`, then `count` events of
//!   `t: f64, x: u16, y: u16, polarity: u8` (13 bytes each, packed).
//! * `CKPT` — `version: u32` ([`CKPT_VERSION`]), then an opaque checkpoint
//!   payload (a mid-flight session snapshot, encoded by `eventor-core`).
//!   A checkpoint container holds exactly this one section
//!   ([`write_ckpt`] / [`read_ckpt`]); a record container holds exactly
//!   `TRAJ` + `EVTS`. The two uses never mix: a reader presented with the
//!   wrong kind reports a typed error naming the other workflow.
//!
//! The reader rejects truncated files, bad magic, unsupported versions
//! (recorder/replayer version skew), nonzero reserved header bytes, unknown
//! sections, length overruns and checksum mismatches with
//! [`EventError::InvalidRecord`], and re-validates the decoded stream and
//! trajectory orderings through the normal constructors.

use crate::event::{Event, Polarity};
use crate::fnv::fnv1a_64;
use crate::stream::EventStream;
use crate::EventError;
use eventor_geom::{Pose, Trajectory, UnitQuaternion, Vec3};
use std::io::{Read, Write};

/// Magic bytes opening every `.evtr` file.
pub const EVTR_MAGIC: [u8; 4] = *b"EVTR";

/// Format version written by [`write_evtr`] and accepted by [`read_evtr`].
pub const EVTR_VERSION: u32 = 1;

/// Version prefix of the `CKPT` section payload written by [`write_ckpt`]
/// and accepted by [`read_ckpt`]. Versioned independently of the container
/// so the checkpoint payload can evolve without a container-version bump.
pub const CKPT_VERSION: u32 = 1;

const TAG_TRAJ: [u8; 4] = *b"TRAJ";
const TAG_EVTS: [u8; 4] = *b"EVTS";
const TAG_CKPT: [u8; 4] = *b"CKPT";

fn corrupt(reason: impl Into<String>) -> EventError {
    EventError::InvalidRecord {
        reason: reason.into(),
    }
}

fn encode_trajectory(trajectory: &Trajectory) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + trajectory.len() * 64);
    out.extend_from_slice(&(trajectory.len() as u64).to_le_bytes());
    for sample in trajectory {
        let t = sample.pose.translation;
        let q = sample.pose.rotation;
        for v in [sample.timestamp, t.x, t.y, t.z, q.x, q.y, q.z, q.w] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn encode_events(stream: &EventStream) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + stream.len() * 13);
    out.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    for e in stream {
        out.extend_from_slice(&e.t.to_le_bytes());
        out.extend_from_slice(&e.x.to_le_bytes());
        out.extend_from_slice(&e.y.to_le_bytes());
        out.push(match e.polarity {
            Polarity::Positive => 1,
            Polarity::Negative => 0,
        });
    }
    out
}

/// Serializes a recorded run — an event stream plus the trajectory it was
/// captured against — into the `eventor-evtr/1` container.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_evtr<W: Write>(
    stream: &EventStream,
    trajectory: &Trajectory,
    mut writer: W,
) -> std::io::Result<()> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&EVTR_MAGIC);
    bytes.extend_from_slice(&EVTR_VERSION.to_le_bytes());
    bytes.extend_from_slice(&2u32.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    for (tag, payload) in [
        (TAG_TRAJ, encode_trajectory(trajectory)),
        (TAG_EVTS, encode_events(stream)),
    ] {
        bytes.extend_from_slice(&tag);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
    }
    let checksum = fnv1a_64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    writer.write_all(&bytes)
}

/// A little-endian byte cursor with bounds-checked reads.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], EventError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("truncated while reading {what}")))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u16(&mut self, what: &str) -> Result<u16, EventError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, EventError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, EventError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, EventError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

fn decode_trajectory(payload: &[u8]) -> Result<Trajectory, EventError> {
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let count = c.u64("trajectory sample count")? as usize;
    // Checked arithmetic: a crafted count must yield InvalidRecord, never
    // an overflow panic or a capacity-overflow abort.
    if count
        .checked_mul(64)
        .and_then(|n| n.checked_add(8))
        .is_none_or(|expected| payload.len() != expected)
    {
        return Err(corrupt(format!(
            "TRAJ section declares {count} samples but holds {} payload bytes",
            payload.len()
        )));
    }
    let mut samples = Vec::with_capacity(count);
    for i in 0..count {
        let what = format!("trajectory sample {i}");
        let t = c.f64(&what)?;
        let translation = Vec3::new(c.f64(&what)?, c.f64(&what)?, c.f64(&what)?);
        let (qx, qy, qz, qw) = (c.f64(&what)?, c.f64(&what)?, c.f64(&what)?, c.f64(&what)?);
        if !t.is_finite() {
            return Err(corrupt(format!("{what}: non-finite timestamp")));
        }
        // Bit-preserving: `UnitQuaternion::new` would renormalize and could
        // perturb the stored rotation by a ULP, breaking bit-exact replay.
        let rotation = UnitQuaternion::from_normalized(qw, qx, qy, qz, 1e-6)
            .ok_or_else(|| corrupt(format!("{what}: rotation is not unit norm")))?;
        samples.push((t, Pose::new(rotation, translation)));
    }
    if samples.is_empty() {
        return Ok(Trajectory::new());
    }
    Trajectory::from_samples(samples)
        .map_err(|e| corrupt(format!("TRAJ section is not strictly time-ordered: {e}")))
}

fn decode_events(payload: &[u8]) -> Result<EventStream, EventError> {
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let count = c.u64("event count")? as usize;
    if count
        .checked_mul(13)
        .and_then(|n| n.checked_add(8))
        .is_none_or(|expected| payload.len() != expected)
    {
        return Err(corrupt(format!(
            "EVTS section declares {count} events but holds {} payload bytes",
            payload.len()
        )));
    }
    let mut events = Vec::with_capacity(count);
    for i in 0..count {
        let what = format!("event {i}");
        let t = c.f64(&what)?;
        let x = c.u16(&what)?;
        let y = c.u16(&what)?;
        let polarity = match c.take(1, &what)?[0] {
            1 => Polarity::Positive,
            0 => Polarity::Negative,
            other => {
                return Err(corrupt(format!("{what}: invalid polarity byte {other}")));
            }
        };
        if !t.is_finite() {
            return Err(corrupt(format!("{what}: non-finite timestamp")));
        }
        events.push(Event::new(t, x, y, polarity));
    }
    EventStream::from_events(events)
        .map_err(|e| corrupt(format!("EVTS section is not time-ordered: {e}")))
}

/// One decoded container section: its tag and the byte range of its payload
/// within the container body.
struct Section {
    tag: [u8; 4],
    payload: std::ops::Range<usize>,
}

/// Reads a whole `eventor-evtr/1` container and validates everything that is
/// section-agnostic, in a fixed order: minimum length, trailing FNV-1a-64
/// checksum, magic, version, reserved header bytes, per-section length
/// bounds, and absence of trailing bytes. Returns the container bytes plus
/// the section table; the callers ([`read_evtr`], [`read_ckpt`]) interpret
/// the tags.
fn read_sections<R: Read>(mut reader: R) -> Result<(Vec<u8>, Vec<Section>), EventError> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|e| corrupt(format!("i/o error reading record: {e}")))?;
    if bytes.len() < EVTR_MAGIC.len() + 4 + 4 + 4 + 8 {
        return Err(corrupt(format!(
            "file too short for an evtr header ({} bytes)",
            bytes.len()
        )));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
    let actual = fnv1a_64(body);
    if declared != actual {
        return Err(corrupt(format!(
            "checksum mismatch: file declares {declared:#018x}, content hashes to {actual:#018x}"
        )));
    }
    let body_len = body.len();
    let mut c = Cursor { bytes: body, at: 0 };
    let magic = c.take(4, "magic")?;
    if magic != EVTR_MAGIC {
        return Err(corrupt(format!("bad magic {magic:?}, expected \"EVTR\"")));
    }
    let version = c.u32("version")?;
    if version != EVTR_VERSION {
        return Err(corrupt(format!(
            "unsupported evtr version {version} (this reader speaks {EVTR_VERSION})"
        )));
    }
    let section_count = c.u32("section count")?;
    let reserved = c.u32("reserved header bytes")?;
    if reserved != 0 {
        return Err(corrupt(format!(
            "reserved header bytes must be zero (got {reserved:#010x})"
        )));
    }
    let mut sections = Vec::new();
    for i in 0..section_count {
        let tag: [u8; 4] = c.take(4, "section tag")?.try_into().unwrap();
        let len = c.u64("section length")? as usize;
        let start = c.at;
        c.take(len, &format!("section {i} payload"))?;
        sections.push(Section {
            tag,
            payload: start..start + len,
        });
    }
    if c.at != body_len {
        return Err(corrupt(format!(
            "{} trailing bytes after the declared sections",
            body_len - c.at
        )));
    }
    Ok((bytes, sections))
}

/// Deserializes an `eventor-evtr/1` container back into the recorded event
/// stream and trajectory.
///
/// # Errors
///
/// Returns [`EventError::InvalidRecord`] for truncated input, bad magic, an
/// unsupported version, unknown or duplicated sections, payload-length
/// mismatches, checksum failures, or decoded data that violates the stream /
/// trajectory ordering invariants. I/O errors from the reader surface as
/// [`EventError::InvalidRecord`] too (the container is read whole). A
/// checkpoint (`CKPT`-bearing) container is rejected with a message pointing
/// at the resume path: a checkpoint is not a replayable record.
pub fn read_evtr<R: Read>(reader: R) -> Result<(EventStream, Trajectory), EventError> {
    let (bytes, sections) = read_sections(reader)?;
    let mut trajectory: Option<Trajectory> = None;
    let mut events: Option<EventStream> = None;
    for section in sections {
        let payload = &bytes[section.payload];
        match section.tag {
            TAG_TRAJ if trajectory.is_none() => trajectory = Some(decode_trajectory(payload)?),
            TAG_EVTS if events.is_none() => events = Some(decode_events(payload)?),
            TAG_TRAJ | TAG_EVTS => {
                return Err(corrupt(format!(
                    "duplicate {:?} section",
                    String::from_utf8_lossy(&section.tag)
                )));
            }
            TAG_CKPT => {
                return Err(corrupt(
                    "CKPT section in a record container: this is a session checkpoint, \
                     not a replayable record (resume it instead)",
                ));
            }
            other => {
                return Err(corrupt(format!(
                    "unknown section tag {:?}",
                    String::from_utf8_lossy(&other)
                )));
            }
        }
    }
    match (events, trajectory) {
        (Some(e), Some(t)) => Ok((e, t)),
        (None, _) => Err(corrupt("missing EVTS section")),
        (_, None) => Err(corrupt("missing TRAJ section")),
    }
}

/// Serializes an opaque checkpoint payload into an `eventor-evtr/1`
/// container holding exactly one `CKPT` section.
///
/// The section payload is the [`CKPT_VERSION`] word followed by `payload`
/// verbatim; the container carries the usual trailing FNV-1a-64 checksum, so
/// **any** single-byte corruption of a checkpoint file is detected before
/// the payload is interpreted.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ckpt<W: Write>(payload: &[u8], mut writer: W) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(EVTR_MAGIC.len() + 4 + 4 + 4 + 12 + 4 + payload.len() + 8);
    bytes.extend_from_slice(&EVTR_MAGIC);
    bytes.extend_from_slice(&EVTR_VERSION.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&TAG_CKPT);
    bytes.extend_from_slice(&(4 + payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    bytes.extend_from_slice(payload);
    let checksum = fnv1a_64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    writer.write_all(&bytes)
}

/// Deserializes a checkpoint container written by [`write_ckpt`], returning
/// the opaque checkpoint payload (the bytes after the [`CKPT_VERSION`]
/// word). The payload's own structure is validated by its consumer
/// (`eventor-core`'s `SessionCheckpoint::decode`).
///
/// # Errors
///
/// Returns [`EventError::InvalidRecord`] for every container-level
/// corruption ([`read_evtr`]'s modes), for a record (`TRAJ`/`EVTS`) container
/// presented as a checkpoint, for anything but exactly one `CKPT` section,
/// and for an unsupported checkpoint payload version.
pub fn read_ckpt<R: Read>(reader: R) -> Result<Vec<u8>, EventError> {
    let (bytes, sections) = read_sections(reader)?;
    let mut payload: Option<std::ops::Range<usize>> = None;
    for section in sections {
        match section.tag {
            TAG_CKPT if payload.is_none() => payload = Some(section.payload),
            TAG_CKPT => return Err(corrupt("duplicate \"CKPT\" section")),
            TAG_TRAJ | TAG_EVTS => {
                return Err(corrupt(format!(
                    "{:?} section in a checkpoint container: this is a record/replay \
                     file, not a session checkpoint (replay it instead)",
                    String::from_utf8_lossy(&section.tag)
                )));
            }
            other => {
                return Err(corrupt(format!(
                    "unknown section tag {:?}",
                    String::from_utf8_lossy(&other)
                )));
            }
        }
    }
    let payload = payload.ok_or_else(|| corrupt("missing CKPT section"))?;
    let body = &bytes[payload];
    if body.len() < 4 {
        return Err(corrupt(format!(
            "CKPT section too short for its version word ({} bytes)",
            body.len()
        )));
    }
    let version = u32::from_le_bytes(body[..4].try_into().unwrap());
    if version != CKPT_VERSION {
        return Err(corrupt(format!(
            "unsupported checkpoint version {version} (this reader speaks {CKPT_VERSION})"
        )));
    }
    Ok(body[4..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventor_geom::Vec3;

    fn sample_trajectory() -> Trajectory {
        Trajectory::linear(
            Pose::identity(),
            Pose::new(
                UnitQuaternion::from_euler(0.02, -0.01, 0.3),
                Vec3::new(0.4, -0.1, 0.05),
            ),
            0.0,
            1.0,
            7,
        )
    }

    fn sample_stream() -> EventStream {
        (0..200)
            .map(|i| {
                Event::new(
                    i as f64 * 1e-3,
                    (i * 7 % 240) as u16,
                    (i * 13 % 180) as u16,
                    if i % 3 == 0 {
                        Polarity::Negative
                    } else {
                        Polarity::Positive
                    },
                )
            })
            .collect()
    }

    fn encode(stream: &EventStream, trajectory: &Trajectory) -> Vec<u8> {
        let mut buf = Vec::new();
        write_evtr(stream, trajectory, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_exact() {
        let stream = sample_stream();
        let trajectory = sample_trajectory();
        let bytes = encode(&stream, &trajectory);
        let (s, t) = read_evtr(bytes.as_slice()).unwrap();
        assert_eq!(s, stream);
        assert_eq!(t.len(), trajectory.len());
        for (a, b) in trajectory.iter().zip(t.iter()) {
            // Bit-exact, not approximately equal: the container stores raw
            // f64 bit patterns.
            assert_eq!(a.timestamp.to_bits(), b.timestamp.to_bits());
            assert_eq!(
                a.pose.translation.x.to_bits(),
                b.pose.translation.x.to_bits()
            );
            assert_eq!(a.pose.rotation.w.to_bits(), b.pose.rotation.w.to_bits());
        }
    }

    #[test]
    fn empty_stream_and_trajectory_round_trip() {
        let bytes = encode(&EventStream::new(), &Trajectory::new());
        let (s, t) = read_evtr(bytes.as_slice()).unwrap();
        assert!(s.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample_stream(), &sample_trajectory());
        bytes[0] = b'X';
        // Re-seal the checksum so the magic check (not the checksum) fires.
        let n = bytes.len();
        let fixed = fnv1a_64(&bytes[..n - 8]).to_le_bytes();
        bytes[n - 8..].copy_from_slice(&fixed);
        let err = read_evtr(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encode(&sample_stream(), &sample_trajectory());
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        let n = bytes.len();
        let fixed = fnv1a_64(&bytes[..n - 8]).to_le_bytes();
        bytes[n - 8..].copy_from_slice(&fixed);
        let err = read_evtr(bytes.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported evtr version"),
            "{err}"
        );
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let mut bytes = encode(&sample_stream(), &sample_trajectory());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = read_evtr(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = encode(&sample_stream(), &sample_trajectory());
        // Every proper prefix must fail: either too short for the header or
        // a checksum/length mismatch. Step through a spread of lengths.
        for cut in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
            assert!(
                read_evtr(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn absurd_declared_counts_are_rejected_not_panicked() {
        // A record whose TRAJ section is 8 bytes long but declares 2^58
        // samples: `8 + count * 64` would wrap in release mode and pass a
        // naive length check, then abort on Vec::with_capacity. The FNV
        // checksum is unkeyed (anyone can reseal it), so the parser itself
        // must reject this with InvalidRecord.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&EVTR_MAGIC);
        bytes.extend_from_slice(&EVTR_VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"TRAJ");
        bytes.extend_from_slice(&8u64.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 58).to_le_bytes());
        let checksum = fnv1a_64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = read_evtr(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("payload bytes"), "{err}");
    }

    #[test]
    fn ckpt_round_trip_is_exact() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut buf = Vec::new();
        write_ckpt(&payload, &mut buf).unwrap();
        assert_eq!(read_ckpt(buf.as_slice()).unwrap(), payload);
        // Empty payloads are legal too.
        let mut buf = Vec::new();
        write_ckpt(&[], &mut buf).unwrap();
        assert!(read_ckpt(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn ckpt_flipped_byte_fails_the_checksum() {
        let mut buf = Vec::new();
        write_ckpt(b"some checkpoint payload", &mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        let err = read_ckpt(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn record_reader_rejects_checkpoints_and_vice_versa() {
        let mut ckpt = Vec::new();
        write_ckpt(b"payload", &mut ckpt).unwrap();
        let err = read_evtr(ckpt.as_slice()).unwrap_err();
        assert!(err.to_string().contains("CKPT section"), "{err}");
        assert!(err.to_string().contains("resume"), "{err}");

        let record = encode(&sample_stream(), &sample_trajectory());
        let err = read_ckpt(record.as_slice()).unwrap_err();
        assert!(err.to_string().contains("record/replay"), "{err}");
        assert!(err.to_string().contains("replay it instead"), "{err}");
    }

    #[test]
    fn ckpt_version_skew_is_rejected() {
        let mut buf = Vec::new();
        write_ckpt(b"payload", &mut buf).unwrap();
        // The CKPT payload version word sits right after the section header
        // (magic 4 + version 4 + count 4 + reserved 4 + tag 4 + len 8 = 28).
        buf[28..32].copy_from_slice(&7u32.to_le_bytes());
        let n = buf.len();
        let fixed = fnv1a_64(&buf[..n - 8]).to_le_bytes();
        buf[n - 8..].copy_from_slice(&fixed);
        let err = read_ckpt(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported checkpoint version"),
            "{err}"
        );
    }

    #[test]
    fn ckpt_truncation_is_rejected_at_every_length() {
        let mut buf = Vec::new();
        write_ckpt(&[0xAB; 257], &mut buf).unwrap();
        for cut in (0..buf.len()).step_by(13).chain([buf.len() - 1]) {
            assert!(
                read_ckpt(&buf[..cut]).is_err(),
                "prefix of {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn nonzero_reserved_bytes_are_rejected() {
        let mut bytes = encode(&sample_stream(), &sample_trajectory());
        bytes[12..16].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        // Re-seal the checksum so the reserved check (not the checksum) fires.
        let n = bytes.len();
        let fixed = fnv1a_64(&bytes[..n - 8]).to_le_bytes();
        bytes[n - 8..].copy_from_slice(&fixed);
        let err = read_evtr(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("reserved header bytes"), "{err}");
    }
}
