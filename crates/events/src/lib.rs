//! # eventor-events
//!
//! Event-camera substrate for the Eventor EMVS reproduction:
//!
//! * the [`Event`] / [`EventStream`] data model and [`aggregate`] (the
//!   paper's event-aggregation stage `𝒜`, 1024 events per frame),
//! * procedural textured 3-D scenes ([`Scene`], [`PlanarPatch`], [`Texture`]),
//! * a contrast-threshold event-camera simulator
//!   ([`EventCameraSimulator`]) in the spirit of the simulator shipped with
//!   the event-camera dataset the paper evaluates on,
//! * builders for synthetic stand-ins of the four evaluation sequences
//!   (`simulation_3planes`, `simulation_3walls`, `slider_close`,
//!   `slider_far`) with ground-truth depth at the reference view
//!   ([`SyntheticSequence`]),
//! * the `eventor-evtr/1` binary record/replay container
//!   ([`write_evtr`] / [`read_evtr`]): length-prefixed, checksummed,
//!   bit-exact — a recorded run replays to identical reconstruction output
//!   (`docs/SCENARIOS.md`).
//!
//! ## Example
//!
//! ```
//! use eventor_events::{DatasetConfig, SequenceKind, SyntheticSequence, aggregate};
//!
//! # fn main() -> Result<(), eventor_events::EventError> {
//! let config = DatasetConfig::fast_test();
//! let sequence = SyntheticSequence::generate(SequenceKind::SliderClose, &config)?;
//! let frames = aggregate(&sequence.events, 1024);
//! assert!(!frames.is_empty());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod datasets;
mod error;
mod event;
mod evtr;
mod fnv;
mod image;
mod io;
mod noise;
mod packet;
mod rate;
mod render;
mod scene;
mod simulator;
mod stream;
mod undistort;

pub use datasets::{DatasetConfig, SequenceKind, SyntheticSequence};
pub use error::EventError;
pub use event::{first_out_of_order, Event, Polarity};
pub use evtr::{
    read_ckpt, read_evtr, write_ckpt, write_evtr, CKPT_VERSION, EVTR_MAGIC, EVTR_VERSION,
};
pub use fnv::{fnv1a_64, Fnv64};
pub use image::Image;
pub use io::{read_events, read_trajectory, write_events, write_trajectory};
pub use noise::{NoiseConfig, NoiseInjector, NoiseReport};
pub use packet::{
    aggregate, packetize_frame, EventFrame, FrameIter, VotePacket, DEFAULT_EVENTS_PER_FRAME,
    DEFAULT_PACKET_EVENTS,
};
pub use rate::{rate_profile, slice_stream, RateProfile, SlicePolicy, SliceStats};
pub use render::{render_depth, render_edge_map, render_log_intensity};
pub use scene::{PlanarPatch, RayHit, Scene, Texture};
pub use simulator::{EventCameraSimulator, SimulationStats, SimulatorConfig};
pub use stream::EventStream;
pub use undistort::UndistortionLut;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn aggregation_preserves_count_and_order(
            n_events in 1usize..5000,
            frame_size in 1usize..2048,
        ) {
            let stream: EventStream = (0..n_events)
                .map(|i| Event::new(i as f64 * 1e-4, (i % 240) as u16, (i % 180) as u16, Polarity::Positive))
                .collect();
            let frames = aggregate(&stream, frame_size);
            let total: usize = frames.iter().map(|f| f.len()).sum();
            prop_assert_eq!(total, n_events);
            prop_assert_eq!(frames.len(), n_events.div_ceil(frame_size));
            // Every frame except possibly the last is full.
            for f in &frames[..frames.len() - 1] {
                prop_assert_eq!(f.len(), frame_size);
            }
            // Global time order is preserved across frame boundaries.
            for w in frames.windows(2) {
                prop_assert!(w[0].end_time().unwrap() <= w[1].start_time().unwrap());
            }
        }

        #[test]
        fn stream_slice_time_is_consistent(
            times in proptest::collection::vec(0.0..10.0f64, 1..200),
            a in 0.0..10.0f64,
            b in 0.0..10.0f64,
        ) {
            let stream = EventStream::from_unsorted(
                times.iter().map(|&t| Event::new(t, 0, 0, Polarity::Positive)).collect(),
            );
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let sliced = stream.slice_time(lo, hi);
            let expected = stream.iter().filter(|e| e.t >= lo && e.t < hi).count();
            prop_assert_eq!(sliced.len(), expected);
        }

        #[test]
        fn textures_always_in_unit_interval(
            u in -10.0..10.0f64,
            v in -10.0..10.0f64,
            seed in 0u64..1000,
        ) {
            for tex in [
                Texture::Checkerboard { period: 0.17 },
                Texture::MultiScaleSine { base_frequency: 3.0, octaves: 5, phase: 1.1 },
                Texture::Blobs { spacing: 0.25, radius_fraction: 0.4, seed },
            ] {
                let s = tex.sample(u, v);
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
    }
}

#[cfg(test)]
mod evtr_proptests {
    use super::*;
    use eventor_geom::{Pose, Trajectory, UnitQuaternion, Vec3};
    use proptest::prelude::*;

    /// Builds a valid stream + trajectory pair from proptest-drawn raw data.
    fn build_inputs(
        raw_events: &[(f64, u16, u16, u8)],
        raw_poses: &[(f64, f64, f64)],
    ) -> (EventStream, Trajectory) {
        let stream = EventStream::from_unsorted(
            raw_events
                .iter()
                .map(|&(t, x, y, pos)| {
                    let p = if pos == 1 {
                        Polarity::Positive
                    } else {
                        Polarity::Negative
                    };
                    Event::new(t, x, y, p)
                })
                .collect(),
        );
        // Strictly increasing timestamps via a cumulative sum of positive
        // steps; rotations vary per sample.
        let mut t = 0.0;
        let samples: Vec<(f64, Pose)> = raw_poses
            .iter()
            .enumerate()
            .map(|(i, &(dt, tx, ty))| {
                t += 1e-4 + dt.abs();
                let pose = Pose::new(
                    UnitQuaternion::from_euler(0.01 * i as f64, tx * 0.1, ty * 0.1),
                    Vec3::new(tx, ty, 0.1 * i as f64),
                );
                (t, pose)
            })
            .collect();
        let trajectory = if samples.is_empty() {
            Trajectory::new()
        } else {
            Trajectory::from_samples(samples).expect("strictly increasing")
        };
        (stream, trajectory)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn evtr_round_trip_preserves_everything(
            raw_events in prop::collection::vec(
                (0.0..100.0f64, 0u16..240, 0u16..180, 0u8..2),
                0..400,
            ),
            raw_poses in prop::collection::vec(
                (0.0..0.1f64, -1.0..1.0f64, -1.0..1.0f64),
                0..40,
            ),
        ) {
            let (stream, trajectory) = build_inputs(&raw_events, &raw_poses);
            let mut buf = Vec::new();
            write_evtr(&stream, &trajectory, &mut buf).expect("write to Vec");
            let (s, t) = read_evtr(buf.as_slice()).expect("round trip reads");
            prop_assert_eq!(&s, &stream);
            prop_assert_eq!(t.len(), trajectory.len());
            for (a, b) in trajectory.iter().zip(t.iter()) {
                prop_assert_eq!(a.timestamp.to_bits(), b.timestamp.to_bits());
                prop_assert_eq!(
                    a.pose.translation.x.to_bits(), b.pose.translation.x.to_bits());
                prop_assert_eq!(
                    a.pose.translation.y.to_bits(), b.pose.translation.y.to_bits());
                prop_assert_eq!(
                    a.pose.translation.z.to_bits(), b.pose.translation.z.to_bits());
                prop_assert_eq!(a.pose.rotation.w.to_bits(), b.pose.rotation.w.to_bits());
                prop_assert_eq!(a.pose.rotation.x.to_bits(), b.pose.rotation.x.to_bits());
            }
        }

        #[test]
        fn evtr_rejects_any_single_byte_corruption(
            raw_events in prop::collection::vec(
                (0.0..10.0f64, 0u16..240, 0u16..180, 0u8..2),
                1..100,
            ),
            position in 0.0..1.0f64,
            flip in 1u16..256,
        ) {
            let (stream, trajectory) = build_inputs(&raw_events, &[(0.01, 0.0, 0.0), (0.02, 0.5, 0.1)]);
            let mut buf = Vec::new();
            write_evtr(&stream, &trajectory, &mut buf).expect("write to Vec");
            let at = ((buf.len() - 1) as f64 * position) as usize;
            buf[at] ^= flip as u8;
            // Any bit flip anywhere must be caught: by the checksum footer,
            // or (for flips inside the footer itself) by the checksum
            // comparison against the intact body.
            prop_assert!(read_evtr(buf.as_slice()).is_err(), "flip at byte {} accepted", at);
        }

        #[test]
        fn evtr_rejects_any_version_skew(
            raw_events in prop::collection::vec(
                (0.0..10.0f64, 0u16..240, 0u16..180, 0u8..2),
                1..50,
            ),
            version in 0u32..0xffff_ffff,
        ) {
            prop_assume!(version != EVTR_VERSION);
            let (stream, trajectory) = build_inputs(&raw_events, &[(0.01, 0.2, -0.1)]);
            let mut buf = Vec::new();
            write_evtr(&stream, &trajectory, &mut buf).expect("write to Vec");
            buf[4..8].copy_from_slice(&version.to_le_bytes());
            // Re-seal the checksum so the version check itself (not the
            // checksum footer) must reject the recorder/replayer skew.
            let n = buf.len();
            let fixed = fnv1a_64(&buf[..n - 8]).to_le_bytes();
            buf[n - 8..].copy_from_slice(&fixed);
            let err = read_evtr(buf.as_slice()).expect_err("version skew accepted");
            prop_assert!(matches!(err, EventError::InvalidRecord { .. }));
            prop_assert!(err.to_string().contains("unsupported evtr version"), "{}", err);
        }

        #[test]
        fn evtr_rejects_any_nonzero_reserved_bytes(
            raw_events in prop::collection::vec(
                (0.0..10.0f64, 0u16..240, 0u16..180, 0u8..2),
                1..50,
            ),
            reserved in 1u32..0xffff_ffff,
        ) {
            let (stream, trajectory) = build_inputs(&raw_events, &[(0.01, 0.2, -0.1)]);
            let mut buf = Vec::new();
            write_evtr(&stream, &trajectory, &mut buf).expect("write to Vec");
            buf[12..16].copy_from_slice(&reserved.to_le_bytes());
            let n = buf.len();
            let fixed = fnv1a_64(&buf[..n - 8]).to_le_bytes();
            buf[n - 8..].copy_from_slice(&fixed);
            let err = read_evtr(buf.as_slice()).expect_err("nonzero reserved accepted");
            prop_assert!(matches!(err, EventError::InvalidRecord { .. }));
            prop_assert!(err.to_string().contains("reserved header bytes"), "{}", err);
        }

        #[test]
        fn evtr_rejects_every_truncation(
            raw_events in prop::collection::vec(
                (0.0..10.0f64, 0u16..240, 0u16..180, 0u8..2),
                1..60,
            ),
            cut_fraction in 0.0..1.0f64,
        ) {
            let (stream, trajectory) = build_inputs(&raw_events, &[(0.01, 0.3, -0.2)]);
            let mut buf = Vec::new();
            write_evtr(&stream, &trajectory, &mut buf).expect("write to Vec");
            let cut = (buf.len() as f64 * cut_fraction) as usize; // strictly < len
            prop_assert!(
                read_evtr(&buf[..cut]).is_err(),
                "prefix of {} of {} bytes accepted",
                cut,
                buf.len()
            );
        }
    }
}

#[cfg(test)]
mod slicing_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn adaptive_slicing_conserves_events_and_respects_caps(
            n_events in 1usize..4000,
            target in 16usize..1024,
            max_ms in 1.0..20.0f64,
            burst_period in 2usize..50,
        ) {
            // A stream whose instantaneous rate alternates between fast and
            // slow stretches, so both the count cap and the duration cap are
            // exercised.
            let stream: EventStream = (0..n_events)
                .map(|i| {
                    let dt = if (i / burst_period) % 2 == 0 { 1e-5 } else { 4e-4 };
                    Event::new(i as f64 * dt, (i % 240) as u16, (i % 180) as u16, Polarity::Positive)
                })
                .collect();
            let max_seconds = max_ms * 1e-3;
            let (frames, stats) =
                slice_stream(&stream, SlicePolicy::Adaptive { events: target, max_seconds });
            let total: usize = frames.iter().map(EventFrame::len).sum();
            prop_assert_eq!(total, n_events);
            prop_assert!(stats.max_events <= target);
            prop_assert!(stats.max_duration <= max_seconds + 4e-4 + 1e-9);
            // Frames are non-empty, consecutively indexed and time ordered.
            for (i, f) in frames.iter().enumerate() {
                prop_assert!(!f.is_empty());
                prop_assert_eq!(f.index, i);
            }
            for w in frames.windows(2) {
                prop_assert!(w[0].end_time().unwrap() <= w[1].start_time().unwrap());
            }
        }

        #[test]
        fn noise_injection_never_loses_more_than_the_drop_fraction_allows(
            n_events in 100usize..3000,
            drop_probability in 0.0..0.5f64,
            seed in 0u64..500,
        ) {
            let stream: EventStream = (0..n_events)
                .map(|i| Event::new(i as f64 * 1e-4, (i % 80) as u16, (i % 60) as u16, Polarity::Positive))
                .collect();
            let config = NoiseConfig {
                drop_probability,
                background_activity_rate: 0.0,
                hot_pixel_fraction: 0.0,
                hot_pixel_rate: 0.0,
                timestamp_jitter_std: 0.0,
                seed,
            };
            let (out, report) = NoiseInjector::new(80, 60, config).corrupt(&stream);
            prop_assert_eq!(report.signal_events + report.dropped_events, n_events);
            prop_assert_eq!(out.len(), report.signal_events);
            // The realised drop fraction concentrates around the requested one.
            let realised = report.dropped_events as f64 / n_events as f64;
            prop_assert!((realised - drop_probability).abs() < 0.15);
            // Surviving events are untouched (no jitter configured).
            prop_assert!(out.iter().all(|e| e.x < 80 && e.y < 60));
        }

        #[test]
        fn undistortion_lut_agrees_with_exact_model_on_random_pixels(
            xs in prop::collection::vec(0u16..240, 1..50),
            ys in prop::collection::vec(0u16..180, 1..50),
        ) {
            let camera = eventor_geom::CameraModel::davis240_distorted();
            let lut = UndistortionLut::build(&camera);
            for (&x, &y) in xs.iter().zip(&ys) {
                let exact = camera.undistort_pixel(eventor_geom::Vec2::new(x as f64, y as f64));
                let table = lut.lookup(x, y);
                prop_assert!((table - exact).norm() < 1e-3, "pixel ({}, {})", x, y);
            }
        }
    }
}
