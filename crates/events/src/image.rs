//! A minimal dense image container used for rendered intensity and depth.

use crate::EventError;

/// A dense, row-major `f64` image.
///
/// Used for rendered log-intensity frames (simulator internals) and
/// ground-truth depth maps. Invalid depth is conventionally `f64::INFINITY`.
///
/// # Examples
///
/// ```
/// use eventor_events::Image;
/// let mut img = Image::filled(4, 3, 0.0);
/// img.set(2, 1, 5.0);
/// assert_eq!(img.get(2, 1), 5.0);
/// assert_eq!(img.pixel_count(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl Image {
    /// Creates an image filled with a constant value.
    pub fn filled(width: usize, height: usize, value: f64) -> Self {
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an image from raw row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::ImageSizeMismatch`] if `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<f64>) -> Result<Self, EventError> {
        if data.len() != width * height {
            return Err(EventError::ImageSizeMismatch {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Sets the pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f64) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] = value;
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Minimum finite value, if any pixel is finite.
    pub fn min_finite(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(a) => a.min(v),
                })
            })
    }

    /// Maximum finite value, if any pixel is finite.
    pub fn max_finite(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(a) => a.max(v),
                })
            })
    }

    /// Mean of the finite pixel values (zero when none are finite).
    pub fn mean_finite(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &v in &self.data {
            if v.is_finite() {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Fraction of pixels that hold a finite value.
    pub fn finite_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|v| v.is_finite()).count() as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::filled(3, 2, 1.0);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        img.set(2, 1, 7.0);
        assert_eq!(img.get(2, 1), 7.0);
        assert_eq!(img.get(0, 0), 1.0);
    }

    #[test]
    fn from_data_validates_size() {
        assert!(Image::from_data(2, 2, vec![0.0; 3]).is_err());
        assert!(Image::from_data(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let img = Image::filled(2, 2, 0.0);
        let _ = img.get(2, 0);
    }

    #[test]
    fn statistics_ignore_non_finite() {
        let img = Image::from_data(2, 2, vec![1.0, 3.0, f64::INFINITY, f64::NAN]).unwrap();
        assert_eq!(img.min_finite(), Some(1.0));
        assert_eq!(img.max_finite(), Some(3.0));
        assert!((img.mean_finite() - 2.0).abs() < 1e-12);
        assert!((img.finite_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_infinite_image() {
        let img = Image::filled(2, 2, f64::INFINITY);
        assert_eq!(img.min_finite(), None);
        assert_eq!(img.mean_finite(), 0.0);
        assert_eq!(img.finite_fraction(), 0.0);
    }
}
