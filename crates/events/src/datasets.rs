//! Synthetic equivalents of the four evaluation sequences used in the paper:
//! `simulation_3planes`, `simulation_3walls`, `slider_close` and `slider_far`.
//!
//! The originals come from the event-camera dataset of Mueggler et al.
//! (IJRR 2017); this module builds scenes with the same geometric intent
//! (three parallel planes, a three-wall corner, a close and a far slider
//! target) and simulates them with [`crate::EventCameraSimulator`], so the
//! full EMVS pipeline — including ground-truth comparison — runs without any
//! external data.

use crate::image::Image;
use crate::render::render_depth;
use crate::scene::{PlanarPatch, Scene, Texture};
use crate::simulator::{EventCameraSimulator, SimulationStats, SimulatorConfig};
use crate::stream::EventStream;
use crate::EventError;
use eventor_geom::{CameraIntrinsics, CameraModel, DistortionModel, Pose, Trajectory, Vec3};

/// Identifier of one of the four evaluation sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequenceKind {
    /// Three fronto-parallel textured planes at different depths (simulated).
    ThreePlanes,
    /// A three-wall room corner (simulated).
    ThreeWalls,
    /// A textured target close to the camera on a linear slider (real in the
    /// paper, synthetic here).
    SliderClose,
    /// The same target far from the camera on a linear slider.
    SliderFar,
}

impl SequenceKind {
    /// All four sequences, in the order the paper's figures list them.
    pub const ALL: [SequenceKind; 4] = [
        SequenceKind::ThreePlanes,
        SequenceKind::ThreeWalls,
        SequenceKind::SliderClose,
        SequenceKind::SliderFar,
    ];

    /// The dataset name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Self::ThreePlanes => "simulation_3planes",
            Self::ThreeWalls => "simulation_3walls",
            Self::SliderClose => "slider_close",
            Self::SliderFar => "slider_far",
        }
    }

    /// Short label used on figure axes.
    pub fn label(self) -> &'static str {
        match self {
            Self::ThreePlanes => "3planes",
            Self::ThreeWalls => "3walls",
            Self::SliderClose => "close",
            Self::SliderFar => "far",
        }
    }
}

impl std::fmt::Display for SequenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration for generating a synthetic sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Camera model (resolution, intrinsics, distortion).
    pub camera: CameraModel,
    /// Simulator settings.
    pub simulator: SimulatorConfig,
    /// Duration of the sequence in seconds.
    pub duration: f64,
    /// Number of trajectory samples.
    pub trajectory_samples: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            camera: CameraModel::davis240_ideal(),
            simulator: SimulatorConfig::default(),
            duration: 2.0,
            trajectory_samples: 120,
        }
    }
}

impl DatasetConfig {
    /// Full DAVIS-resolution configuration used by the figure/table harness.
    pub fn paper_scale() -> Self {
        Self::default()
    }

    /// Full DAVIS-resolution configuration with lens distortion enabled, to
    /// exercise the event distortion-correction stage.
    pub fn paper_scale_distorted() -> Self {
        Self {
            camera: CameraModel::davis240_distorted(),
            ..Self::default()
        }
    }

    /// A reduced-resolution, reduced-sample configuration that keeps unit and
    /// integration tests fast while exercising every code path.
    pub fn fast_test() -> Self {
        let intrinsics = CameraIntrinsics::new(66.0, 66.0, 40.0, 30.0, 80, 60)
            .expect("static test intrinsics are valid");
        Self {
            camera: CameraModel::new(intrinsics, DistortionModel::none()),
            simulator: SimulatorConfig {
                samples: 60,
                ..SimulatorConfig::default()
            },
            duration: 1.0,
            trajectory_samples: 40,
        }
    }
}

/// A fully generated synthetic sequence: scene, trajectory, events and
/// ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticSequence {
    /// Which of the four sequences this is.
    pub kind: SequenceKind,
    /// Camera model used for simulation.
    pub camera: CameraModel,
    /// The synthetic scene.
    pub scene: Scene,
    /// Camera trajectory (ground truth, as the EMVS problem assumes).
    pub trajectory: Trajectory,
    /// The simulated event stream.
    pub events: EventStream,
    /// Simulation statistics.
    pub stats: SimulationStats,
    /// The reference (virtual-camera) pose at which depth is evaluated.
    pub reference_pose: Pose,
    /// Ground-truth depth at the reference pose.
    pub ground_truth_depth: Image,
    /// Suggested `(z_min, z_max)` range for the DSI depth planes.
    pub depth_range: (f64, f64),
}

impl SyntheticSequence {
    /// Generates one of the four sequences with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`EventError::InvalidSimulation`] from the simulator for
    /// unusable configurations.
    pub fn generate(kind: SequenceKind, config: &DatasetConfig) -> Result<Self, EventError> {
        let (scene, trajectory, depth_range) = match kind {
            SequenceKind::ThreePlanes => three_planes_world(config),
            SequenceKind::ThreeWalls => three_walls_world(config),
            SequenceKind::SliderClose => slider_world(config, 0.65, 0),
            SequenceKind::SliderFar => slider_world(config, 1.8, 1),
        };
        let simulator = EventCameraSimulator::new(config.camera, config.simulator.clone());
        let (events, stats) = simulator.simulate(&scene, &trajectory)?;
        let reference_pose = trajectory
            .pose_at(trajectory.start_time().expect("trajectory is nonempty"))
            .expect("start time is inside the trajectory");
        let ground_truth_depth = render_depth(&scene, &config.camera, &reference_pose);
        Ok(Self {
            kind,
            camera: config.camera,
            scene,
            trajectory,
            events,
            stats,
            reference_pose,
            ground_truth_depth,
            depth_range,
        })
    }

    /// Generates all four sequences.
    ///
    /// # Errors
    ///
    /// Fails if any single sequence fails to generate.
    pub fn generate_all(config: &DatasetConfig) -> Result<Vec<Self>, EventError> {
        SequenceKind::ALL
            .iter()
            .map(|&kind| Self::generate(kind, config))
            .collect()
    }

    /// Ground-truth depth rendered at an arbitrary pose (e.g. a later key
    /// reference view).
    pub fn ground_truth_depth_at(&self, pose: &Pose) -> Image {
        render_depth(&self.scene, &self.camera, pose)
    }

    /// The dataset name as used in the paper.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

/// Standard texture set shared by the synthetic worlds. Index selects one of
/// a few visually distinct, gradient-rich textures.
fn texture(idx: usize) -> Texture {
    // Non-periodic, gradient-rich textures: periodic patterns (checkerboards)
    // would create false stereo matches between repeated edges.
    match idx % 4 {
        0 => Texture::Blobs {
            spacing: 0.24,
            radius_fraction: 0.38,
            seed: 11,
        },
        1 => Texture::Blobs {
            spacing: 0.30,
            radius_fraction: 0.40,
            seed: 53,
        },
        2 => Texture::Blobs {
            spacing: 0.20,
            radius_fraction: 0.42,
            seed: 97,
        },
        _ => Texture::Blobs {
            spacing: 0.26,
            radius_fraction: 0.36,
            seed: 1234,
        },
    }
}

/// Three fronto-parallel planes at staggered depths and lateral offsets, with
/// the camera translating sideways (plus a slight vertical bob) in front of
/// them.
fn three_planes_world(config: &DatasetConfig) -> (Scene, Trajectory, (f64, f64)) {
    let mut scene = Scene::new();
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(-0.7, 0.0, 1.2),
        1.3,
        1.8,
        texture(0),
    ));
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(0.0, 0.1, 2.0),
        1.6,
        2.0,
        texture(1),
    ));
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(0.9, -0.1, 3.0),
        2.4,
        2.6,
        texture(2),
    ));
    let start = Pose::from_translation(Vec3::new(-0.30, 0.0, 0.0));
    let end = Pose::from_translation(Vec3::new(0.30, 0.05, 0.0));
    let trajectory =
        Trajectory::linear(start, end, 0.0, config.duration, config.trajectory_samples);
    (scene, trajectory, (0.8, 4.0))
}

/// Three walls meeting in a corner: a back wall plus left and right side
/// walls angled towards the camera.
fn three_walls_world(config: &DatasetConfig) -> (Scene, Trajectory, (f64, f64)) {
    let mut scene = Scene::new();
    // Back wall, fronto-parallel.
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(0.0, 0.0, 3.2),
        2.6,
        2.4,
        texture(1),
    ));
    // Left wall: spans depth 1.2..3.2 at x = -1.3, facing +X.
    scene.add_patch(PlanarPatch::oriented(
        Vec3::new(-1.3, 0.0, 2.2),
        Vec3::Z,
        Vec3::Y,
        1.0,
        1.2,
        texture(0),
    ));
    // Right wall: spans depth 1.2..3.2 at x = +1.3, facing -X.
    scene.add_patch(PlanarPatch::oriented(
        Vec3::new(1.3, 0.0, 2.2),
        -Vec3::Z,
        Vec3::Y,
        1.0,
        1.2,
        texture(2),
    ));
    let start = Pose::from_translation(Vec3::new(-0.35, -0.03, 0.0));
    let end = Pose::from_translation(Vec3::new(0.35, 0.03, 0.05));
    let trajectory =
        Trajectory::linear(start, end, 0.0, config.duration, config.trajectory_samples);
    (scene, trajectory, (0.9, 4.5))
}

/// A single large textured target in front of the camera, observed from a
/// linear slider (pure sideways translation) — the `slider_close` /
/// `slider_far` recordings of the dataset.
fn slider_world(config: &DatasetConfig, depth: f64, tex: usize) -> (Scene, Trajectory, (f64, f64)) {
    let mut scene = Scene::new();
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(0.0, 0.0, depth),
        3.0 * depth,
        2.2 * depth,
        texture(tex),
    ));
    // A second, smaller foreground/background element adds parallax structure.
    scene.add_patch(PlanarPatch::frontoparallel(
        Vec3::new(0.25 * depth, 0.15 * depth, depth * 0.8),
        0.4 * depth,
        0.3 * depth,
        texture(tex + 2),
    ));
    let amplitude = 0.22 * depth;
    let start = Pose::from_translation(Vec3::new(-amplitude, 0.0, 0.0));
    let end = Pose::from_translation(Vec3::new(amplitude, 0.0, 0.0));
    let trajectory =
        Trajectory::linear(start, end, 0.0, config.duration, config.trajectory_samples);
    (scene, trajectory, (0.5 * depth, 2.5 * depth))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_names_match_paper() {
        assert_eq!(SequenceKind::ThreePlanes.name(), "simulation_3planes");
        assert_eq!(SequenceKind::ThreeWalls.name(), "simulation_3walls");
        assert_eq!(SequenceKind::SliderClose.name(), "slider_close");
        assert_eq!(SequenceKind::SliderFar.name(), "slider_far");
        assert_eq!(SequenceKind::ALL.len(), 4);
        assert_eq!(SequenceKind::SliderFar.label(), "far");
    }

    #[test]
    fn three_planes_sequence_generates_events_and_ground_truth() {
        let seq =
            SyntheticSequence::generate(SequenceKind::ThreePlanes, &DatasetConfig::fast_test())
                .unwrap();
        assert!(
            seq.events.len() > 1000,
            "too few events: {}",
            seq.events.len()
        );
        // Ground truth covers most of the image and lies in the advertised range.
        assert!(seq.ground_truth_depth.finite_fraction() > 0.5);
        let min = seq.ground_truth_depth.min_finite().unwrap();
        let max = seq.ground_truth_depth.max_finite().unwrap();
        assert!(min >= seq.depth_range.0 * 0.9, "min depth {min}");
        assert!(max <= seq.depth_range.1 * 1.1, "max depth {max}");
        // The three planes should produce at least three distinct depths.
        assert!(max - min > 0.5);
    }

    #[test]
    fn slider_sequences_differ_in_depth() {
        let cfg = DatasetConfig::fast_test();
        let close = SyntheticSequence::generate(SequenceKind::SliderClose, &cfg).unwrap();
        let far = SyntheticSequence::generate(SequenceKind::SliderFar, &cfg).unwrap();
        let close_mean = close.ground_truth_depth.mean_finite();
        let far_mean = far.ground_truth_depth.mean_finite();
        assert!(
            far_mean > 2.0 * close_mean,
            "close {close_mean} vs far {far_mean}"
        );
        assert!(close.events.len() > 500);
        assert!(far.events.len() > 500);
    }

    #[test]
    fn three_walls_has_slanted_depth() {
        let seq =
            SyntheticSequence::generate(SequenceKind::ThreeWalls, &DatasetConfig::fast_test())
                .unwrap();
        let min = seq.ground_truth_depth.min_finite().unwrap();
        let max = seq.ground_truth_depth.max_finite().unwrap();
        // Side walls produce a continuous depth gradient, not just two values.
        assert!(
            max - min > 1.0,
            "expected a wide depth range, got {min}..{max}"
        );
    }

    #[test]
    fn generate_all_produces_four_sequences() {
        let all = SyntheticSequence::generate_all(&DatasetConfig::fast_test()).unwrap();
        assert_eq!(all.len(), 4);
        let names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "simulation_3planes",
                "simulation_3walls",
                "slider_close",
                "slider_far"
            ]
        );
    }

    #[test]
    fn reference_pose_is_trajectory_start() {
        let seq =
            SyntheticSequence::generate(SequenceKind::SliderClose, &DatasetConfig::fast_test())
                .unwrap();
        let start = seq
            .trajectory
            .pose_at(seq.trajectory.start_time().unwrap())
            .unwrap();
        assert!(seq.reference_pose.translation_distance(&start) < 1e-12);
        // Ground truth at the reference pose matches the stored one.
        let re_rendered = seq.ground_truth_depth_at(&seq.reference_pose);
        assert_eq!(re_rendered, seq.ground_truth_depth);
    }
}
