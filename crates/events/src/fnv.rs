//! The workspace's one FNV-1a 64 implementation.
//!
//! Exactly one hasher backs every digest in the system — the `.evtr`
//! container checksum (`crate::evtr`), the scenario golden digests
//! (`eventor_scenarios`), and the fuzz-report world digests — so the hashes
//! can never drift apart. Anything that wants an FNV digest uses [`Fnv64`]
//! or [`fnv1a_64`] from here; private re-implementations are a bug.

/// Incremental FNV-1a 64-bit hasher.
///
/// This is the checksum of the `.evtr` container **and** the hash behind the
/// scenario golden digests (`eventor-scenarios`), so the two can never drift
/// apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// FNV-1a 64 offset basis.
    pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the offset basis.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` as its 8 little-endian bytes.
    pub fn update_u64(&mut self, value: u64) {
        self.update(&value.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors: the one shared hasher is pinned
        // here, so any drift breaks every digest consumer by name.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
        let mut u = Fnv64::new();
        u.update_u64(0x0102_0304_0506_0708);
        assert_eq!(
            u.finish(),
            fnv1a_64(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }
}
