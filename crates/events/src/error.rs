//! Error type for the event-camera substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by the event-camera substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventError {
    /// Event timestamps were not in non-decreasing order.
    UnsortedEvents {
        /// The offending timestamp.
        timestamp: f64,
    },
    /// Raw image data did not match the declared dimensions.
    ImageSizeMismatch {
        /// Expected number of pixels.
        expected: usize,
        /// Provided number of values.
        actual: usize,
    },
    /// The simulator configuration or inputs were unusable.
    InvalidSimulation {
        /// Human-readable reason.
        reason: String,
    },
    /// An `eventor-evtr/1` record was truncated, corrupt, or of an
    /// unsupported version.
    InvalidRecord {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsortedEvents { timestamp } => {
                write!(f, "event timestamp {timestamp} breaks non-decreasing order")
            }
            Self::ImageSizeMismatch { expected, actual } => {
                write!(f, "image data has {actual} values, expected {expected}")
            }
            Self::InvalidSimulation { reason } => write!(f, "invalid simulation: {reason}"),
            Self::InvalidRecord { reason } => write!(f, "invalid evtr record: {reason}"),
        }
    }
}

impl Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_nonempty() {
        for e in [
            EventError::UnsortedEvents { timestamp: 1.0 },
            EventError::ImageSizeMismatch {
                expected: 4,
                actual: 3,
            },
            EventError::InvalidSimulation {
                reason: "x".to_string(),
            },
            EventError::InvalidRecord {
                reason: "x".to_string(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EventError>();
    }
}
