//! Event-rate analysis and adaptive frame slicing.
//!
//! The paper fixes the frame size at 1024 events, "determined according to
//! the sensor's event rate and storage". This module provides the analysis
//! behind such a choice: windowed event-rate statistics over a stream, and a
//! slicer that can cut frames by event count, by fixed time window, or
//! adaptively (a target count with a maximum duration), reporting how the
//! resulting frames are distributed.

use crate::packet::EventFrame;
use crate::stream::EventStream;

/// Windowed event-rate statistics of a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RateProfile {
    /// Window length in seconds.
    pub window: f64,
    /// Events per second in each consecutive window.
    pub rates: Vec<f64>,
    /// Mean rate over the whole stream, events per second.
    pub mean_rate: f64,
    /// Peak windowed rate, events per second.
    pub peak_rate: f64,
    /// Minimum windowed rate, events per second.
    pub min_rate: f64,
}

/// Computes the windowed event-rate profile of a stream.
///
/// Returns `None` for an empty stream, a non-positive window, or a stream
/// with zero duration.
///
/// # Examples
///
/// ```
/// use eventor_events::{rate_profile, Event, EventStream, Polarity};
/// let stream: EventStream = (0..10_000)
///     .map(|i| Event::new(i as f64 * 1e-5, 0, 0, Polarity::Positive))
///     .collect();
/// let profile = rate_profile(&stream, 0.01).unwrap();
/// assert!((profile.mean_rate - 1e5).abs() / 1e5 < 0.05);
/// ```
pub fn rate_profile(stream: &EventStream, window: f64) -> Option<RateProfile> {
    if stream.is_empty() || window <= 0.0 || !window.is_finite() {
        return None;
    }
    let t0 = stream.start_time()?;
    let t1 = stream.end_time()?;
    let span = t1 - t0;
    if span <= 0.0 {
        return None;
    }
    let n_windows = (span / window).ceil() as usize;
    let mut counts = vec![0u64; n_windows.max(1)];
    for e in stream.iter() {
        let idx = (((e.t - t0) / window) as usize).min(counts.len() - 1);
        counts[idx] += 1;
    }
    let rates: Vec<f64> = counts.iter().map(|&c| c as f64 / window).collect();
    let mean_rate = stream.len() as f64 / span;
    let peak_rate = rates.iter().copied().fold(0.0, f64::max);
    let min_rate = rates.iter().copied().fold(f64::INFINITY, f64::min);
    Some(RateProfile {
        window,
        rates,
        mean_rate,
        peak_rate,
        min_rate,
    })
}

/// Frame-slicing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlicePolicy {
    /// Fixed number of events per frame (the paper's policy, 1024 events).
    FixedCount {
        /// Events per frame.
        events: usize,
    },
    /// Fixed wall-clock duration per frame.
    FixedDuration {
        /// Frame duration in seconds.
        seconds: f64,
    },
    /// Target event count, but never let a frame span more than
    /// `max_seconds` (protects pose interpolation when the event rate drops).
    Adaptive {
        /// Target events per frame.
        events: usize,
        /// Maximum frame duration in seconds.
        max_seconds: f64,
    },
}

/// Distribution statistics of a slicing run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SliceStats {
    /// Number of frames produced.
    pub frames: usize,
    /// Smallest frame size in events.
    pub min_events: usize,
    /// Largest frame size in events.
    pub max_events: usize,
    /// Mean frame size in events.
    pub mean_events: f64,
    /// Longest frame duration in seconds.
    pub max_duration: f64,
}

/// Slices a stream into event frames according to a policy.
///
/// Frames are never empty; a trailing partial frame is kept.
///
/// # Panics
///
/// Panics if the policy requests zero events per frame or a non-positive
/// duration.
pub fn slice_stream(stream: &EventStream, policy: SlicePolicy) -> (Vec<EventFrame>, SliceStats) {
    let frames = match policy {
        SlicePolicy::FixedCount { events } => {
            assert!(events > 0, "events per frame must be positive");
            crate::packet::aggregate(stream, events)
        }
        SlicePolicy::FixedDuration { seconds } => {
            assert!(seconds > 0.0, "frame duration must be positive");
            slice_by(stream, |frame_start, frame_len, e| {
                let _ = frame_len;
                e.t - frame_start > seconds
            })
        }
        SlicePolicy::Adaptive {
            events,
            max_seconds,
        } => {
            assert!(events > 0, "events per frame must be positive");
            assert!(max_seconds > 0.0, "maximum frame duration must be positive");
            slice_by(stream, |frame_start, frame_len, e| {
                frame_len >= events || e.t - frame_start > max_seconds
            })
        }
    };
    let stats = slice_stats(&frames);
    (frames, stats)
}

/// Generic boundary-driven slicer: starts a new frame whenever `should_split`
/// says the incoming event no longer belongs to the current frame.
fn slice_by<F>(stream: &EventStream, mut should_split: F) -> Vec<EventFrame>
where
    F: FnMut(f64, usize, &crate::event::Event) -> bool,
{
    let mut frames = Vec::new();
    let mut current: Vec<crate::event::Event> = Vec::new();
    let mut frame_start = stream.start_time().unwrap_or(0.0);
    for &e in stream.iter() {
        if !current.is_empty() && should_split(frame_start, current.len(), &e) {
            frames.push(EventFrame {
                events: std::mem::take(&mut current),
                index: frames.len(),
            });
            frame_start = e.t;
        }
        if current.is_empty() {
            frame_start = e.t;
        }
        current.push(e);
    }
    if !current.is_empty() {
        frames.push(EventFrame {
            events: current,
            index: frames.len(),
        });
    }
    frames
}

fn slice_stats(frames: &[EventFrame]) -> SliceStats {
    if frames.is_empty() {
        return SliceStats::default();
    }
    let sizes: Vec<usize> = frames.iter().map(EventFrame::len).collect();
    let durations = frames.iter().map(|f| match (f.start_time(), f.end_time()) {
        (Some(a), Some(b)) => b - a,
        _ => 0.0,
    });
    SliceStats {
        frames: frames.len(),
        min_events: sizes.iter().copied().min().unwrap_or(0),
        max_events: sizes.iter().copied().max().unwrap_or(0),
        mean_events: sizes.iter().sum::<usize>() as f64 / frames.len() as f64,
        max_duration: durations.fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Polarity};

    fn uniform_stream(n: usize, dt: f64) -> EventStream {
        (0..n)
            .map(|i| Event::new(i as f64 * dt, 0, 0, Polarity::Positive))
            .collect()
    }

    /// A stream whose rate drops by 10x half-way through.
    fn bursty_stream() -> EventStream {
        let mut events = Vec::new();
        let mut t = 0.0;
        for _ in 0..5000 {
            events.push(Event::new(t, 0, 0, Polarity::Positive));
            t += 1e-5;
        }
        for _ in 0..500 {
            events.push(Event::new(t, 0, 0, Polarity::Positive));
            t += 1e-4;
        }
        EventStream::from_events(events).unwrap()
    }

    #[test]
    fn rate_profile_of_uniform_stream_is_flat() {
        let stream = uniform_stream(10_000, 1e-5);
        let profile = rate_profile(&stream, 0.01).unwrap();
        assert!((profile.mean_rate - 1e5).abs() / 1e5 < 0.05);
        assert!(profile.peak_rate >= profile.min_rate);
        assert!((profile.peak_rate - profile.min_rate) / profile.peak_rate < 0.15);
        assert_eq!(profile.window, 0.01);
        assert!(!profile.rates.is_empty());
    }

    #[test]
    fn rate_profile_detects_bursts() {
        let profile = rate_profile(&bursty_stream(), 0.01).unwrap();
        assert!(profile.peak_rate > 5.0 * profile.min_rate);
    }

    #[test]
    fn rate_profile_rejects_degenerate_inputs() {
        assert!(rate_profile(&EventStream::new(), 0.01).is_none());
        assert!(rate_profile(&uniform_stream(100, 1e-4), 0.0).is_none());
        let instant: EventStream = (0..10)
            .map(|_| Event::new(1.0, 0, 0, Polarity::Positive))
            .collect();
        assert!(rate_profile(&instant, 0.01).is_none());
    }

    #[test]
    fn fixed_count_slicing_matches_aggregate() {
        let stream = uniform_stream(2500, 1e-4);
        let (frames, stats) = slice_stream(&stream, SlicePolicy::FixedCount { events: 1024 });
        assert_eq!(frames.len(), 3);
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.max_events, 1024);
        assert_eq!(stats.min_events, 2500 - 2048);
        assert!(stats.mean_events > 0.0);
    }

    #[test]
    fn fixed_duration_slicing_bounds_frame_span() {
        let stream = bursty_stream();
        let (frames, stats) = slice_stream(&stream, SlicePolicy::FixedDuration { seconds: 0.005 });
        assert!(stats.frames > 5);
        assert!(
            stats.max_duration <= 0.005 + 1e-4,
            "max duration {}",
            stats.max_duration
        );
        // The slow half of the stream produces much smaller frames.
        assert!(stats.min_events < stats.max_events);
        assert_eq!(
            frames.iter().map(EventFrame::len).sum::<usize>(),
            stream.len()
        );
    }

    #[test]
    fn adaptive_slicing_caps_both_count_and_duration() {
        let stream = bursty_stream();
        let (frames, stats) = slice_stream(
            &stream,
            SlicePolicy::Adaptive {
                events: 1024,
                max_seconds: 0.004,
            },
        );
        assert!(stats.max_events <= 1024);
        assert!(stats.max_duration <= 0.004 + 1e-4);
        assert_eq!(
            frames.iter().map(EventFrame::len).sum::<usize>(),
            stream.len()
        );
        // Frame indices are consecutive.
        assert!(frames.iter().enumerate().all(|(i, f)| f.index == i));
    }

    #[test]
    fn empty_stream_produces_no_frames() {
        let (frames, stats) = slice_stream(
            &EventStream::new(),
            SlicePolicy::FixedDuration { seconds: 0.01 },
        );
        assert!(frames.is_empty());
        assert_eq!(stats, SliceStats::default());
    }

    #[test]
    #[should_panic]
    fn zero_count_policy_panics() {
        let _ = slice_stream(
            &uniform_stream(10, 1e-3),
            SlicePolicy::FixedCount { events: 0 },
        );
    }

    #[test]
    #[should_panic]
    fn non_positive_duration_policy_panics() {
        let _ = slice_stream(
            &uniform_stream(10, 1e-3),
            SlicePolicy::FixedDuration { seconds: 0.0 },
        );
    }
}
