//! Contrast-threshold event-camera simulator.
//!
//! The DAVIS dataset the paper evaluates on combines real recordings and the
//! simulator of Mueggler et al. (IJRR 2017). This module is a from-scratch
//! equivalent: the scene is rendered to log-intensity images at a fixed
//! sampling rate along the trajectory, and each pixel emits an event whenever
//! its log intensity drifts by more than the contrast threshold from its last
//! reference level — with timestamps linearly interpolated inside the
//! sampling interval, per-pixel refractory filtering, and optional noise
//! events.

use crate::event::{Event, Polarity};
use crate::render::render_log_intensity;
use crate::scene::Scene;
use crate::stream::EventStream;
use crate::EventError;
use eventor_geom::{CameraModel, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the event simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatorConfig {
    /// Contrast threshold `C`: an event fires when `|Δ log I| >= C`.
    pub contrast_threshold: f64,
    /// Number of log-intensity samples rendered along the trajectory.
    pub samples: usize,
    /// Per-pixel refractory period in seconds (events closer together are
    /// dropped, mimicking the pixel dead time of the sensor).
    pub refractory_period: f64,
    /// Expected number of uniformly distributed noise events per pixel per
    /// second (shot noise / background activity). Zero disables noise.
    pub noise_rate: f64,
    /// RNG seed for noise generation (the signal path is deterministic).
    pub seed: u64,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        Self {
            contrast_threshold: 0.15,
            samples: 240,
            refractory_period: 1e-4,
            noise_rate: 0.0,
            seed: 0xEB5E,
        }
    }
}

/// Summary statistics reported by a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimulationStats {
    /// Total number of events generated (signal + noise).
    pub total_events: usize,
    /// Number of noise events injected.
    pub noise_events: usize,
    /// Number of events suppressed by the refractory period.
    pub refractory_dropped: usize,
    /// Mean event rate over the simulated time span, events per second.
    pub mean_event_rate: f64,
}

/// The event-camera simulator.
#[derive(Debug, Clone)]
pub struct EventCameraSimulator {
    camera: CameraModel,
    config: SimulatorConfig,
}

impl EventCameraSimulator {
    /// Creates a simulator for the given camera model.
    pub fn new(camera: CameraModel, config: SimulatorConfig) -> Self {
        Self { camera, config }
    }

    /// The camera model being simulated.
    pub fn camera(&self) -> &CameraModel {
        &self.camera
    }

    /// The active configuration.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Simulates the sensor observing `scene` while moving along `trajectory`.
    ///
    /// Returns the generated event stream together with run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidSimulation`] when the configuration is
    /// unusable (fewer than two samples, non-positive contrast threshold) or
    /// the trajectory is shorter than two samples require.
    pub fn simulate(
        &self,
        scene: &Scene,
        trajectory: &Trajectory,
    ) -> Result<(EventStream, SimulationStats), EventError> {
        let cfg = &self.config;
        if cfg.samples < 2 {
            return Err(EventError::InvalidSimulation {
                reason: "simulator needs at least two samples".to_string(),
            });
        }
        if cfg.contrast_threshold <= 0.0 || !cfg.contrast_threshold.is_finite() {
            return Err(EventError::InvalidSimulation {
                reason: format!(
                    "contrast threshold {} must be positive",
                    cfg.contrast_threshold
                ),
            });
        }
        let (t0, t1) = match (trajectory.start_time(), trajectory.end_time()) {
            (Some(a), Some(b)) if b > a => (a, b),
            _ => {
                return Err(EventError::InvalidSimulation {
                    reason: "trajectory must span a positive duration".to_string(),
                })
            }
        };

        let w = self.camera.intrinsics.width as usize;
        let h = self.camera.intrinsics.height as usize;
        let n_px = w * h;

        let dt = (t1 - t0) / (cfg.samples - 1) as f64;
        let pose0 = trajectory
            .pose_at(t0)
            .map_err(|e| EventError::InvalidSimulation {
                reason: e.to_string(),
            })?;
        let first = render_log_intensity(scene, &self.camera, &pose0);

        // Per-pixel state: reference level and time of the last emitted event.
        let mut reference: Vec<f64> = first.as_slice().to_vec();
        let mut previous: Vec<f64> = reference.clone();
        let mut last_event_time: Vec<f64> = vec![f64::NEG_INFINITY; n_px];

        let mut events: Vec<Event> = Vec::new();
        let mut refractory_dropped = 0usize;

        for k in 1..cfg.samples {
            let t = t0 + k as f64 * dt;
            let pose =
                trajectory
                    .pose_at(t.min(t1))
                    .map_err(|e| EventError::InvalidSimulation {
                        reason: e.to_string(),
                    })?;
            let current = render_log_intensity(scene, &self.camera, &pose);
            let cur = current.as_slice();
            let t_prev = t - dt;

            for y in 0..h {
                for x in 0..w {
                    let idx = y * w + x;
                    let i_prev = previous[idx];
                    let i_cur = cur[idx];
                    let mut reference_level = reference[idx];
                    let delta_total = i_cur - reference_level;
                    let c = cfg.contrast_threshold;
                    if delta_total.abs() < c {
                        continue;
                    }
                    let polarity = Polarity::from_sign(delta_total);
                    let n_events = (delta_total.abs() / c).floor() as usize;
                    let slope = i_cur - i_prev;
                    for e_i in 0..n_events {
                        let crossing = reference_level + polarity.sign() * c * (e_i + 1) as f64;
                        // Linear interpolation of the crossing time inside the
                        // sampling interval; degenerate slopes fall back to the
                        // interval end.
                        let alpha = if slope.abs() > 1e-12 {
                            ((crossing - i_prev) / slope).clamp(0.0, 1.0)
                        } else {
                            1.0
                        };
                        let te = t_prev + alpha * dt;
                        if te - last_event_time[idx] < cfg.refractory_period {
                            refractory_dropped += 1;
                            continue;
                        }
                        last_event_time[idx] = te;
                        events.push(Event::new(te, x as u16, y as u16, polarity));
                    }
                    reference_level += polarity.sign() * c * n_events as f64;
                    reference[idx] = reference_level;
                }
            }
            previous.copy_from_slice(cur);
        }

        // Inject uniformly distributed noise events.
        let mut noise_events = 0usize;
        if cfg.noise_rate > 0.0 {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let expected = cfg.noise_rate * (t1 - t0) * n_px as f64;
            let n_noise = expected.round() as usize;
            for _ in 0..n_noise {
                let t = rng.gen_range(t0..t1);
                let x = rng.gen_range(0..w) as u16;
                let y = rng.gen_range(0..h) as u16;
                let polarity = if rng.gen_bool(0.5) {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                };
                events.push(Event::new(t, x, y, polarity));
                noise_events += 1;
            }
        }

        let stream = EventStream::from_unsorted(events);
        let stats = SimulationStats {
            total_events: stream.len(),
            noise_events,
            refractory_dropped,
            mean_event_rate: stream.event_rate(),
        };
        Ok((stream, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{PlanarPatch, Texture};
    use eventor_geom::{CameraIntrinsics, DistortionModel, Pose, Vec3};

    fn small_camera() -> CameraModel {
        CameraModel::new(
            CameraIntrinsics::new(40.0, 40.0, 24.0, 18.0, 48, 36).unwrap(),
            DistortionModel::none(),
        )
    }

    fn textured_scene() -> Scene {
        let mut scene = Scene::new();
        scene.add_patch(PlanarPatch::frontoparallel(
            Vec3::new(0.0, 0.0, 2.0),
            6.0,
            6.0,
            Texture::Checkerboard { period: 0.3 },
        ));
        scene
    }

    fn slider_trajectory(extent: f64) -> Trajectory {
        Trajectory::linear(
            Pose::from_translation(Vec3::new(-extent, 0.0, 0.0)),
            Pose::from_translation(Vec3::new(extent, 0.0, 0.0)),
            0.0,
            1.0,
            60,
        )
    }

    #[test]
    fn moving_camera_over_textured_scene_generates_events() {
        let sim = EventCameraSimulator::new(
            small_camera(),
            SimulatorConfig {
                samples: 60,
                ..SimulatorConfig::default()
            },
        );
        let (stream, stats) = sim
            .simulate(&textured_scene(), &slider_trajectory(0.2))
            .unwrap();
        assert!(
            stream.len() > 500,
            "expected many events, got {}",
            stream.len()
        );
        assert_eq!(stats.total_events, stream.len());
        assert!(stats.mean_event_rate > 0.0);
        // Events must be time sorted and within the trajectory span.
        assert!(stream.start_time().unwrap() >= 0.0);
        assert!(stream.end_time().unwrap() <= 1.0 + 1e-9);
        // A sideways slider produces both polarities (leading and trailing edges).
        let pf = stream.positive_fraction();
        assert!(pf > 0.1 && pf < 0.9, "positive fraction {pf}");
    }

    #[test]
    fn static_camera_generates_no_signal_events() {
        let sim = EventCameraSimulator::new(
            small_camera(),
            SimulatorConfig {
                samples: 30,
                ..SimulatorConfig::default()
            },
        );
        let static_traj = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 1.0, 10);
        let (stream, _) = sim.simulate(&textured_scene(), &static_traj).unwrap();
        assert_eq!(stream.len(), 0);
    }

    #[test]
    fn noise_injection_adds_events_even_without_motion() {
        let sim = EventCameraSimulator::new(
            small_camera(),
            SimulatorConfig {
                samples: 10,
                noise_rate: 0.5,
                ..SimulatorConfig::default()
            },
        );
        let static_traj = Trajectory::linear(Pose::identity(), Pose::identity(), 0.0, 1.0, 10);
        let (stream, stats) = sim.simulate(&Scene::new(), &static_traj).unwrap();
        assert!(stats.noise_events > 0);
        assert_eq!(stream.len(), stats.noise_events);
    }

    #[test]
    fn higher_contrast_threshold_gives_fewer_events() {
        let scene = textured_scene();
        let traj = slider_trajectory(0.2);
        let low = EventCameraSimulator::new(
            small_camera(),
            SimulatorConfig {
                contrast_threshold: 0.1,
                samples: 40,
                ..SimulatorConfig::default()
            },
        );
        let high = EventCameraSimulator::new(
            small_camera(),
            SimulatorConfig {
                contrast_threshold: 0.4,
                samples: 40,
                ..SimulatorConfig::default()
            },
        );
        let (s_low, _) = low.simulate(&scene, &traj).unwrap();
        let (s_high, _) = high.simulate(&scene, &traj).unwrap();
        assert!(s_low.len() > s_high.len());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let cam = small_camera();
        let traj = slider_trajectory(0.1);
        let scene = textured_scene();

        let sim = EventCameraSimulator::new(
            cam,
            SimulatorConfig {
                samples: 1,
                ..Default::default()
            },
        );
        assert!(sim.simulate(&scene, &traj).is_err());

        let sim = EventCameraSimulator::new(
            small_camera(),
            SimulatorConfig {
                contrast_threshold: 0.0,
                ..Default::default()
            },
        );
        assert!(sim.simulate(&scene, &traj).is_err());

        // Zero-duration trajectory.
        let sim = EventCameraSimulator::new(small_camera(), SimulatorConfig::default());
        let degenerate = Trajectory::from_samples(vec![(0.0, Pose::identity())]).unwrap();
        assert!(sim.simulate(&scene, &degenerate).is_err());
    }

    #[test]
    fn simulation_is_deterministic() {
        let sim = EventCameraSimulator::new(
            small_camera(),
            SimulatorConfig {
                samples: 30,
                noise_rate: 0.1,
                ..SimulatorConfig::default()
            },
        );
        let scene = textured_scene();
        let traj = slider_trajectory(0.15);
        let (a, _) = sim.simulate(&scene, &traj).unwrap();
        let (b, _) = sim.simulate(&scene, &traj).unwrap();
        assert_eq!(a, b);
    }
}
