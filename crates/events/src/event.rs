//! The basic event datum produced by a DVS / DAVIS sensor.

use std::fmt;

/// Polarity of a brightness change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Polarity {
    /// Brightness increased past the contrast threshold.
    #[default]
    Positive,
    /// Brightness decreased past the contrast threshold.
    Negative,
}

impl Polarity {
    /// `+1.0` for positive, `-1.0` for negative events.
    pub fn sign(self) -> f64 {
        match self {
            Self::Positive => 1.0,
            Self::Negative => -1.0,
        }
    }

    /// Builds a polarity from the sign of a brightness change.
    pub fn from_sign(delta: f64) -> Self {
        if delta >= 0.0 {
            Self::Positive
        } else {
            Self::Negative
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Positive => write!(f, "+"),
            Self::Negative => write!(f, "-"),
        }
    }
}

/// A single event `e_k = (x_k, y_k, t_k, p_k)`.
///
/// Coordinates are integer pixel addresses as produced by the sensor;
/// timestamps are seconds from the start of the recording.
///
/// # Examples
///
/// ```
/// use eventor_events::{Event, Polarity};
/// let e = Event::new(0.0015, 120, 90, Polarity::Positive);
/// assert_eq!(e.x, 120);
/// assert_eq!(e.polarity.sign(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Event {
    /// Timestamp in seconds.
    pub t: f64,
    /// Pixel column.
    pub x: u16,
    /// Pixel row.
    pub y: u16,
    /// Polarity of the brightness change.
    pub polarity: Polarity,
}

impl Event {
    /// Creates a new event.
    pub fn new(t: f64, x: u16, y: u16, polarity: Polarity) -> Self {
        Self { t, x, y, polarity }
    }

    /// The pixel coordinate as floating point (pixel centre).
    pub fn pixel(&self) -> (f64, f64) {
        (self.x as f64, self.y as f64)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "e(t={:.6}, x={}, y={}, p={})",
            self.t, self.x, self.y, self.polarity
        )
    }
}

/// Scans a packet for time order against `watermark` (the newest timestamp
/// already accepted by the consumer): returns the timestamp of the first
/// event that regresses, or `None` when the packet is well ordered. Equal
/// timestamps are allowed — sensors emit bursts.
///
/// This is the one ordering rule every bounded ingestion layer shares
/// (`SessionDriver::push_events` in `eventor-emvs`, the serving engine's
/// ingest queues in `eventor-serve`), extracted so the validate-whole-packet
/// semantics cannot drift between them.
pub fn first_out_of_order(events: &[Event], watermark: Option<f64>) -> Option<f64> {
    let mut last = watermark;
    for e in events {
        if let Some(l) = last {
            if e.t < l {
                return Some(e.t);
            }
        }
        last = Some(e.t);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_out_of_order_finds_the_first_regression() {
        let ev = |t| Event::new(t, 0, 0, Polarity::Positive);
        assert_eq!(first_out_of_order(&[], None), None);
        assert_eq!(first_out_of_order(&[ev(1.0), ev(1.0), ev(2.0)], None), None);
        assert_eq!(first_out_of_order(&[ev(1.0), ev(0.5)], None), Some(0.5));
        // The watermark is what makes cross-packet order enforceable.
        assert_eq!(first_out_of_order(&[ev(1.0)], Some(2.0)), Some(1.0));
        assert_eq!(first_out_of_order(&[ev(2.0)], Some(2.0)), None);
    }

    #[test]
    fn polarity_sign_round_trip() {
        assert_eq!(Polarity::from_sign(0.3), Polarity::Positive);
        assert_eq!(Polarity::from_sign(-0.3), Polarity::Negative);
        assert_eq!(Polarity::Positive.sign(), 1.0);
        assert_eq!(Polarity::Negative.sign(), -1.0);
    }

    #[test]
    fn event_accessors() {
        let e = Event::new(1.5, 10, 20, Polarity::Negative);
        assert_eq!(e.pixel(), (10.0, 20.0));
        assert!(!format!("{e}").is_empty());
    }
}
