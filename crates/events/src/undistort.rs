//! Streaming event-distortion correction via a precomputed per-pixel lookup
//! table.
//!
//! The reformulated Eventor dataflow moves distortion correction *before*
//! aggregation so it can run per event in a streaming fashion. On the
//! embedded platform the natural implementation is a lookup table indexed by
//! the raw integer pixel address (events carry integer coordinates), holding
//! the undistorted sub-pixel coordinate — one BRAM/DRAM read per event
//! instead of an iterative undistortion solve. [`UndistortionLut`] builds and
//! applies that table and quantifies its cost and accuracy, which is what the
//! rescheduling discussion of the paper relies on.

use crate::event::Event;
use crate::stream::EventStream;
use eventor_geom::{CameraModel, Vec2};

/// A per-pixel undistortion lookup table.
///
/// # Examples
///
/// ```
/// use eventor_events::UndistortionLut;
/// use eventor_geom::CameraModel;
///
/// let camera = CameraModel::davis240_distorted();
/// let lut = UndistortionLut::build(&camera);
/// let corrected = lut.lookup(120, 90);
/// let exact = camera.undistort_pixel(eventor_geom::Vec2::new(120.0, 90.0));
/// assert!((corrected - exact).norm() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UndistortionLut {
    width: u16,
    height: u16,
    /// Undistorted coordinates stored as `f32` pairs, row-major — the
    /// precision the table would use in BRAM.
    table: Vec<(f32, f32)>,
    identity: bool,
}

impl UndistortionLut {
    /// Precomputes the table for every integer pixel of the sensor.
    pub fn build(camera: &CameraModel) -> Self {
        let width = camera.intrinsics.width as u16;
        let height = camera.intrinsics.height as u16;
        let identity = camera.distortion.is_zero();
        let mut table = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                let p = camera.undistort_pixel(Vec2::new(x as f64, y as f64));
                table.push((p.x as f32, p.y as f32));
            }
        }
        Self {
            width,
            height,
            table,
            identity,
        }
    }

    /// Sensor width covered by the table.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Sensor height covered by the table.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Whether the camera has no distortion (the table is an identity map).
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Storage footprint of the table in bytes (two `f32` per pixel).
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * 8
    }

    /// Looks up the undistorted coordinate of an integer pixel.
    ///
    /// Out-of-sensor addresses return the raw coordinate unchanged (the
    /// hardware forwards them and lets the projection-missing judgement drop
    /// them later).
    pub fn lookup(&self, x: u16, y: u16) -> Vec2 {
        if x >= self.width || y >= self.height {
            return Vec2::new(x as f64, y as f64);
        }
        let (ux, uy) = self.table[y as usize * self.width as usize + x as usize];
        Vec2::new(ux as f64, uy as f64)
    }

    /// Corrects one event (streaming path).
    pub fn correct_event(&self, event: &Event) -> Vec2 {
        self.lookup(event.x, event.y)
    }

    /// Corrects a whole stream, returning the undistorted coordinates in
    /// stream order.
    pub fn correct_stream(&self, stream: &EventStream) -> Vec<Vec2> {
        stream.iter().map(|e| self.correct_event(e)).collect()
    }

    /// Largest deviation (in pixels) between the table and the exact
    /// undistortion over every sensor pixel — the error introduced by the
    /// `f32` table storage.
    pub fn max_error_versus_exact(&self, camera: &CameraModel) -> f64 {
        let mut max = 0.0f64;
        for y in 0..self.height {
            for x in 0..self.width {
                let exact = camera.undistort_pixel(Vec2::new(x as f64, y as f64));
                let err = (self.lookup(x, y) - exact).norm();
                max = max.max(err);
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Polarity;

    #[test]
    fn identity_camera_yields_identity_table() {
        let camera = CameraModel::davis240_ideal();
        let lut = UndistortionLut::build(&camera);
        assert!(lut.is_identity());
        assert_eq!(lut.width(), 240);
        assert_eq!(lut.height(), 180);
        for &(x, y) in &[(0u16, 0u16), (120, 90), (239, 179)] {
            let p = lut.lookup(x, y);
            assert!((p.x - x as f64).abs() < 1e-6);
            assert!((p.y - y as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn distorted_camera_table_matches_exact_undistortion() {
        let camera = CameraModel::davis240_distorted();
        let lut = UndistortionLut::build(&camera);
        assert!(!lut.is_identity());
        // f32 storage keeps the table within a thousandth of a pixel.
        assert!(lut.max_error_versus_exact(&camera) < 1e-3);
    }

    #[test]
    fn correction_moves_corner_pixels_more_than_the_center() {
        let camera = CameraModel::davis240_distorted();
        let lut = UndistortionLut::build(&camera);
        let center_shift = (lut.lookup(120, 90) - Vec2::new(120.0, 90.0)).norm();
        let corner_shift = (lut.lookup(2, 2) - Vec2::new(2.0, 2.0)).norm();
        assert!(
            corner_shift > center_shift,
            "corner {corner_shift} vs center {center_shift}"
        );
    }

    #[test]
    fn out_of_sensor_lookups_pass_through() {
        let lut = UndistortionLut::build(&CameraModel::davis240_distorted());
        let p = lut.lookup(500, 400);
        assert_eq!(p, Vec2::new(500.0, 400.0));
    }

    #[test]
    fn stream_correction_preserves_order_and_length() {
        let camera = CameraModel::davis240_distorted();
        let lut = UndistortionLut::build(&camera);
        let stream: EventStream = (0..100)
            .map(|i| {
                Event::new(
                    i as f64 * 1e-4,
                    (i * 7 % 240) as u16,
                    (i * 3 % 180) as u16,
                    Polarity::Positive,
                )
            })
            .collect();
        let corrected = lut.correct_stream(&stream);
        assert_eq!(corrected.len(), 100);
        for (e, c) in stream.iter().zip(&corrected) {
            let exact = camera.undistort_pixel(Vec2::new(e.x as f64, e.y as f64));
            assert!((*c - exact).norm() < 1e-3);
        }
    }

    #[test]
    fn memory_footprint_is_reported() {
        let lut = UndistortionLut::build(&CameraModel::davis240_ideal());
        // 240*180 pixels * 8 bytes = 345.6 KB.
        assert_eq!(lut.memory_bytes(), 240 * 180 * 8);
    }
}
