//! Rendering synthetic scenes to intensity and depth images.
//!
//! The event simulator samples log-intensity images along the trajectory;
//! the dataset builders render ground-truth *depth* at the reference views
//! used for the accuracy evaluation (Fig. 4 / Fig. 7a).

use crate::image::Image;
use crate::scene::Scene;
use eventor_geom::{CameraModel, Pose, Vec2};

/// Renders the scene's *log* intensity as seen by `camera` at `pose`.
///
/// Each pixel's viewing ray is cast through the scene; the returned image
/// stores `ln(intensity + eps)` which is the quantity event cameras threshold.
pub fn render_log_intensity(scene: &Scene, camera: &CameraModel, pose: &Pose) -> Image {
    let w = camera.intrinsics.width as usize;
    let h = camera.intrinsics.height as usize;
    let mut img = Image::filled(w, h, 0.0);
    let eps = 1e-3;
    for y in 0..h {
        for x in 0..w {
            let px = Vec2::new(x as f64, y as f64);
            // The sensor observes the *distorted* image; undistort the pixel
            // to find its true viewing direction.
            let ideal = camera.undistort_pixel(px);
            let bearing_cam = camera.pixel_to_bearing(ideal);
            let dir_world = pose.rotate(bearing_cam);
            let radiance = scene.radiance(pose.translation, dir_world);
            img.set(x, y, (radiance + eps).ln());
        }
    }
    img
}

/// Renders the ground-truth depth map (Z-coordinate in the camera frame, not
/// ray length) as seen by `camera` at `pose`.
///
/// Pixels whose ray misses every patch are `f64::INFINITY`. Lens distortion is
/// ignored for the ground-truth view: the EMVS depth map is expressed in the
/// ideal (undistorted) pinhole geometry of the virtual camera.
pub fn render_depth(scene: &Scene, camera: &CameraModel, pose: &Pose) -> Image {
    let w = camera.intrinsics.width as usize;
    let h = camera.intrinsics.height as usize;
    let mut img = Image::filled(w, h, f64::INFINITY);
    for y in 0..h {
        for x in 0..w {
            let px = Vec2::new(x as f64, y as f64);
            let bearing_cam = camera.intrinsics.unproject(px);
            let norm = bearing_cam.norm();
            let dir_world = pose.rotate(bearing_cam / norm);
            let ray_len = scene.ray_depth(pose.translation, dir_world);
            if ray_len.is_finite() {
                // Convert ray length to camera-frame depth Z: the unprojected
                // bearing has z = 1 before normalization, so Z = len / norm.
                img.set(x, y, ray_len / norm);
            }
        }
    }
    img
}

/// Renders an *edge-strength* map: the magnitude of the spatial gradient of
/// the log intensity. Pixels with strong gradients are where an ideal event
/// camera fires events; used by the dataset builders to report how much
/// structure a sequence contains and by tests as a sanity check.
pub fn render_edge_map(scene: &Scene, camera: &CameraModel, pose: &Pose) -> Image {
    let log_img = render_log_intensity(scene, camera, pose);
    let w = log_img.width();
    let h = log_img.height();
    let mut edges = Image::filled(w, h, 0.0);
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let gx = 0.5 * (log_img.get(x + 1, y) - log_img.get(x - 1, y));
            let gy = 0.5 * (log_img.get(x, y + 1) - log_img.get(x, y - 1));
            edges.set(x, y, (gx * gx + gy * gy).sqrt());
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{PlanarPatch, Texture};
    use eventor_geom::{CameraIntrinsics, DistortionModel, Vec3};

    fn small_camera() -> CameraModel {
        CameraModel::new(
            CameraIntrinsics::new(40.0, 40.0, 24.0, 18.0, 48, 36).unwrap(),
            DistortionModel::none(),
        )
    }

    fn plane_scene(depth: f64) -> Scene {
        let mut scene = Scene::new();
        scene.add_patch(PlanarPatch::frontoparallel(
            Vec3::new(0.0, 0.0, depth),
            10.0,
            10.0,
            Texture::Checkerboard { period: 0.25 },
        ));
        scene
    }

    #[test]
    fn depth_of_frontoparallel_plane_is_constant() {
        let cam = small_camera();
        let scene = plane_scene(2.0);
        let depth = render_depth(&scene, &cam, &Pose::identity());
        for y in 0..depth.height() {
            for x in 0..depth.width() {
                let d = depth.get(x, y);
                assert!(
                    (d - 2.0).abs() < 1e-9,
                    "pixel ({x},{y}) depth {d} should be 2.0 for a fronto-parallel plane"
                );
            }
        }
    }

    #[test]
    fn log_intensity_shows_texture_contrast() {
        let cam = small_camera();
        let scene = plane_scene(1.5);
        let img = render_log_intensity(&scene, &cam, &Pose::identity());
        let min = img.min_finite().unwrap();
        let max = img.max_finite().unwrap();
        assert!(
            max - min > 0.5,
            "checkerboard should produce contrast, got {min}..{max}"
        );
    }

    #[test]
    fn empty_scene_has_infinite_depth_and_flat_intensity() {
        let cam = small_camera();
        let scene = Scene::new();
        let depth = render_depth(&scene, &cam, &Pose::identity());
        assert_eq!(depth.finite_fraction(), 0.0);
        let img = render_log_intensity(&scene, &cam, &Pose::identity());
        assert!((img.max_finite().unwrap() - img.min_finite().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn edge_map_nonzero_on_textured_plane() {
        let cam = small_camera();
        let scene = plane_scene(2.0);
        let edges = render_edge_map(&scene, &cam, &Pose::identity());
        assert!(edges.max_finite().unwrap() > 0.0);
    }

    #[test]
    fn camera_translation_changes_depth() {
        let cam = small_camera();
        let scene = plane_scene(3.0);
        let moved = Pose::from_translation(Vec3::new(0.0, 0.0, 1.0));
        let depth = render_depth(&scene, &cam, &moved);
        assert!((depth.get(24, 18) - 2.0).abs() < 1e-9);
    }
}
